//! End-to-end scenario-shape assertions: the qualitative features the
//! paper's Figures 2–5 show must survive the full collection →
//! distillation pipeline (not just exist in the channel model).

use emu::{scenario_figure, RunConfig};
use netsim::SimDuration;
use wavelan::Scenario;

fn mean_of(buckets: &[netsim::stats::Summary], range: std::ops::Range<usize>) -> f64 {
    let xs: Vec<f64> = buckets[range]
        .iter()
        .filter(|b| b.count() > 0)
        .map(|b| b.mean())
        .collect();
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

#[test]
fn porter_patio_beats_porter_hall() {
    let mut sc = Scenario::porter();
    sc.duration = SimDuration::from_secs(90);
    let fig = scenario_figure(&sc, 2, &RunConfig::default());
    // Signal: patio (x2–x4) clearly better than the interior end (x5–x6).
    let patio = mean_of(&fig.signal.buckets, 2..5);
    let interior = mean_of(&fig.signal.buckets, 5..7);
    assert!(
        patio > interior + 2.0,
        "patio {patio:.1} vs interior {interior:.1}"
    );
    // Latency: interior worse (spikes).
    let lat_patio = mean_of(&fig.latency_ms.buckets, 2..5);
    let lat_interior = mean_of(&fig.latency_ms.buckets, 5..7);
    assert!(
        lat_interior > lat_patio,
        "{lat_patio:.1} vs {lat_interior:.1}"
    );
}

#[test]
fn flagstaff_loss_grows_through_traversal() {
    let mut sc = Scenario::flagstaff();
    sc.duration = SimDuration::from_secs(120);
    let fig = scenario_figure(&sc, 2, &RunConfig::default());
    let early = mean_of(&fig.loss_pct.buckets, 0..3);
    let late = mean_of(&fig.loss_pct.buckets, 7..10);
    assert!(
        late > early * 1.5,
        "loss did not grow: early {early:.2}% late {late:.2}%"
    );
    // And the park's signal is low throughout the later checkpoints.
    let park_signal = mean_of(&fig.signal.buckets, 4..10);
    assert!(park_signal < 10.0, "park signal {park_signal:.1}");
}

#[test]
fn wean_elevator_dominates_every_panel() {
    let sc = Scenario::wean(); // full length so the elevator region exists
    let fig = scenario_figure(&sc, 2, &RunConfig::default());
    let n = fig.loss_pct.buckets.len();
    // Find the worst-loss checkpoint: it must be the elevator (z4e,
    // index 6 of 10) and extreme in all three derived panels.
    let worst = (0..n)
        .max_by(|&a, &b| {
            fig.loss_pct.buckets[a]
                .max()
                .total_cmp(&fig.loss_pct.buckets[b].max())
        })
        .expect("buckets exist");
    assert!(
        (5..=7).contains(&worst),
        "worst loss at checkpoint {worst}, expected the elevator region"
    );
    assert!(fig.loss_pct.buckets[worst].max() > 30.0);
    assert!(
        fig.latency_ms.buckets[worst].max() > fig.latency_ms.buckets[1].max(),
        "elevator latency not elevated"
    );
    // The 5 s distillation window lags the physical collapse slightly,
    // so check the signal floor over the whole elevator region.
    let region_floor = (5..=7)
        .map(|i| fig.signal.buckets[i].min())
        .fold(f64::INFINITY, f64::min);
    assert!(
        region_floor < 6.0,
        "elevator signal not collapsed: {region_floor:.1}"
    );
}

#[test]
fn chatterbox_contention_degrades_latency_not_signal() {
    let mut sc = Scenario::chatterbox();
    sc.duration = SimDuration::from_secs(60);
    let fig = scenario_figure(&sc, 2, &RunConfig::default());
    let (sig, lat, _bw, _loss) = fig.histograms.expect("stationary scenario");
    // Signal stays high...
    let sig_norm = sig.normalized();
    let high: f64 = sig_norm
        .iter()
        .filter(|&&(c, _)| c >= 14.0)
        .map(|&(_, f)| f)
        .sum();
    assert!(
        high > 0.6,
        "signal histogram not concentrated high: {high:.2}"
    );
    // ...while latency shows a contention tail.
    let lat_norm = lat.normalized();
    let tail: f64 = lat_norm
        .iter()
        .filter(|&&(c, _)| c >= 10.0)
        .map(|&(_, f)| f)
        .sum();
    assert!(tail > 0.05, "no contention latency tail: {tail:.2}");
}
