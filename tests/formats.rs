//! Property tests for the on-disk formats across crate boundaries:
//! arbitrary traces and replay traces must survive binary and JSON
//! encode/decode byte-for-byte, and file I/O must round trip.

use proptest::prelude::*;
use tracekit::format::{decode_replay, decode_trace, encode_replay, encode_trace};
use tracekit::{
    DeviceRecord, Dir, OverrunRecord, PacketRecord, ProtoInfo, QualityTuple, ReplayTrace, Trace,
    TraceRecord,
};

fn arb_proto() -> impl Strategy<Value = ProtoInfo> {
    prop_oneof![
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u64>()).prop_map(
            |(ident, seq, payload_len, gen_ts_ns)| ProtoInfo::IcmpEcho {
                ident,
                seq,
                payload_len,
                gen_ts_ns,
            }
        ),
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u64>()).prop_map(
            |(ident, seq, payload_len, rtt_ns)| ProtoInfo::IcmpEchoReply {
                ident,
                seq,
                payload_len,
                rtt_ns,
            }
        ),
        (any::<u16>(), any::<u16>(), any::<u32>()).prop_map(|(src_port, dst_port, payload_len)| {
            ProtoInfo::Udp {
                src_port,
                dst_port,
                payload_len,
            }
        }),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<u32>()
        )
            .prop_map(|(src_port, dst_port, seq, ack, flags, payload_len)| {
                ProtoInfo::Tcp {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    payload_len,
                }
            }),
        any::<u8>().prop_map(|protocol| ProtoInfo::Other { protocol }),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        (any::<u64>(), any::<bool>(), any::<u32>(), arb_proto()).prop_map(
            |(timestamp_ns, out, wire_len, proto)| {
                TraceRecord::Packet(PacketRecord {
                    timestamp_ns,
                    dir: if out { Dir::Out } else { Dir::In },
                    wire_len,
                    proto,
                })
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(timestamp_ns, signal, quality, silence)| {
                TraceRecord::Device(DeviceRecord {
                    timestamp_ns,
                    signal,
                    quality,
                    silence,
                })
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(timestamp_ns, lost_packets, lost_device)| {
                TraceRecord::Overrun(OverrunRecord {
                    timestamp_ns,
                    lost_packets,
                    lost_device,
                })
            }
        ),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        "[a-z0-9]{1,16}",
        "[a-z0-9]{1,16}",
        any::<u32>(),
        proptest::collection::vec(arb_record(), 0..64),
    )
        .prop_map(|(host, scenario, trial, records)| Trace {
            host,
            scenario,
            trial,
            records,
        })
}

fn arb_tuple() -> impl Strategy<Value = QualityTuple> {
    (
        1u64..u64::MAX / 2,
        any::<u64>(),
        0.0f64..1e9,
        0.0f64..1e9,
        0.0f64..=1.0,
    )
        .prop_map(
            |(duration_ns, latency_ns, vb_ns_per_byte, vr_ns_per_byte, loss)| QualityTuple {
                duration_ns,
                latency_ns,
                vb_ns_per_byte,
                vr_ns_per_byte,
                loss,
            },
        )
}

proptest! {
    #[test]
    fn trace_binary_round_trip(trace in arb_trace()) {
        let bytes = encode_trace(&trace);
        prop_assert_eq!(decode_trace(&bytes).unwrap(), trace);
    }

    #[test]
    fn trace_json_round_trip(trace in arb_trace()) {
        let json = serde_json::to_vec(&trace).unwrap();
        let back: Trace = serde_json::from_slice(&json).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn replay_binary_round_trip(
        source in "[ -~]{0,32}",
        tuples in proptest::collection::vec(arb_tuple(), 0..64),
    ) {
        let replay = ReplayTrace { source, tuples };
        let bytes = encode_replay(&replay);
        prop_assert_eq!(decode_replay(&bytes).unwrap(), replay);
    }

    #[test]
    fn truncated_trace_never_panics(trace in arb_trace(), cut in any::<proptest::sample::Index>()) {
        let bytes = encode_trace(&trace);
        let n = cut.index(bytes.len().max(1));
        // Must error or produce some trace — never panic.
        let _ = decode_trace(&bytes[..n]);
    }

    #[test]
    fn replay_lookup_total_duration_invariants(
        durations in proptest::collection::vec(1u64..1_000_000_000_000, 1..32),
        base in arb_tuple(),
    ) {
        let tuples: Vec<QualityTuple> = durations
            .iter()
            .map(|&d| QualityTuple { duration_ns: d, ..base })
            .collect();
        let replay = ReplayTrace { source: "p".into(), tuples };
        let total: u64 = replay.tuples.iter().map(|t| t.duration_ns).sum();
        prop_assert_eq!(replay.total_duration().as_nanos(), total);
        // at() always returns a tuple for non-empty traces.
        prop_assert!(replay.at(netsim::SimDuration::from_nanos(0)).is_some());
        prop_assert!(replay
            .at_clamped(netsim::SimDuration::from_nanos(u64::MAX))
            .is_some());
        // Clamped lookup past the end is the final tuple.
        prop_assert_eq!(
            replay.at_clamped(netsim::SimDuration::from_nanos(u64::MAX)).unwrap(),
            replay.tuples.last().unwrap()
        );
    }
}

#[test]
fn file_io_round_trip() {
    let dir = std::env::temp_dir().join(format!("tm-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = Trace::new("host", "porter", 3);
    let p = dir.join("t.mntr");
    tracekit::io::write_trace(&p, &trace).unwrap();
    assert_eq!(tracekit::io::read_trace(&p).unwrap(), trace);

    let replay = ReplayTrace::constant(
        "r",
        netsim::SimDuration::from_secs(5),
        netsim::SimDuration::from_millis(2),
        4000.0,
        800.0,
        0.1,
    );
    for name in ["r.mnrp", "r.json"] {
        let p = dir.join(name);
        tracekit::io::write_replay(&p, &replay).unwrap();
        assert_eq!(tracekit::io::read_replay(&p).unwrap(), replay);
    }
}
