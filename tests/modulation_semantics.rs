//! End-to-end semantics of the modulation layer observed through real
//! benchmarks: scheduling granularity, compensation, loss, and the
//! daemon-fed kernel buffer.

use emu::{build_ethernet, Hardware, SERVER_IP};
use modulate::{ModulationDaemon, Modulator, TickClock, TupleBuffer};
use netsim::{SimDuration, SimTime};
use tracekit::ReplayTrace;
use workloads::{FtpClient, FtpDirection, FtpServer, PingConfig, PingWorkload};

fn wavelan_like(span_secs: u64) -> ReplayTrace {
    ReplayTrace::constant(
        "synthetic wavelan",
        SimDuration::from_secs(span_secs),
        SimDuration::from_millis(2),
        4000.0,
        800.0,
        0.0,
    )
}

fn ftp_with_modulator(m: Modulator, size: usize) -> f64 {
    let (mut tb, app) = build_ethernet(3, Hardware::default(), |laptop, server| {
        laptop.set_shim(Box::new(m));
        server.add_app(Box::new(FtpServer::new()));
        laptop.add_app(Box::new(FtpClient::new(
            SERVER_IP,
            FtpDirection::Send,
            size,
        )))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(1200));
    tb.laptop_host()
        .app::<FtpClient>(app)
        .elapsed()
        .expect("transfer completed")
        .as_secs_f64()
}

#[test]
fn modulated_throughput_matches_emulated_bottleneck() {
    // Vb = 4000 ns/B → 2 Mb/s. 2 MB should take ≈ 8–11 s (headers,
    // ACK interference in the unified queue, slow start).
    let secs = ftp_with_modulator(Modulator::from_replay(wavelan_like(3600)), 2_000_000);
    assert!((8.0..14.0).contains(&secs), "{secs}");
}

#[test]
fn ideal_clock_vs_netbsd_tick() {
    // With a 2 ms fixed latency and fast per-byte costs, small packets'
    // delays fall under half a tick: the NetBSD clock under-delays
    // relative to an ideal clock. Measure with ping RTTs.
    let rtt_with = |clock: TickClock| {
        let replay = ReplayTrace::constant(
            "lat only",
            SimDuration::from_secs(3600),
            SimDuration::from_millis(2),
            0.0,
            0.0,
            0.0,
        );
        let (mut tb, app) = build_ethernet(4, Hardware::default(), |laptop, server| {
            let _ = server;
            laptop.set_shim(Box::new(
                Modulator::from_replay(replay.clone()).with_clock(clock),
            ));
            let mut cfg = PingConfig::paper(SERVER_IP);
            cfg.duration = SimDuration::from_secs(10);
            laptop.add_app(Box::new(PingWorkload::new(cfg)))
        });
        tb.start();
        tb.sim.run_until(SimTime::from_secs(15));
        let w: &PingWorkload = tb.laptop_host().app(app);
        assert!(w.replies > 0);
        w.replies
    };
    // Both complete; the behavioural difference (under-delay) is covered
    // at the unit level; here we assert the stack runs under both clocks.
    assert!(rtt_with(TickClock::netbsd()) > 0);
    assert!(rtt_with(TickClock::ideal()) > 0);
}

#[test]
fn compensation_speeds_up_inbound_only() {
    let base = Modulator::from_replay(wavelan_like(3600));
    let store = ftp_with_modulator(base, 1_000_000);

    let comp_recv = {
        let m = Modulator::from_replay(wavelan_like(3600)).with_compensation(800.0);
        let (mut tb, app) = build_ethernet(5, Hardware::default(), |laptop, server| {
            laptop.set_shim(Box::new(m));
            server.add_app(Box::new(FtpServer::new()));
            laptop.add_app(Box::new(FtpClient::new(
                SERVER_IP,
                FtpDirection::Recv,
                1_000_000,
            )))
        });
        tb.start();
        tb.sim.run_until(SimTime::from_secs(600));
        tb.laptop_host()
            .app::<FtpClient>(app)
            .elapsed()
            .expect("transfer completed")
            .as_secs_f64()
    };
    // Inbound Vb reduced 4000 → 3200 ns/B: fetch with compensation beats
    // uncompensated store by roughly the Vb ratio.
    assert!(
        comp_recv < store * 0.95,
        "store {store:.2}s, compensated fetch {comp_recv:.2}s"
    );
}

#[test]
fn modulated_loss_slows_transfers() {
    let lossless = ftp_with_modulator(Modulator::from_replay(wavelan_like(3600)), 1_000_000);
    let lossy_replay = ReplayTrace::constant(
        "lossy",
        SimDuration::from_secs(3600),
        SimDuration::from_millis(2),
        4000.0,
        800.0,
        0.02,
    );
    let lossy = ftp_with_modulator(Modulator::from_replay(lossy_replay), 1_000_000);
    assert!(
        lossy > lossless * 1.1,
        "loss had no effect: {lossless:.2}s vs {lossy:.2}s"
    );
}

#[test]
fn daemon_fed_buffer_modulates_like_in_memory_trace() {
    // The architecture of §3.3: daemon streams tuples through a bounded
    // kernel buffer. End-to-end times must match the in-memory path.
    let replay = wavelan_like(600);
    let in_memory = ftp_with_modulator(Modulator::from_replay(replay.clone()), 500_000);

    let buf = TupleBuffer::new(16);
    let m = Modulator::from_buffer(buf.clone());
    let (mut tb, app) = build_ethernet(3, Hardware::default(), |laptop, server| {
        laptop.set_shim(Box::new(m));
        server.add_app(Box::new(FtpServer::new()));
        let daemon = ModulationDaemon::new(buf.clone(), replay.clone());
        laptop.add_app(Box::new(daemon));
        laptop.add_app(Box::new(FtpClient::new(
            SERVER_IP,
            FtpDirection::Send,
            500_000,
        )))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(600));
    let via_daemon = tb
        .laptop_host()
        .app::<FtpClient>(app)
        .elapsed()
        .expect("transfer completed")
        .as_secs_f64();
    let ratio = in_memory.max(via_daemon) / in_memory.min(via_daemon);
    assert!(
        ratio < 1.1,
        "in-memory {in_memory:.2}s vs daemon-fed {via_daemon:.2}s"
    );
}

#[test]
fn unmodulated_ethernet_is_much_faster_than_modulated() {
    let modulated = ftp_with_modulator(Modulator::from_replay(wavelan_like(3600)), 2_000_000);
    let (mut tb, app) = build_ethernet(6, Hardware::default(), |laptop, server| {
        server.add_app(Box::new(FtpServer::new()));
        laptop.add_app(Box::new(FtpClient::new(
            SERVER_IP,
            FtpDirection::Send,
            2_000_000,
        )))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(120));
    let bare = tb
        .laptop_host()
        .app::<FtpClient>(app)
        .elapsed()
        .expect("transfer completed")
        .as_secs_f64();
    assert!(
        modulated > bare * 1.8,
        "bare {bare:.2}s vs modulated {modulated:.2}s"
    );
}
