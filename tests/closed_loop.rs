//! Integration tests spanning the whole methodology: collection →
//! distillation → modulation, validated against channel ground truth and
//! live benchmark runs.

use emu::{collect_and_distill, collect_trace, live_run, modulated_run, Benchmark, RunConfig};
use netsim::SimDuration;
use wavelan::{Checkpoint, Scenario};

/// A steady scenario whose parameters we control exactly.
fn steady_scenario(latency_ms: f64, bw_kbps: f64, loss: f64, secs: u64) -> Scenario {
    let mut sc = Scenario::chatterbox();
    sc.cross = None;
    sc.stationary = true;
    sc.duration = SimDuration::from_secs(secs);
    sc.checkpoints = vec![
        Checkpoint {
            label: "c",
            signal: (18.0, 18.0),
            latency_ms: (latency_ms, latency_ms),
            bw_kbps: (bw_kbps, bw_kbps),
            loss: (loss, loss),
        };
        2
    ];
    sc
}

#[test]
fn distillation_recovers_latency_bandwidth_and_loss() {
    let sc = steady_scenario(5.0, 1400.0, 0.02, 90);
    let report = collect_and_distill(&sc, 3, &RunConfig::default());
    let replay = &report.replay;
    assert!(replay.is_valid());

    // Latency: model 5 ms + MAC overhead (~0.3 ms) + air queueing.
    let lat = replay.mean_latency().as_millis_f64();
    assert!((4.5..9.0).contains(&lat), "latency {lat} ms");

    // Bottleneck: 1400 kb/s → V = 5.71 µs/B, plus MAC/s2 ≈ 0.55 µs/B.
    let vb = replay.mean_vb();
    assert!((5000.0..8000.0).contains(&vb), "vb {vb} ns/B");

    // Loss: 2% per direction, trial multiplier within ±12%.
    let loss = replay.mean_loss();
    assert!((0.008..0.042).contains(&loss), "loss {loss}");
}

#[test]
fn modulated_ftp_tracks_live_ftp_on_steady_channel() {
    let sc = steady_scenario(4.0, 1400.0, 0.005, 60);
    let cfg = RunConfig::default();
    let live = live_run(&sc, 1, Benchmark::FtpRecv, &cfg).secs();
    let report = collect_and_distill(&sc, 1, &cfg);
    let modulated = modulated_run(&report.replay, 1, Benchmark::FtpRecv, &cfg).secs();
    let ratio = live.max(modulated) / live.min(modulated);
    assert!(
        ratio < 1.35,
        "live {live:.1}s vs modulated {modulated:.1}s (ratio {ratio:.2})"
    );
}

#[test]
fn collection_is_transparent_to_the_workload() {
    // The FTP benchmark's elapsed time must be unaffected by whether the
    // tracer is attached (the methodology's transparency requirement) —
    // identical seeds, identical channel, tracer on/off.
    use emu::{build_wireless, Hardware, SERVER_IP};
    use netsim::{SimRng, SimTime};
    use tracekit::{Collector, PseudoDevice};
    use workloads::{FtpClient, FtpDirection, FtpServer};

    let run = |traced: bool| {
        let sc = steady_scenario(4.0, 1400.0, 0.01, 60);
        let mut trial_rng = SimRng::seed_from_u64(77);
        let channel = sc.channel(&mut trial_rng);
        let (mut tb, app) = build_wireless(5, Hardware::default(), channel, |laptop, server| {
            if traced {
                let dev = PseudoDevice::new(4096);
                dev.open();
                laptop.set_tracer(Box::new(Collector::new(dev)));
            }
            server.add_app(Box::new(FtpServer::new()));
            laptop.add_app(Box::new(FtpClient::new(
                SERVER_IP,
                FtpDirection::Send,
                2_000_000,
            )))
        });
        tb.start();
        tb.sim.run_until(SimTime::from_secs(300));
        tb.laptop_host()
            .app::<FtpClient>(app)
            .elapsed()
            .expect("transfer completed")
            .as_nanos()
    };
    assert_eq!(run(false), run(true), "tracing perturbed the workload");
}

#[test]
fn trace_records_cover_workload_and_device() {
    let sc = steady_scenario(3.0, 1500.0, 0.0, 30);
    let trace = collect_trace(&sc, 1, &RunConfig::default());
    // 30 groups × 3 probes, echo + reply each → ~180 packet records.
    let pkts = trace.packets().count();
    assert!((150..=200).contains(&pkts), "packets {pkts}");
    // Device sampled at 10 Hz for ~35 s.
    let dev = trace.device_samples().count();
    assert!(dev >= 250, "device samples {dev}");
    assert_eq!(trace.lost_records(), 0);
}

#[test]
fn live_runs_are_deterministic_and_trials_differ() {
    let sc = steady_scenario(4.0, 1400.0, 0.01, 60);
    let cfg = RunConfig::default();
    let a = live_run(&sc, 1, Benchmark::FtpSend, &cfg).secs();
    let b = live_run(&sc, 1, Benchmark::FtpSend, &cfg).secs();
    assert_eq!(a, b, "same trial must reproduce exactly");
    let c = live_run(&sc, 2, Benchmark::FtpSend, &cfg).secs();
    assert_ne!(a, c, "different trials must differ");
}

#[test]
fn elevator_outage_visible_in_distilled_trace() {
    let mut sc = Scenario::wean();
    sc.duration = SimDuration::from_secs(120);
    let report = collect_and_distill(&sc, 1, &RunConfig::default());
    let worst = report
        .replay
        .tuples
        .iter()
        .map(|t| t.loss)
        .fold(0.0f64, f64::max);
    assert!(worst > 0.3, "elevator loss not captured: worst {worst}");
    // And the trace recovers afterwards.
    let last = report.replay.tuples.last().expect("tuples exist");
    assert!(last.loss < 0.2, "post-elevator loss {}", last.loss);
}
