//! CLI error-path contract tests for `tracemod`, driven through the
//! real binary: usage mistakes exit 2 with a diagnostic on stderr,
//! mid-run failures exit 1, and the `chaos` subcommand's artifacts are
//! byte-identical across reruns and worker counts.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

fn tracemod(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tracemod"))
        .args(args)
        .output()
        .expect("tracemod binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_exit(out: &Output, code: i32, stderr_needle: &str) {
    let stderr = stderr_of(out);
    assert_eq!(
        out.status.code(),
        Some(code),
        "expected exit {code}; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains(stderr_needle),
        "stderr must mention {stderr_needle:?}; got:\n{stderr}"
    );
}

/// A unique temp path per test file usage (tests run in one process).
fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "tracemod-cli-{}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
        tag
    ))
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = tracemod(&["frobnicate"]);
    assert_exit(&out, 2, "unknown command 'frobnicate'");
    assert!(stderr_of(&out).contains("usage"), "must print usage help");
}

#[test]
fn no_command_is_a_usage_error() {
    let out = tracemod(&[]);
    assert_exit(&out, 2, "no command given");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = tracemod(&["chaos", "--seed", "1", "--bogus", "x"]);
    assert_exit(&out, 2, "--bogus");
}

#[test]
fn chaos_without_seed_is_a_usage_error() {
    let out = tracemod(&["chaos", "--plan", "/nonexistent.json"]);
    assert_exit(&out, 2, "missing required flag --seed");
}

#[test]
fn chaos_with_non_numeric_seed_is_a_usage_error() {
    let out = tracemod(&["chaos", "--seed", "banana", "--plan", "/nonexistent.json"]);
    assert_exit(&out, 2, "invalid value for --seed");
}

#[test]
fn chaos_with_unreadable_plan_is_a_usage_error() {
    let out = tracemod(&["chaos", "--seed", "1", "--plan", "/nonexistent/plan.json"]);
    assert_exit(&out, 2, "read fault plan");
}

#[test]
fn chaos_with_malformed_plan_json_is_a_usage_error() {
    let path = temp_path("bad-plan.json");
    std::fs::write(&path, "this is not json").unwrap();
    let out = tracemod(&["chaos", "--seed", "1", "--plan", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_exit(&out, 2, "bad fault plan");
}

#[test]
fn chaos_fault_budget_exceeded_is_a_runtime_error() {
    let plan = temp_path("busy-plan.json");
    std::fs::write(
        &plan,
        r#"{"faults":[{"DropTuples":{"start":0,"end":50}},{"OomRing":{"cap":128}}]}"#,
    )
    .unwrap();
    let out = tracemod(&[
        "chaos",
        "--seed",
        "5",
        "--plan",
        plan.to_str().unwrap(),
        "--scenario",
        "porter",
        "--duration-secs",
        "30",
        "--fault-budget",
        "1",
    ]);
    std::fs::remove_file(&plan).ok();
    assert_exit(&out, 1, "fault budget exceeded");
}

#[test]
fn chaos_check_passes_on_an_empty_plan() {
    let plan = temp_path("empty-plan.json");
    std::fs::write(&plan, r#"{"faults":[]}"#).unwrap();
    let out = tracemod(&[
        "chaos",
        "--seed",
        "7",
        "--plan",
        plan.to_str().unwrap(),
        "--scenario",
        "porter",
        "--duration-secs",
        "30",
        "--check",
    ]);
    std::fs::remove_file(&plan).ok();
    let stderr = stderr_of(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "fidelity gate must pass a fault-free run; stderr:\n{stderr}"
    );
}

/// The acceptance bar from the chaos design: the same `(seed, plan)`
/// produces byte-identical manifest and fault-log artifacts whether the
/// trial plan runs on 1, 2 or 8 workers, and across reruns.
#[test]
fn chaos_artifacts_identical_across_jobs_and_reruns() {
    let plan = temp_path("det-plan.json");
    std::fs::write(
        &plan,
        r#"{"faults":[
            {"CorruptChunk":{"at_byte":2048}},
            {"TruncateTrace":{"pct":10.0}},
            {"DropTuples":{"start":3,"end":6}},
            {"StallFeed":{"virtual_ms":15000}},
            {"ClockJump":{"delta_ms":400}},
            {"KillWorker":{"idx":0,"at_record":200}},
            {"OomRing":{"cap":128}}
        ]}"#,
    )
    .unwrap();

    let run = |jobs: &str, tag: &str| -> (Vec<u8>, Vec<u8>) {
        let obs = temp_path(&format!("obs-{jobs}-{tag}.json"));
        let faults = temp_path(&format!("faults-{jobs}-{tag}.jsonl"));
        let out = tracemod(&[
            "chaos",
            "--seed",
            "42",
            "--plan",
            plan.to_str().unwrap(),
            "--scenario",
            "porter",
            "--duration-secs",
            "30",
            "--trials",
            "3",
            "--jobs",
            jobs,
            "--obs-out",
            obs.to_str().unwrap(),
            "--fault-out",
            faults.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "chaos run failed; stderr:\n{}",
            stderr_of(&out)
        );
        let pair = (
            std::fs::read(&obs).expect("obs artifact written"),
            std::fs::read(&faults).expect("fault artifact written"),
        );
        std::fs::remove_file(&obs).ok();
        std::fs::remove_file(&faults).ok();
        pair
    };

    let baseline = run("1", "a");
    assert!(!baseline.0.is_empty(), "manifests must not be empty");
    assert!(!baseline.1.is_empty(), "fault log must not be empty");
    assert_eq!(run("1", "b"), baseline, "rerun at --jobs 1 diverged");
    assert_eq!(run("2", "a"), baseline, "--jobs 2 diverged from --jobs 1");
    assert_eq!(run("8", "a"), baseline, "--jobs 8 diverged from --jobs 1");

    std::fs::remove_file(&plan).ok();
}
