//! CLI error-path contract tests for `tracemod`, driven through the
//! real binary: usage mistakes exit 2 with a diagnostic on stderr,
//! mid-run failures exit 1, and the `chaos` subcommand's artifacts are
//! byte-identical across reruns and worker counts.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

fn tracemod(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tracemod"))
        .args(args)
        .output()
        .expect("tracemod binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_exit(out: &Output, code: i32, stderr_needle: &str) {
    let stderr = stderr_of(out);
    assert_eq!(
        out.status.code(),
        Some(code),
        "expected exit {code}; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains(stderr_needle),
        "stderr must mention {stderr_needle:?}; got:\n{stderr}"
    );
}

/// A unique temp path per test file usage (tests run in one process).
fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "tracemod-cli-{}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
        tag
    ))
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = tracemod(&["frobnicate"]);
    assert_exit(&out, 2, "unknown command 'frobnicate'");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("usage"), "must print usage help");
    // The usage text enumerates every subcommand, so a typo'd command
    // always shows the full menu.
    for cmd in [
        "scenarios",
        "collect",
        "distill",
        "inspect",
        "replay",
        "live",
        "live-pipeline",
        "obs-report",
        "trace-export",
        "journey",
        "bench-diff",
        "chaos",
        "fleet",
        "alerts",
        "diff-runs",
        "help",
    ] {
        assert!(stderr.contains(cmd), "usage must list {cmd:?}");
    }
}

#[test]
fn help_prints_usage_on_stdout_and_exits_zero() {
    for spelling in [&["help"][..], &["--help"], &["-h"], &["fleet", "--help"]] {
        let out = tracemod(spelling);
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert_eq!(
            out.status.code(),
            Some(0),
            "{spelling:?} must exit 0; stderr:\n{}",
            stderr_of(&out)
        );
        assert!(
            stdout.contains("usage: tracemod"),
            "{spelling:?} must print usage on stdout"
        );
        assert!(stdout.contains("diff-runs"), "usage lists every command");
    }
}

#[test]
fn no_command_is_a_usage_error() {
    let out = tracemod(&[]);
    assert_exit(&out, 2, "no command given");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = tracemod(&["chaos", "--seed", "1", "--bogus", "x"]);
    assert_exit(&out, 2, "--bogus");
}

#[test]
fn chaos_without_seed_is_a_usage_error() {
    let out = tracemod(&["chaos", "--plan", "/nonexistent.json"]);
    assert_exit(&out, 2, "missing required flag --seed");
}

#[test]
fn chaos_with_non_numeric_seed_is_a_usage_error() {
    let out = tracemod(&["chaos", "--seed", "banana", "--plan", "/nonexistent.json"]);
    assert_exit(&out, 2, "invalid value for --seed");
}

#[test]
fn chaos_with_unreadable_plan_is_a_usage_error() {
    let out = tracemod(&["chaos", "--seed", "1", "--plan", "/nonexistent/plan.json"]);
    assert_exit(&out, 2, "read fault plan");
}

#[test]
fn chaos_with_malformed_plan_json_is_a_usage_error() {
    let path = temp_path("bad-plan.json");
    std::fs::write(&path, "this is not json").unwrap();
    let out = tracemod(&["chaos", "--seed", "1", "--plan", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_exit(&out, 2, "bad fault plan");
}

#[test]
fn fleet_with_unreadable_pack_is_a_usage_error() {
    let out = tracemod(&[
        "fleet",
        "--clients",
        "4",
        "--scenario",
        "/nonexistent/pack.toml",
    ]);
    assert_exit(&out, 2, "read scenario pack");
    assert!(stderr_of(&out).contains("usage"), "must print usage help");
}

#[test]
fn fleet_with_malformed_pack_toml_is_a_usage_error() {
    let path = temp_path("bad-pack.toml");
    std::fs::write(&path, "name = \"x\"\nduration_secs = 9\nwat\n").unwrap();
    let out = tracemod(&[
        "fleet",
        "--clients",
        "4",
        "--scenario",
        path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&path).ok();
    // Syntax errors carry the offending line number.
    assert_exit(&out, 2, "pack line 3");
}

#[test]
fn fleet_with_unknown_model_family_is_a_usage_error() {
    let path = temp_path("martian-pack.toml");
    std::fs::write(
        &path,
        "name = \"x\"\nduration_secs = 9\n\n[[model]]\nfamily = \"martian\"\n",
    )
    .unwrap();
    let out = tracemod(&[
        "fleet",
        "--clients",
        "4",
        "--scenario",
        path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&path).ok();
    assert_exit(&out, 2, "unknown model family 'martian'");
    assert!(
        stderr_of(&out).contains("registered:"),
        "error must list the registered families"
    );
}

#[test]
fn live_with_out_of_range_pack_param_is_a_usage_error() {
    // Pack paths work on single-channel commands too, with the same
    // exit-2 contract for semantic errors.
    let path = temp_path("lossy-pack.toml");
    std::fs::write(
        &path,
        "name = \"x\"\nduration_secs = 9\n\n[[model]]\nfamily = \"leo\"\nloss = 3.0\n",
    )
    .unwrap();
    let out = tracemod(&[
        "live",
        "--scenario",
        path.to_str().unwrap(),
        "--benchmark",
        "web",
    ]);
    std::fs::remove_file(&path).ok();
    assert_exit(&out, 2, "loss must be in [0, 1]");
}

#[test]
fn fleet_runs_a_valid_pack_end_to_end() {
    let pack = temp_path("mini-pack.toml");
    std::fs::write(
        &pack,
        "name = \"mini\"\nduration_secs = 8\n\n[[model]]\nfamily = \"leo\"\nshare = 3\n\
         pass_secs = 6\noutage_ms = 150\n\n[[model]]\nfamily = \"errant\"\noperator = \"op2\"\n",
    )
    .unwrap();
    let report = temp_path("mini-fleet.json");
    let out = tracemod(&[
        "fleet",
        "--clients",
        "8",
        "--scenario",
        pack.to_str().unwrap(),
        "--obs-out",
        report.to_str().unwrap(),
        "--check",
    ]);
    let stderr = stderr_of(&out);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{stderr}");
    assert!(stderr.contains("fleet fidelity gate: PASS"), "{stderr}");
    let json = std::fs::read_to_string(&report).unwrap();
    std::fs::remove_file(&pack).ok();
    std::fs::remove_file(&report).ok();
    // The aggregate report carries the per-family client breakdown.
    assert!(json.contains("\"family\": \"leo\""), "{json}");
    assert!(json.contains("\"family\": \"errant\""), "{json}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("model leo ["), "{stdout}");
}

#[test]
fn chaos_fault_budget_exceeded_is_a_runtime_error() {
    let plan = temp_path("busy-plan.json");
    std::fs::write(
        &plan,
        r#"{"faults":[{"DropTuples":{"start":0,"end":50}},{"OomRing":{"cap":128}}]}"#,
    )
    .unwrap();
    let out = tracemod(&[
        "chaos",
        "--seed",
        "5",
        "--plan",
        plan.to_str().unwrap(),
        "--scenario",
        "porter",
        "--duration-secs",
        "30",
        "--fault-budget",
        "1",
    ]);
    std::fs::remove_file(&plan).ok();
    assert_exit(&out, 1, "fault budget exceeded");
}

#[test]
fn chaos_check_passes_on_an_empty_plan() {
    let plan = temp_path("empty-plan.json");
    std::fs::write(&plan, r#"{"faults":[]}"#).unwrap();
    let out = tracemod(&[
        "chaos",
        "--seed",
        "7",
        "--plan",
        plan.to_str().unwrap(),
        "--scenario",
        "porter",
        "--duration-secs",
        "30",
        "--check",
    ]);
    std::fs::remove_file(&plan).ok();
    let stderr = stderr_of(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "fidelity gate must pass a fault-free run; stderr:\n{stderr}"
    );
}

/// The acceptance bar from the chaos design: the same `(seed, plan)`
/// produces byte-identical manifest and fault-log artifacts whether the
/// trial plan runs on 1, 2 or 8 workers, and across reruns.
#[test]
fn chaos_artifacts_identical_across_jobs_and_reruns() {
    let plan = temp_path("det-plan.json");
    std::fs::write(
        &plan,
        r#"{"faults":[
            {"CorruptChunk":{"at_byte":2048}},
            {"TruncateTrace":{"pct":10.0}},
            {"DropTuples":{"start":3,"end":6}},
            {"StallFeed":{"virtual_ms":15000}},
            {"ClockJump":{"delta_ms":400}},
            {"KillWorker":{"idx":0,"at_record":200}},
            {"OomRing":{"cap":128}}
        ]}"#,
    )
    .unwrap();

    let run = |jobs: &str, tag: &str| -> (Vec<u8>, Vec<u8>) {
        let obs = temp_path(&format!("obs-{jobs}-{tag}.json"));
        let faults = temp_path(&format!("faults-{jobs}-{tag}.jsonl"));
        let out = tracemod(&[
            "chaos",
            "--seed",
            "42",
            "--plan",
            plan.to_str().unwrap(),
            "--scenario",
            "porter",
            "--duration-secs",
            "30",
            "--trials",
            "3",
            "--jobs",
            jobs,
            "--obs-out",
            obs.to_str().unwrap(),
            "--fault-out",
            faults.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "chaos run failed; stderr:\n{}",
            stderr_of(&out)
        );
        let pair = (
            std::fs::read(&obs).expect("obs artifact written"),
            std::fs::read(&faults).expect("fault artifact written"),
        );
        std::fs::remove_file(&obs).ok();
        std::fs::remove_file(&faults).ok();
        pair
    };

    let baseline = run("1", "a");
    assert!(!baseline.0.is_empty(), "manifests must not be empty");
    assert!(!baseline.1.is_empty(), "fault log must not be empty");
    assert_eq!(run("1", "b"), baseline, "rerun at --jobs 1 diverged");
    assert_eq!(run("2", "a"), baseline, "--jobs 2 diverged from --jobs 1");
    assert_eq!(run("8", "a"), baseline, "--jobs 8 diverged from --jobs 1");

    std::fs::remove_file(&plan).ok();
}

#[test]
fn diff_runs_wants_two_artifacts() {
    let out = tracemod(&["diff-runs"]);
    assert_exit(&out, 2, "missing run artifacts");
    let a = temp_path("only-one.jsonl");
    std::fs::write(&a, "{\"t_ns\":1,\"events\":2}\n").unwrap();
    let out = tracemod(&["diff-runs", a.to_str().unwrap()]);
    std::fs::remove_file(&a).ok();
    assert_exit(&out, 2, "missing second run artifact");
}

#[test]
fn diff_runs_reports_identical_and_first_divergence() {
    let a = temp_path("run-a.jsonl");
    let b = temp_path("run-b.jsonl");
    let rows = |released: u64| {
        format!(
            "{{\"t_ns\":1000000000,\"events\":10,\"released\":4}}\n\
             {{\"t_ns\":2000000000,\"events\":12,\"released\":{released}}}\n"
        )
    };
    std::fs::write(&a, rows(5)).unwrap();
    std::fs::write(&b, rows(5)).unwrap();

    // Identical: exit 0 and say so, with or without --check.
    let out = tracemod(&[
        "diff-runs",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--check",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "identical runs must pass --check; stderr:\n{}",
        stderr_of(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("runs identical"), "got:\n{stdout}");
    assert!(stdout.contains("2 record(s)"), "got:\n{stdout}");

    // Perturb one field of the second record: the report names the
    // record, the field, both values, and the virtual time — and
    // --check turns it into exit 1.
    std::fs::write(&b, rows(9)).unwrap();
    let out = tracemod(&["diff-runs", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "without --check divergence is informational"
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for needle in [
        "first divergence",
        "record 1",
        "released",
        "5",
        "9",
        "t=2.0s",
    ] {
        assert!(
            stdout.contains(needle),
            "report must mention {needle:?}; got:\n{stdout}"
        );
    }
    let out = tracemod(&[
        "diff-runs",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--check",
    ]);
    assert_exit(&out, 1, "runs diverge");

    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn alerts_needs_rules_and_inputs() {
    let out = tracemod(&["alerts"]);
    assert_exit(&out, 2, "missing required flag --rules");
    let out = tracemod(&["alerts", "--rules", "builtin"]);
    assert_exit(&out, 2, "nothing to evaluate");
    let out = tracemod(&["alerts", "--rules", "/nonexistent/rules.toml"]);
    assert_exit(&out, 2, "read rules");
}

#[test]
fn alerts_check_gates_on_telemetry_and_respects_suppression() {
    let rules = temp_path("rules.toml");
    std::fs::write(
        &rules,
        "[[rule]]\n\
         name = \"queue-depth\"\n\
         metric = \"sample.queue_depth\"\n\
         severity = \"critical\"\n\
         above = 100\n\
         suppress = [\"stall_feed\"]\n\
         suppress_window_secs = 5.0\n",
    )
    .unwrap();
    let telemetry = temp_path("tel.jsonl");
    let row = |t_s: u64, depth: u64| {
        format!(
            "{{\"t_ns\":{},\"events\":10,\"queue_depth\":{depth},\"packets_live\":0,\
             \"mod_held\":0,\"probes_sent\":1,\"rtts_completed\":1,\"packets_lost\":0,\
             \"released\":1,\"abs_delay_error_ns\":0,\"station_frames\":0,\
             \"degraded_clients\":0}}\n",
            t_s * 1_000_000_000
        )
    };
    std::fs::write(&telemetry, format!("{}{}", row(1, 5), row(2, 500))).unwrap();

    // The breach is active: --check fails with the rule named.
    let out = tracemod(&[
        "alerts",
        "--rules",
        rules.to_str().unwrap(),
        "--telemetry",
        telemetry.to_str().unwrap(),
        "--check",
    ]);
    assert_exit(&out, 1, "queue-depth");

    // The same breach inside a matching fault's suppression window is
    // attributed, not gated on.
    let faults = temp_path("faults.jsonl");
    std::fs::write(
        &faults,
        "{\"t_virtual_ns\":1500000000,\"fault\":\"stall_feed\",\"info\":\"feed stalled\"}\n",
    )
    .unwrap();
    let out = tracemod(&[
        "alerts",
        "--rules",
        rules.to_str().unwrap(),
        "--telemetry",
        telemetry.to_str().unwrap(),
        "--faults",
        faults.to_str().unwrap(),
        "--check",
    ]);
    let stderr = stderr_of(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "suppressed breach must pass the gate; stderr:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("stall_feed@1.5s"),
        "markdown must attribute the suppression; got:\n{stdout}"
    );

    std::fs::remove_file(&rules).ok();
    std::fs::remove_file(&telemetry).ok();
    std::fs::remove_file(&faults).ok();
}
