//! Failure-injection tests: the methodology must degrade gracefully when
//! its own machinery is starved (kernel buffer overrun) and when the
//! network disappears entirely mid-run.

use distill::{distill_with_report, DistillConfig};
use emu::{build_wireless, Hardware, SERVER_IP};
use netsim::{SimDuration, SimRng, SimTime};
use tracekit::{CollectionDaemon, Collector, PseudoDevice, TraceRecord};
use wavelan::{Checkpoint, Scenario};
use workloads::{PingConfig, PingWorkload};

fn steady(secs: u64) -> Scenario {
    let mut sc = Scenario::chatterbox();
    sc.cross = None;
    sc.duration = SimDuration::from_secs(secs);
    sc.checkpoints = vec![
        Checkpoint {
            label: "c",
            signal: (18.0, 18.0),
            latency_ms: (3.0, 3.0),
            bw_kbps: (1400.0, 1400.0),
            loss: (0.0, 0.0),
        };
        2
    ];
    sc
}

/// Collection with a pathologically small kernel buffer and a slow drain
/// daemon: records are lost, the overrun is *accounted*, and distillation
/// still produces a usable replay trace from what survived.
#[test]
fn tiny_kernel_buffer_overruns_are_accounted_and_survivable() {
    let sc = steady(60);
    let mut trial_rng = SimRng::seed_from_u64(3);
    let channel = sc.channel(&mut trial_rng);
    let meter = channel.meter();
    let dev = PseudoDevice::new(12); // absurdly small ring
    let (mut tb, daemon) = build_wireless(9, Hardware::default(), channel, |laptop, _server| {
        let collector = Collector::new(dev.clone())
            .with_signal_source(Box::new(move || meter.lock().quantized()));
        laptop.set_tracer(Box::new(collector));
        let mut cfg = PingConfig::paper(SERVER_IP);
        cfg.duration = SimDuration::from_secs(60);
        laptop.add_app(Box::new(PingWorkload::new(cfg)));
        let mut d = CollectionDaemon::new(dev.clone(), "thinkpad", "starved", 1);
        d.interval = SimDuration::from_secs(2); // drains far too rarely
        d.batch = 8;
        laptop.add_app(Box::new(d))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(66));
    let now_ns = tb.sim.now().as_nanos();
    let trace = {
        let host: &mut netstack::Host = tb.sim.node_mut(tb.laptop);
        host.app_mut::<CollectionDaemon>(daemon).finish(now_ns)
    };

    // The overrun is explicit in the trace, per §3.1.2.
    let lost = trace.lost_records();
    assert!(lost > 50, "expected heavy record loss, got {lost}");
    assert!(trace
        .records
        .iter()
        .any(|r| matches!(r, TraceRecord::Overrun(_))));

    // Distillation still works with the surviving records.
    let report = distill_with_report(&trace, &DistillConfig::default());
    assert!(
        report.replay.is_valid(),
        "distillation failed on an overrun trace"
    );
    // Note: missing *reply* records look like losses to the estimator —
    // an honest artifact of buffer overrun that the paper's explicit
    // accounting lets an experimenter detect and discard.
}

/// The NFS RPC layer must ride out a total server outage: requests
/// retransmit with backoff and complete once the server returns.
#[test]
fn rpc_survives_server_outage() {
    use netsim::{Context, EventKind, Node, PortId, Simulator};
    use netstack::{start_host, Host, HostConfig, NIC_PORT};
    use packet::MacAddr;
    use std::net::Ipv4Addr;
    use workloads::{AndrewBenchmark, AndrewConfig, NfsServer};

    /// A relay that black-holes everything inside a time window.
    struct OutageRelay {
        from: SimTime,
        until: SimTime,
    }
    impl Node for OutageRelay {
        fn on_event(&mut self, ev: EventKind, ctx: &mut Context<'_>) {
            if let EventKind::Deliver { port, frame } = ev {
                let now = ctx.now();
                if now >= self.from && now < self.until {
                    return; // outage: drop silently
                }
                ctx.send(PortId(1 - port.0), frame);
            }
        }
    }

    let ip_c = Ipv4Addr::new(10, 0, 0, 1);
    let ip_s = Ipv4Addr::new(10, 0, 0, 2);
    let mut ch = Host::new(
        HostConfig::new("client", ip_c, MacAddr::local(1)).with_arp(ip_s, MacAddr::local(2)),
    );
    let cfg = AndrewConfig {
        dirs: 4,
        files: 8,
        compute: [0.1, 0.3, 0.1, 0.2, 0.5],
        ..AndrewConfig::default()
    };
    let app = ch.add_app(Box::new(AndrewBenchmark::new(ip_s, cfg)));
    let mut sh = Host::new(
        HostConfig::new("nfs", ip_s, MacAddr::local(2)).with_arp(ip_c, MacAddr::local(1)),
    );
    sh.add_app(Box::new(NfsServer::new()));

    let mut sim = Simulator::new(17);
    let nc = sim.add_node(Box::new(ch));
    let ns = sim.add_node(Box::new(sh));
    let relay = sim.add_node(Box::new(OutageRelay {
        from: SimTime::from_secs(1),
        until: SimTime::from_secs(9),
    }));
    let link = netsim::LinkParams::ethernet_10mbps();
    sim.connect_sym(nc, NIC_PORT, relay, PortId(0), link);
    sim.connect_sym(ns, NIC_PORT, relay, PortId(1), link);
    start_host(&mut sim, ns, SimTime::ZERO);
    start_host(&mut sim, nc, SimTime::from_millis(5));
    sim.run_until(SimTime::from_secs(120));

    let b: &AndrewBenchmark = sim.node::<Host>(nc).app(app);
    assert!(b.finished, "benchmark wedged across the outage");
    let (calls, retrans) = b.rpc_stats();
    assert!(retrans > 0, "outage should force retransmissions");
    assert!(calls > 50);
    // Total time reflects the ~8 s outage plus backoff.
    let total = b.total.expect("finished").as_secs_f64();
    assert!(total > 8.0, "outage not felt: {total}");
    assert!(total < 60.0, "recovery took too long: {total}");
}
