//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness with criterion's API
//! shape: [`Criterion::benchmark_group`], [`Throughput`],
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros. Each benchmark is timed over a fixed number of batches and
//! the median batch reported, with derived element/byte throughput.
//! No statistics, plots, or baseline comparison — just enough for
//! `cargo bench` to compile, run, and print comparable numbers.
//!
//! When the `BENCH_JSON` environment variable names a file, each
//! benchmark additionally appends one JSON line to it
//! (`{"name":…,"median_ns_per_iter":…,…}`) so CI can archive results
//! as an artifact without scraping stdout.

#![warn(missing_docs)]

use std::time::Instant;

/// Benchmark driver; collects and prints per-function timings.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, routine: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, None, routine);
        self
    }
}

/// Work performed per iteration, for derived throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this shim always times five
    /// batches regardless of the requested sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Time `routine` and print the result.
    pub fn bench_function(&mut self, name: &str, routine: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{name}", self.name), self.throughput, routine);
        self
    }

    /// End the group (printing already happened per function).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] once.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `routine` `self.iters` times and record the elapsed time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Prevent the optimizer from deleting a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark(
    label: &str,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    // Calibrate: grow the iteration count until one batch takes ≥ ~20ms
    // (or a single iteration is already slow).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        routine(&mut b);
        if b.elapsed_ns >= 20_000_000 || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    // Measure: five batches, report the median per-iteration time.
    let mut samples: Vec<u128> = (0..5)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            routine(&mut b);
            b.elapsed_ns / u128::from(iters.max(1))
        })
        .collect();
    samples.sort_unstable();
    let per_iter_ns = samples[samples.len() / 2];

    let rate = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_sec = count as f64 * 1e9 / per_iter_ns.max(1) as f64;
        (per_sec, unit)
    });
    println!(
        "bench {label:<40} {:>12}/iter{}",
        human_ns(per_iter_ns),
        rate.map(|(r, u)| format!("  ({} {u})", human(r)))
            .unwrap_or_default()
    );
    emit_json_line(label, per_iter_ns, rate);
}

/// Paths already written by this process: the first write to a path
/// truncates any stale file from a previous run, later writes append.
fn bench_json_started() -> &'static std::sync::Mutex<Vec<String>> {
    static STARTED: std::sync::OnceLock<std::sync::Mutex<Vec<String>>> = std::sync::OnceLock::new();
    STARTED.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Append one JSON record for this benchmark to the file named by the
/// `BENCH_JSON` environment variable (no-op when unset; emission
/// failures are reported on stderr but never fail the benchmark). The
/// first record a process writes to a given path truncates it, so a
/// `cargo bench` run never mixes its lines with a previous run's.
fn emit_json_line(label: &str, per_iter_ns: u128, rate: Option<(f64, &str)>) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let fresh = {
        let mut started = bench_json_started()
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if started.contains(&path) {
            false
        } else {
            started.push(path.clone());
            true
        }
    };
    let name: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let mut line = format!("{{\"name\":\"{name}\",\"median_ns_per_iter\":{per_iter_ns}");
    if let Some((per_sec, unit)) = rate {
        line.push_str(&format!(
            ",\"throughput_per_sec\":{per_sec:.1},\"throughput_unit\":\"{unit}\""
        ));
    }
    line.push_str("}\n");
    use std::io::Write;
    let mut opts = std::fs::OpenOptions::new();
    if fresh {
        opts.create(true).write(true).truncate(true);
    } else {
        opts.create(true).append(true);
    }
    let res = opts
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion shim: BENCH_JSON {path}: {e}");
    }
}

fn human_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop_sum", |b| {
            b.iter(|| (0..10u64).map(black_box).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
