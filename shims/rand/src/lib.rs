//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the tiny subset of `rand`'s API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for a few primitive
//! types, and [`Rng::gen_range`] over half-open integer ranges.
//!
//! [`rngs::StdRng`] here is xoshiro256++ seeded through SplitMix64 —
//! a different stream than upstream's ChaCha12, but every consumer in
//! this workspace only requires determinism (same seed → same stream),
//! not any particular stream.

#![warn(missing_docs)]

use std::ops::Range;

/// A type that can produce a uniformly distributed value from an RNG.
pub trait Uniform: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// The convenience sampling surface (`gen`, `gen_range`).
pub trait Rng: RngCore {
    /// Sample a uniform value of type `T`.
    fn gen<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open integer range. Panics when the
    /// range is empty, matching upstream.
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait UniformRange: Sized {
    /// Sample uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_range_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Rejection-free multiply-shift bounded sampling; the
                // modulo bias over a u64 source is negligible for the
                // spans used in simulation (≪ 2^64).
                let v = (rng.next_u64() as u128) % span;
                // wrapping_add: a negative signed `start` sign-extends to
                // a huge u128, and adding the offset must wrap back around
                // (two's complement) rather than trip debug overflow checks.
                (range.start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_uniform_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl UniformRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (upstream's `StdRng` role).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
