//! Offline stand-in for `serde`.
//!
//! The build environment has no crate registry, so this workspace
//! vendors a miniature serde: data types convert to and from a JSON-like
//! [`Value`] tree via the [`Serialize`] / [`Deserialize`] traits, and
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` shim. The representation matches serde's defaults for
//! the shapes this workspace uses: structs as objects, unit enum
//! variants as strings, data-carrying variants as externally tagged
//! single-entry objects, tuples as arrays, `None` as null.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A parsed or to-be-serialized data tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its narrowest faithful representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Anything with a fractional part or exponent.
    F(f64),
}

impl Value {
    /// Borrow the entries when this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up a field of an object `Value` by name.
    pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into a tree.
    fn serialize(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Num::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::Num(Num::U(x)) => *x,
                    Value::Num(Num::I(x)) if *x >= 0 => *x as u64,
                    Value::Num(Num::F(x)) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::Num(Num::U(x as u64))
                } else {
                    Value::Num(Num::I(x))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::Num(Num::I(x)) => *x,
                    Value::Num(Num::U(x)) => i64::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of i64 range")))?,
                    Value::Num(Num::F(x)) if x.fract() == 0.0 => *x as i64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(Num::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(Num::F(x)) => Ok(*x),
            Value::Num(Num::U(x)) => Ok(*x as f64),
            Value::Num(Num::I(x)) => Ok(*x as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(Num::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::deserialize).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {LEN}-element array, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::deserialize(&s.serialize()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let t = (1.25f64, 8u64);
        assert_eq!(<(f64, u64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::deserialize(&300u64.serialize()).is_err());
        assert!(u64::deserialize(&(-1i64).serialize()).is_err());
    }
}
