//! Offline stand-in for `serde_json`.
//!
//! JSON text ⇄ the serde shim's [`Value`] tree. Covers the API surface
//! this workspace uses: [`to_string`], [`to_string_pretty`], [`to_vec`],
//! [`to_vec_pretty`], [`from_str`], [`from_slice`]. Numbers round-trip
//! faithfully: integers stay integers, and floats are printed with
//! Rust's shortest round-trip formatting.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Num, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serialize to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

/// Deserialize from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

// -------------------------------------------------------------- writing

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Num::U(x)) => out.push_str(&x.to_string()),
        Value::Num(Num::I(x)) => out.push_str(&x.to_string()),
        Value::Num(Num::F(x)) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Rust's Display for f64 is shortest-round-trip; add `.0`
            // to keep integral floats recognizable as floats.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_sequence(out, items.len(), indent, depth, '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d)
            })?
        }
        Value::Object(entries) => {
            write_sequence(out, entries.len(), indent, depth, '{', '}', |out, i, d| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d)
            })?
        }
    }
    Ok(())
}

fn write_sequence(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.sequence(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn sequence(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek()? != b'"' && self.bytes[self.pos] != b'\\' {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            if self.bytes[self.pos] == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            self.pos += 1; // backslash
            let esc = self.peek()?;
            self.pos += 1;
            match esc {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'b' => out.push('\u{0008}'),
                b'f' => out.push('\u{000c}'),
                b'u' => {
                    let hex = self
                        .bytes
                        .get(self.pos..self.pos + 4)
                        .ok_or_else(|| Error::new("truncated \\u escape"))?;
                    let code = u32::from_str_radix(
                        std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?,
                        16,
                    )
                    .map_err(|e| Error::new(e.to_string()))?;
                    self.pos += 4;
                    out.push(char::from_u32(code).ok_or_else(|| {
                        Error::new("invalid \\u escape (surrogates unsupported)")
                    })?);
                }
                other => {
                    return Err(Error::new(format!(
                        "invalid escape `\\{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Num::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Num::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Num::F(f)))
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("wean \"trial\"\n".into())),
            ("count".into(), Value::Num(Num::U(18446744073709551615))),
            ("delta".into(), Value::Num(Num::I(-42))),
            ("ratio".into(), Value::Num(Num::F(0.1 + 0.2))),
            ("whole".into(), Value::Num(Num::F(1500.0))),
            ("flag".into(), Value::Bool(true)),
            ("gap".into(), Value::Null),
            (
                "items".into(),
                Value::Seq(vec![Value::Num(Num::U(1)), Value::Num(Num::U(2))]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn deserialize(v: &Value) -> Result<Raw, DeError> {
                Ok(Raw(v.clone()))
            }
        }
        for text in [
            to_string(&Raw(v.clone())).unwrap(),
            to_string_pretty(&Raw(v.clone())).unwrap(),
        ] {
            let back: Raw = from_str(&text).unwrap();
            // Float-valued entries come back as the narrowest numeric
            // type; normalize 1500.0 → matches because we append `.0`.
            assert_eq!(back.0, v, "through {text}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<u64>("12,").is_err());
    }

    #[test]
    fn parses_escapes() {
        let s: String = from_str("\"a\\u0041\\n\\\"b\\\\\"").unwrap();
        assert_eq!(s, "aA\n\"b\\");
    }
}
