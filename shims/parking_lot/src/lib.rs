//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with parking_lot's non-poisoning `lock()`
//! signature — the only API this workspace uses. A panic while a guard
//! is held simply clears the poison instead of propagating it, matching
//! parking_lot's semantics closely enough for deterministic simulations
//! that never lock across panics.

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion primitive with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
