//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`Strategy`] trait over a seeded RNG, `any::<T>()`,
//! ranges, tuples, `Just`, `prop_map`, weighted `prop_oneof!`,
//! `collection::vec`, `option::of`, `sample::Index`, and the
//! `proptest!` / `prop_assert*` macros. Failing cases report their
//! inputs but are **not shrunk**; case generation is deterministic per
//! test name so failures reproduce.

#![warn(missing_docs)]

use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies while generating a case.
pub type TestRng = rand::rngs::StdRng;

/// Everything a property test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Test-runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// `prop_assume!` filtered the case out; not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-filtered) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                rng.gen_range(lo..hi.saturating_add(1).max(lo + 1)) as $t
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // gen::<f64>() is in [0, 1); stretch slightly so hi is reachable.
        let x = lo + rng.gen::<f64>() * (hi - lo) * (1.0 + 1e-9);
        x.min(hi)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// String strategies from a regex-like pattern. Supports the subset the
// workspace uses: literal chars, `[...]` classes with `a-z` ranges, and
// `{n}` / `{m,n}` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let reps = if lo == hi {
                *lo
            } else {
                rng.gen_range(*lo as u64..(*hi as u64 + 1)) as usize
            };
            for _ in 0..reps {
                out.push(chars[rng.gen_range(0..chars.len() as u64) as usize]);
            }
        }
        out
    }
}

/// One pattern atom: candidate characters and repetition bounds.
type PatternAtom = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed [ in pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!class.is_empty(), "empty character class in pattern");
        let (mut lo, mut hi) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed {{ in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            match body.split_once(',') {
                Some((a, b)) => {
                    lo = a.trim().parse().expect("bad quantifier");
                    hi = b.trim().parse().expect("bad quantifier");
                }
                None => {
                    lo = body.trim().parse().expect("bad quantifier");
                    hi = lo;
                }
            }
            i = close + 1;
        }
        atoms.push((class, lo, hi));
    }
    atoms
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// A union of `(weight, strategy)` arms. Weights must not all be 0.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed mid-iteration")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Allowed length range for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// `Vec<T>` strategy with random length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option<T>` strategies.
pub mod option {
    use super::*;

    /// `Option<T>` that is `Some` about half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::*;

    /// A position into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(f64);

    impl Index {
        /// Resolve against a concrete length (must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.gen::<f64>())
        }
    }
}

/// Drive `cases` random cases of one property. Called by `proptest!`.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Deterministic per-test seed (FNV-1a of the test name) so failures
    // reproduce run-to-run.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut rejected = 0u32;
    for i in 0..config.cases {
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {i}/{}: {msg}",
                    config.cases
                )
            }
        }
    }
    if rejected > config.cases * 4 {
        panic!("property `{name}` rejected too many cases ({rejected})");
    }
}

/// Define property tests: each `fn` runs `cases` times with fresh
/// random inputs drawn from its `in` strategies.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut, clippy::redundant_closure_call)]
            fn $name() {
                let __config = $cfg;
                $crate::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: both sides are `{:?}`", __l);
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Choose between strategies, optionally `weight => strategy` pairs.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 10u64..20,
            f in 0.25f64..0.75,
            g in 0.0f64..=1.0,
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((0.0..=1.0).contains(&g));
        }

        #[test]
        fn vec_respects_size(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_weights_selected(
            b in prop_oneof![3 => Just(0u8), 1 => Just(1u8)],
            idx in any::<sample::Index>(),
        ) {
            prop_assert!(b == 0 || b == 1);
            let i = idx.index(7);
            prop_assert!(i < 7);
        }

        #[test]
        fn assume_rejects(mss in option::of(any::<u16>())) {
            prop_assume!(mss.is_some());
            prop_assert!(mss.is_some());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            run_cases(&ProptestConfig::with_cases(16), "det", |rng| {
                out.push((0u64..1000).generate(rng));
                Ok(())
            });
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic() {
        run_cases(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
