//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`) derive macros for the serde shim's
//! [`Serialize`]/[`Deserialize`] traits. Supports exactly the shapes
//! this workspace declares: non-generic structs with named fields and
//! enums whose variants are unit, newtype, or struct-like, plus the
//! field attributes `#[serde(default)]` and `#[serde(default = "path")]`.
//! Anything else panics at expansion time with a clear message.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled in during deserialization.
#[derive(Debug, Clone, PartialEq)]
enum DefaultAttr {
    /// No default: a missing field is an error.
    Required,
    /// `#[serde(default)]`: use `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    default: DefaultAttr,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive the serde shim's `Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derive the serde shim's `Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Skip attributes starting at `*i`, returning any serde default marker
/// found among them.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> DefaultAttr {
    let mut default = DefaultAttr::Required;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                let TokenTree::Group(g) = &tokens[*i] else {
                    panic!("expected [...] after #");
                };
                if let Some(attr) = parse_serde_attr(g.stream()) {
                    default = attr;
                }
                *i += 1;
            }
            _ => break,
        }
    }
    default
}

/// Inside the `[...]` of an attribute: detect `serde(default)` and
/// `serde(default = "path")`.
fn parse_serde_attr(stream: TokenStream) -> Option<DefaultAttr> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return None;
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {
            if inner.len() == 1 {
                Some(DefaultAttr::Std)
            } else if let Some(TokenTree::Literal(lit)) = inner.get(2) {
                let s = lit.to_string();
                Some(DefaultAttr::Path(s.trim_matches('"').to_string()))
            } else {
                panic!("unsupported #[serde(default ...)] form");
            }
        }
        Some(other) => panic!("unsupported serde attribute: {other}"),
        None => None,
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    parse_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum keyword, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    let TokenTree::Group(body) = &tokens[i] else {
        panic!("derive shim supports only non-generic brace-bodied types (type {name})");
    };
    assert_eq!(
        body.delimiter(),
        Delimiter::Brace,
        "derive shim supports only brace-bodied types (type {name})"
    );
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(&body_tokens),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body_tokens),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Parse `name: Type, ...` named fields, honoring serde default attrs.
/// Types are skipped with angle-bracket awareness (`Vec<T>`), so only
/// top-level commas separate fields.
fn parse_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = parse_attrs(tokens, &mut i);
        skip_vis(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field {name}, got {other}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        parse_attrs(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let top_level_commas = {
                    let mut angle = 0i32;
                    let mut commas = 0usize;
                    for t in &inner {
                        match t {
                            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
                            _ => {}
                        }
                    }
                    commas
                };
                assert_eq!(
                    top_level_commas, 0,
                    "derive shim supports only single-field tuple variants (variant {name})"
                );
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "__fields.push((\"{0}\".to_string(), ::serde::Serialize::serialize(&self.{0})));\n",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize(&self) -> ::serde::Value {{\n\
                let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                    ::std::vec::Vec::new();\n\
                {pushes}\
                ::serde::Value::Object(__fields)\n\
            }}\n\
        }}"
    )
}

/// The expression filling one field from object entries bound to `__obj`.
fn field_expr(type_name: &str, f: &Field) -> String {
    let missing = match &f.default {
        DefaultAttr::Required => format!(
            "return ::std::result::Result::Err(::serde::DeError::new(\
                 \"missing field `{}` in `{type_name}`\"))",
            f.name
        ),
        DefaultAttr::Std => "::std::default::Default::default()".to_string(),
        DefaultAttr::Path(path) => format!("{path}()"),
    };
    format!(
        "match ::serde::Value::field(__obj, \"{0}\") {{\n\
             ::std::option::Option::Some(__f) => ::serde::Deserialize::deserialize(__f)?,\n\
             ::std::option::Option::None => {missing},\n\
         }}",
        f.name
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!("{}: {},\n", f.name, field_expr(name, f)));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize(__v: &::serde::Value) -> \
                ::std::result::Result<Self, ::serde::DeError> {{\n\
                let __obj = __v.as_object().ok_or_else(|| \
                    ::serde::DeError::new(\"expected object for `{name}`\"))?;\n\
                ::std::result::Result::Ok({name} {{ {inits} }})\n\
            }}\n\
        }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\
                     \"{vn}\".to_string(), ::serde::Serialize::serialize(__f0))]),\n"
            )),
            VariantKind::Struct(fields) => {
                let mut pushes = String::new();
                let mut bindings = String::new();
                for f in fields {
                    bindings.push_str(&format!("{},", f.name));
                    pushes.push_str(&format!(
                        "__inner.push((\"{0}\".to_string(), \
                             ::serde::Serialize::serialize({0})));\n",
                        f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {bindings} }} => {{\n\
                         let mut __inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Object(__inner))])\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize(&self) -> ::serde::Value {{\n\
                match self {{ {arms} }}\n\
            }}\n\
        }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            VariantKind::Newtype => tagged_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::deserialize(__inner)?)),\n"
            )),
            VariantKind::Struct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{}: {},\n",
                        f.name,
                        field_expr(&format!("{name}::{vn}"), f)
                    ));
                }
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\
                                 \"expected object for `{name}::{vn}`\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize(__v: &::serde::Value) -> \
                ::std::result::Result<Self, ::serde::DeError> {{\n\
                match __v {{\n\
                    ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                        {unit_arms}\
                        __other => ::std::result::Result::Err(::serde::DeError::new(\
                            format!(\"unknown unit variant `{{__other}}` for `{name}`\"))),\n\
                    }},\n\
                    ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                        let (__tag, __inner) = &__entries[0];\n\
                        match __tag.as_str() {{\n\
                            {tagged_arms}\
                            __other => ::std::result::Result::Err(::serde::DeError::new(\
                                format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                        }}\n\
                    }},\n\
                    __other => ::std::result::Result::Err(::serde::DeError::new(\
                        format!(\"expected `{name}` variant, got {{__other:?}}\"))),\n\
                }}\n\
            }}\n\
        }}"
    )
}
