//! Quickstart: the whole trace-modulation methodology in one page.
//!
//! 1. Collect a trace of the Wean scenario (office → elevator →
//!    classroom) with the instrumented laptop running the ping workload.
//! 2. Distill it into a replay trace of ⟨d, F, Vb, Vr, L⟩ tuples.
//! 3. Replay it on an isolated Ethernet while running an unmodified FTP
//!    benchmark — and compare with the same benchmark run "live".
//!
//! Run with: `cargo run --release --example quickstart`

use emu::{collect_and_distill, live_run, modulated_run, Benchmark, RunConfig};
use wavelan::Scenario;

fn main() {
    let cfg = RunConfig::default();
    let scenario = Scenario::wean();

    println!("== 1. live run: FTP fetch over the real (simulated) WaveLAN ==");
    let live = live_run(&scenario, 1, Benchmark::FtpRecv, &cfg);
    println!("   live elapsed: {:.1} s", live.secs());

    println!("== 2. collection + distillation ==");
    let report = collect_and_distill(&scenario, 1, &cfg);
    println!(
        "   {} probe triplets ({} solved exactly, {} corrected) → {} quality tuples",
        report.triplets,
        report.solved,
        report.corrected,
        report.replay.tuples.len()
    );
    println!(
        "   distilled means: latency {:.1} ms, bottleneck {:.0} kb/s, loss {:.1}%",
        report.replay.mean_latency().as_millis_f64(),
        8e6 / report.replay.mean_vb(),
        report.replay.mean_loss() * 100.0
    );

    println!("== 3. modulated run: same benchmark on an isolated Ethernet ==");
    let modulated = modulated_run(&report.replay, 1, Benchmark::FtpRecv, &cfg);
    println!("   modulated elapsed: {:.1} s", modulated.secs());

    let delta = 100.0 * (modulated.secs() - live.secs()) / live.secs();
    println!("\ntrace modulation reproduced the live run within {delta:+.1}%");
}
