//! The adaptive-application use case (§6): "a recent paper reports on the
//! use of synthetic traces to explore the behavior of an adaptive mobile
//! system in response to step and impulse variations in bandwidth"
//! (Odyssey, SOSP'97).
//!
//! This example builds a small Odyssey-style adaptive streamer: a client
//! fetches fixed-duration "video segments" from a server, measures the
//! throughput of each fetch, and adapts its fidelity (segment size) up or
//! down to keep fetches under their deadline. We subject it to a step
//! trace and an impulse trace and print the fidelity timeline — the
//! controlled, repeatable experiment the paper argues trace modulation
//! makes possible.
//!
//! Run with: `cargo run --release --example adaptive_fidelity`

use distill::synthetic::{impulse, step, NetworkParams};
use emu::{build_ethernet, Hardware, SERVER_IP};
use modulate::{Modulator, TickClock};
use netsim::{SimDuration, SimTime};
use netstack::{App, AppEvent, Host, HostApi, TcpHandle};
use std::net::Ipv4Addr;
use tracekit::ReplayTrace;
use workloads::{FtpServer, FTP_PORT};

/// Fidelity levels: bytes per 2-second segment (video quality tiers).
const LEVELS: [usize; 4] = [40_000, 120_000, 300_000, 700_000];
const SEGMENT_PERIOD: SimDuration = SimDuration::from_secs(2);

/// The adaptive client: fetches one segment per period via the FTP
/// server's RECV command, timing each fetch.
struct AdaptiveStreamer {
    server: (Ipv4Addr, u16),
    level: usize,
    conn: Option<TcpHandle>,
    fetch_started: Option<SimTime>,
    remaining: usize,
    /// (time s, level, fetch seconds) per completed segment.
    log: Vec<(f64, usize, f64)>,
    segments: u32,
    max_segments: u32,
}

impl AdaptiveStreamer {
    fn new(max_segments: u32) -> Self {
        AdaptiveStreamer {
            server: (SERVER_IP, FTP_PORT),
            level: 1,
            conn: None,
            fetch_started: None,
            remaining: 0,
            log: Vec::new(),
            segments: 0,
            max_segments,
        }
    }

    fn begin_segment(&mut self, api: &mut HostApi<'_, '_>) {
        if self.segments >= self.max_segments {
            return;
        }
        self.segments += 1;
        self.remaining = LEVELS[self.level];
        self.fetch_started = Some(api.now());
        let conn = api.tcp_connect(self.server);
        self.conn = Some(conn);
    }

    fn segment_done(&mut self, api: &mut HostApi<'_, '_>) {
        let started = self.fetch_started.take().expect("fetch in progress");
        let secs = api.now().since(started).as_secs_f64();
        self.log.push((started.as_secs_f64(), self.level, secs));
        if let Some(conn) = self.conn.take() {
            api.tcp_close(conn);
        }
        // Adaptation policy: fetch must fit well inside the period.
        let budget = SEGMENT_PERIOD.as_secs_f64();
        if secs > 0.9 * budget && self.level > 0 {
            self.level -= 1; // degrade fidelity
        } else if secs < 0.45 * budget && self.level + 1 < LEVELS.len() {
            self.level += 1; // upgrade fidelity
        }
        // Next segment starts at the next period boundary.
        let elapsed = api.now().since(started).as_secs_f64();
        let wait = (budget - elapsed).max(0.01);
        api.set_timer(SimDuration::from_secs_f64(wait), 1);
    }
}

impl App for AdaptiveStreamer {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => self.begin_segment(api),
            AppEvent::Timer { token: 1 } => self.begin_segment(api),
            AppEvent::TcpConnected { conn } if Some(conn) == self.conn => {
                api.tcp_send(conn, format!("RECV {}\n", self.remaining).as_bytes());
            }
            AppEvent::TcpData { conn, data } if Some(conn) == self.conn => {
                self.remaining = self.remaining.saturating_sub(data.len());
                if self.remaining == 0 {
                    self.segment_done(api);
                }
            }
            AppEvent::TcpReset { conn, .. } if Some(conn) == self.conn => {
                // Treat like a (very slow) completed segment at min level.
                self.conn = None;
                self.level = 0;
                api.set_timer(SEGMENT_PERIOD, 1);
            }
            _ => {}
        }
    }
}

fn run_under(name: &str, replay: &ReplayTrace, segments: u32) {
    let (mut tb, app) = build_ethernet(23, Hardware::default(), |laptop, server| {
        laptop.set_shim(Box::new(
            Modulator::from_replay(replay.clone()).with_clock(TickClock::netbsd()),
        ));
        server.add_app(Box::new(FtpServer::new()));
        laptop.add_app(Box::new(AdaptiveStreamer::new(segments)))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(240));
    let s: &AdaptiveStreamer = tb.laptop_host().app::<AdaptiveStreamer>(app);
    let host: &Host = tb.laptop_host();
    let _ = host;
    println!("\n--- {name} ---");
    println!(
        "{:>7}  {:>5}  {:>9}  fidelity",
        "t (s)", "level", "fetch (s)"
    );
    for &(t, level, secs) in &s.log {
        let bar = "█".repeat(level + 1);
        println!("{t:>7.1}  {level:>5}  {secs:>9.2}  {bar}");
    }
}

fn main() {
    println!("Odyssey-style adaptive streamer under synthetic traces (§6)");
    let wavelan = NetworkParams::wavelan_like();
    let slow = NetworkParams::slow_network();
    let span = SimDuration::from_secs(600);

    // Step: bandwidth collapses at t = 20 s and stays down.
    let step_trace = step("step", wavelan, slow, SimDuration::from_secs(20), span);
    run_under("step down at t=20s (2 Mb/s → 250 kb/s)", &step_trace, 20);

    // Impulse: a 10 s dip, then recovery — the system should degrade and
    // then climb back up.
    let impulse_trace = impulse(
        "impulse",
        wavelan,
        slow,
        SimDuration::from_secs(16),
        SimDuration::from_secs(10),
        span,
    );
    run_under("10s impulse at t=16s", &impulse_trace, 20);

    println!("\n(identical traces replay identically: adaptation policies can be");
    println!(" compared under exactly the same network history — the paper's");
    println!(" 'benchmark family for adaptive mobile systems' use case)");
}
