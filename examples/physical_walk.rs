//! Physically-grounded collection: instead of the empirical checkpoint
//! scenarios, build a campus walk through WavePoint base stations and let
//! signal (and thus latency/bandwidth/loss) emerge from log-distance path
//! loss, shadowing, and roaming handoffs — then run the usual
//! collect → distill → modulate loop on it.
//!
//! Run with: `cargo run --release --example physical_walk`

use distill::{distill_with_report, DistillConfig};
use emu::{build_wireless, modulated_run, Benchmark, Hardware, RunConfig, SERVER_IP};
use netsim::{SimDuration, SimTime};
use tracekit::{CollectionDaemon, Collector, PseudoDevice};
use wavelan::{ChannelModel, PhysicalModel, Position, WalkBuilder, WavePoint, WirelessChannel};
use workloads::{PingConfig, PingWorkload};

fn campus_walk() -> PhysicalModel {
    // A hallway walk past three WavePoints, with a pause in a coverage
    // gap (the "elevator lobby").
    let path = WalkBuilder::start_at(Position::new(0.0, 0.0))
        .walk_to(Position::new(80.0, 0.0), 1.4)
        .pause(SimDuration::from_secs(15))
        .walk_to(Position::new(80.0, 60.0), 1.4)
        .walk_to(Position::new(160.0, 60.0), 1.4)
        .build();
    let stations = vec![
        WavePoint::at(Position::new(10.0, 8.0)),
        WavePoint::at(Position::new(90.0, 55.0)),
        WavePoint::at(Position::new(165.0, 52.0)),
    ];
    PhysicalModel::new("campus-walk", path, stations)
}

fn main() {
    let model = campus_walk();
    let walk_secs = model.duration().as_secs_f64() as u64;
    println!("campus walk: {walk_secs} s past 3 WavePoints");

    // Collection over the physical channel.
    let channel = WirelessChannel::new(Box::new(model));
    let meter = channel.meter();
    let dev = PseudoDevice::new(65_536);
    let (mut tb, daemon) = build_wireless(11, Hardware::default(), channel, |laptop, _server| {
        let collector = Collector::new(dev.clone())
            .with_signal_source(Box::new(move || meter.lock().quantized()));
        laptop.set_tracer(Box::new(collector));
        let mut cfg = PingConfig::paper(SERVER_IP);
        cfg.duration = SimDuration::from_secs(walk_secs);
        laptop.add_app(Box::new(PingWorkload::new(cfg)));
        laptop.add_app(Box::new(CollectionDaemon::new(
            dev.clone(),
            "thinkpad",
            "campus-walk",
            1,
        )))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(walk_secs + 5));
    let now_ns = tb.sim.now().as_nanos();
    let trace = {
        let host: &mut netstack::Host = tb.sim.node_mut(tb.laptop);
        host.app_mut::<CollectionDaemon>(daemon).finish(now_ns)
    };
    println!(
        "collected {} records ({} packets, {} signal samples)",
        trace.records.len(),
        trace.packets().count(),
        trace.device_samples().count()
    );

    // Distill and show what the walk looked like to the network.
    let report = distill_with_report(&trace, &DistillConfig::default());
    println!(
        "distilled {} tuples; mean latency {:.1} ms, bottleneck {:.0} kb/s, loss {:.1}%",
        report.replay.tuples.len(),
        report.replay.mean_latency().as_millis_f64(),
        8e6 / report.replay.mean_vb().max(1e-9),
        report.replay.mean_loss() * 100.0
    );
    let worst = report
        .replay
        .tuples
        .iter()
        .map(|t| t.loss)
        .fold(0.0f64, f64::max);
    println!(
        "worst tuple loss {:.0}% (the coverage-gap handoffs)",
        worst * 100.0
    );

    // Modulate a benchmark with the distilled walk.
    let r = modulated_run(&report.replay, 1, Benchmark::FtpRecv, &RunConfig::default());
    println!(
        "modulated 10 MB FTP fetch under the distilled walk: {:.1} s",
        r.secs()
    );
}
