//! Trace inspection: collect a trace of the Porter scenario, save it in
//! both binary and JSON form, reload it, distill it, and print a
//! checkpoint-by-checkpoint report — the debugging/analysis workflow the
//! paper's conclusion envisions ("analyses of traces can offer broad
//! design insights").
//!
//! Run with: `cargo run --release --example trace_inspection`

use distill::{distill_with_report, DistillConfig};
use emu::{collect_trace, RunConfig};
use netsim::stats::Series;
use netsim::SimTime;
use tracekit::io::{read_trace, write_replay, write_trace};
use wavelan::Scenario;

fn main() -> std::io::Result<()> {
    let scenario = Scenario::porter();
    println!(
        "collecting one Porter trial ({:.0}s traversal)...",
        scenario.duration.as_secs_f64()
    );
    let trace = collect_trace(&scenario, 1, &RunConfig::default());

    // Save + reload round trip, both encodings.
    let dir = std::env::temp_dir().join("trace-modulation-example");
    std::fs::create_dir_all(&dir)?;
    let bin_path = dir.join("porter-1.mntr");
    let json_path = dir.join("porter-1.json");
    write_trace(&bin_path, &trace)?;
    write_trace(&json_path, &trace)?;
    let reloaded = read_trace(&bin_path)?;
    assert_eq!(reloaded, trace);
    println!(
        "wrote {} ({} bytes binary, {} bytes JSON)",
        bin_path.display(),
        std::fs::metadata(&bin_path)?.len(),
        std::fs::metadata(&json_path)?.len()
    );

    // Basic trace statistics.
    println!(
        "\ntrace: {} records over {:.0} s ({} packets, {} device samples, {} lost to overrun)",
        trace.records.len(),
        trace.span_ns() as f64 / 1e9,
        trace.packets().count(),
        trace.device_samples().count(),
        trace.lost_records()
    );

    // Distill and save the replay trace.
    let report = distill_with_report(&trace, &DistillConfig::default());
    let replay_path = dir.join("porter-1.mnrp");
    write_replay(&replay_path, &report.replay)?;
    println!(
        "distilled {} tuples → {} ({} triplets: {} solved, {} corrected)",
        report.replay.tuples.len(),
        replay_path.display(),
        report.triplets,
        report.solved,
        report.corrected
    );

    // Per-checkpoint summary (the shape of Figure 2).
    let labels = scenario.labels();
    let mut sig = Series::new();
    for d in trace.device_samples() {
        sig.push(SimTime::from_nanos(d.timestamp_ns), d.signal as f64);
    }
    let mut lat = Series::new();
    let mut t = 0u64;
    for q in &report.replay.tuples {
        lat.push(SimTime::from_nanos(t), q.latency_ns as f64 / 1e6);
        t += q.duration_ns;
    }
    println!(
        "\n{:>4}  {:>16}  {:>18}",
        "ckpt", "signal (min..max)", "latency ms (min..max)"
    );
    let sig_b = sig.normalized_buckets(labels.len());
    let lat_b = lat.normalized_buckets(labels.len());
    for ((label, s), l) in labels.iter().zip(&sig_b).zip(&lat_b) {
        println!(
            "{label:>4}  {:>7.1}..{:<7.1}  {:>8.2}..{:<8.2}",
            s.min(),
            s.max(),
            l.min(),
            l.max()
        );
    }
    Ok(())
}
