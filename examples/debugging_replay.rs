//! Deterministic bug re-creation — the paper's debugging use case:
//! "Tracing can play an important role in debugging by deterministically
//! reproducing the network conditions under which a subtle bug was
//! originally uncovered."
//!
//! We stage a "rare bug": an application-level file-transfer client with
//! a too-short, non-restarting transfer timeout that only misbehaves
//! when the network stalls longer than its timeout — i.e. only during
//! something like the Wean elevator ride. Live, the bug shows up in some
//! trials and not others. Under trace modulation, replaying the *same*
//! distilled trace triggers it every single time.
//!
//! Run with: `cargo run --release --example debugging_replay`

use emu::{collect_and_distill, modulated_run, Benchmark, RunConfig};
use wavelan::Scenario;

fn main() {
    let cfg = RunConfig::default();
    let scenario = Scenario::wean();

    println!("collecting + distilling one Wean trace (the elevator trial)...");
    let report = collect_and_distill(&scenario, 1, &cfg);
    let worst = report
        .replay
        .tuples
        .iter()
        .map(|t| t.loss)
        .fold(0.0f64, f64::max);
    println!(
        "  worst distilled loss tuple: {:.0}% (the elevator ride)",
        worst * 100.0
    );

    // The Andrew benchmark's RPC layer rides through the outage thanks to
    // retransmission with backoff — but its per-trial timings through the
    // elevator vary live. Under modulation, the same replay trace gives
    // the same conditions every run:
    println!("\nreplaying the identical trace three times (modulated Andrew):");
    for attempt in 1..=3 {
        let r = modulated_run(&report.replay, attempt, Benchmark::Andrew, &cfg);
        let phases: Vec<String> = r
            .phases
            .iter()
            .map(|(p, s)| format!("{} {:.1}s", p.name(), s))
            .collect();
        println!(
            "  run {attempt}: total {:.1}s  [{}]",
            r.secs(),
            phases.join(", ")
        );
    }
    println!("\nthe network conditions each run sees are identical — any bug");
    println!("they trigger (an RPC timeout, a stuck connection) re-triggers on");
    println!("every replay, instead of once per dozen elevator rides.");
}
