//! Synthetic-trace modulation (§6): instead of traces collected from a
//! real network, hand-built replay traces explore a system's reaction to
//! controlled variations — step and impulse changes in bandwidth — the
//! technique the paper points to for evaluating adaptive mobile systems.
//!
//! This example subjects an FTP transfer to: constant WaveLAN-like
//! conditions, a step down to a much slower network mid-transfer, and a
//! 5-second outage impulse, and prints the resulting elapsed times.
//!
//! Run with: `cargo run --release --example synthetic_traces`

use distill::synthetic::{constant, impulse, step, NetworkParams};
use emu::{build_ethernet, Hardware, SERVER_IP};
use modulate::{Modulator, TickClock};
use netsim::{SimDuration, SimTime};
use tracekit::ReplayTrace;
use workloads::{FtpClient, FtpDirection, FtpServer};

fn ftp_under(replay: &ReplayTrace, size: usize) -> f64 {
    let (mut tb, app) = build_ethernet(42, Hardware::default(), |laptop, server| {
        laptop.set_shim(Box::new(
            Modulator::from_replay(replay.clone()).with_clock(TickClock::netbsd()),
        ));
        server.add_app(Box::new(FtpServer::new()));
        laptop.add_app(Box::new(FtpClient::new(
            SERVER_IP,
            FtpDirection::Send,
            size,
        )))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(1800));
    tb.laptop_host()
        .app::<FtpClient>(app)
        .elapsed()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN)
}

fn main() {
    let size = 4_000_000;
    let span = SimDuration::from_secs(1200);
    let wavelan = NetworkParams::wavelan_like();
    let slow = NetworkParams::slow_network();
    let outage = NetworkParams {
        latency: SimDuration::from_millis(100),
        vb_ns_per_byte: 200_000.0, // ~40 kb/s: barely alive
        vr_ns_per_byte: 5_000.0,
        loss: 0.3,
    };

    println!("4 MB FTP store under synthetic replay traces:\n");

    let t = ftp_under(&constant("constant wavelan", wavelan, span), size);
    println!("  constant WaveLAN-like:                  {t:6.1} s");

    let t = ftp_under(
        &step(
            "step to slow at 10s",
            wavelan,
            slow,
            SimDuration::from_secs(10),
            span,
        ),
        size,
    );
    println!("  step down to 250 kb/s at t=10 s:        {t:6.1} s");

    let t = ftp_under(
        &impulse(
            "5s outage at 10s",
            wavelan,
            outage,
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
            span,
        ),
        size,
    );
    println!("  5 s near-outage impulse at t=10 s:      {t:6.1} s");

    println!("\n(step and impulse traces are exactly the tool the paper's §6");
    println!(" suggests for stress-testing adaptive mobile systems)");
}
