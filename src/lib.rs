//! Umbrella crate re-exporting the trace-modulation workspace. See README.
#![warn(missing_docs)]
pub use distill;
pub use emu;
pub use modulate;
pub use netsim;
pub use netstack;
pub use packet;
pub use tracekit;
pub use wavelan;
pub use workloads;
