//! `tracemod` — command-line front end for the trace-modulation pipeline.
//!
//! ```text
//! tracemod scenarios
//! tracemod collect  --scenario wean --trial 1 --out wean1.mntr [--target-out wean1-srv.mntr]
//! tracemod distill  wean1.mntr --out wean1.mnrp [--window-secs 5] [--horizon 30]
//! tracemod inspect  wean1.mntr | wean1.mnrp
//! tracemod replay   wean1.mnrp --benchmark ftp-recv [--trial 1] [--tick-ms 10]
//! tracemod live     --scenario wean --benchmark ftp-recv [--trial 1]
//! tracemod live-pipeline --scenario wean --benchmark ftp-recv [--trial 1] [--obs-out run.json]
//! tracemod obs-report run.json [--check] [--format text|json|md]
//! tracemod trace-export --scenario porter --benchmark web --out flight.json
//! tracemod journey [--packet-id N | --window T0..T1]
//! tracemod bench-diff current.jsonl [--baseline BENCH_baseline.json] [--check] [--json]
//! tracemod fleet --clients 10000 [--shards 8] [--jobs 8] [--obs-out fleet.json] [--check]
//! tracemod alerts --rules builtin --telemetry tel.jsonl --report fleet.json [--check]
//! tracemod diff-runs a.jsonl b.jsonl [--shards 8] [--check]
//! tracemod help
//! ```
//!
//! Files use the binary formats by default; any path ending in `.json`
//! reads/writes the JSON encoding instead. `distill` streams binary
//! traces through the incremental distiller in bounded memory; JSON
//! inputs fall back to the batch path (identical output).
//!
//! Every command validates its flags: unknown flags, missing required
//! flags, and unreadable files produce an error message and a nonzero
//! exit code (2 for usage errors, 1 for runtime failures) — no panics.

use distill::{distill_stream, distill_with_report, DistillConfig, WindowConfig};
use emu::{fleet_alerts, fleet_run, fleet_run_chaos, FleetPlan};
use emu::{
    live_modulated_run, live_run, modulated_run, Benchmark, CellKind, Exec, LiveModOutcome,
    RunConfig, TrialCell, TrialPlan,
};
use faultkit::{events_to_jsonl, FaultPlan};
use modulate::TickClock;
use netsim::SimDuration;
use obs::alerts::parse_fault_stamps;
use obs::bench::{parse_bench_jsonl, BenchDiff, BenchDiffConfig, OverheadGate};
use obs::flight::PacketId;
use obs::{
    diff_artifacts, evaluate_alerts, AlertInputs, DiffOptions, FidelityThresholds, FleetReport,
    RuleSet, RunManifest, SamplePoint, Severity, TelemetryConfig,
};
use std::path::{Path, PathBuf};
use std::process::exit;
use tracekit::io::{read_replay, read_trace, write_replay, write_trace};
use tracekit::{ReplayTrace, TraceFileStream};
use wavelan::{Scenario, ScenarioPack};

/// A command failure: usage errors exit 2, runtime failures exit 1.
enum CliError {
    /// Bad invocation (unknown flag, missing argument, unknown name).
    Usage(String),
    /// The invocation was fine but the work failed (I/O, parse).
    Runtime(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    fn runtime(msg: impl Into<String>) -> CliError {
        CliError::Runtime(msg.into())
    }
}

type CliResult = Result<(), CliError>;

/// Minimal flag parser: positionals + `--key value` pairs.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = (*v).clone();
                        it.next();
                        v
                    }
                    _ => String::from("true"),
                };
                flags.push((key.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::usage(format!("missing required flag --{key}")))
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("invalid value for --{key}: {v}"))),
        }
    }

    /// Reject flags outside `allowed` and surplus positionals beyond
    /// `max_positional` (the command word counts as one).
    fn check(&self, allowed: &[&str], max_positional: usize) -> CliResult {
        for (k, _) in &self.flags {
            if !allowed.contains(&k.as_str()) {
                return Err(CliError::usage(format!(
                    "unknown flag --{k} (allowed: {})",
                    if allowed.is_empty() {
                        "none".to_string()
                    } else {
                        allowed
                            .iter()
                            .map(|f| format!("--{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    }
                )));
            }
        }
        if self.positional.len() > max_positional {
            return Err(CliError::usage(format!(
                "unexpected argument '{}'",
                self.positional[max_positional]
            )));
        }
        Ok(())
    }
}

/// Resolve `--scenario`/`--scenario-file` plus the optional
/// `--duration-secs` override (shortens or stretches the traversal —
/// handy for quick smoke runs and CI).
fn scenario_arg(args: &Args) -> Result<Scenario, CliError> {
    scenario_arg_default(args, None)
}

/// Like [`scenario_arg`] but falls back to `default` when neither
/// `--scenario` nor `--scenario-file` is given (flight-recorder
/// commands default to the Porter walk).
fn scenario_arg_default(args: &Args, default: Option<&str>) -> Result<Scenario, CliError> {
    Ok(scenario_or_pack(args, default)?.0)
}

/// Does a `--scenario` value name a scenario-pack file rather than a
/// built-in scenario?
fn is_pack_path(v: &str) -> bool {
    v.ends_with(".toml") || v.ends_with(".json")
}

/// Load and validate a scenario pack. A bad pack is a bad invocation
/// (exit 2): the run has not started yet.
fn load_pack_arg(path: &str) -> Result<ScenarioPack, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("read scenario pack {path}: {e}")))?;
    wavelan::load_pack(path, &text).map_err(|e| CliError::usage(format!("{path}: {e}")))
}

/// Resolve the scenario flags, also returning the [`ScenarioPack`]
/// when `--scenario` named a pack file (`*.toml` / `*.json`): fleet
/// runs use the pack's full weighted model mix, while single-channel
/// commands run the pack's scenario stub (its first model spec).
fn scenario_or_pack(
    args: &Args,
    default: Option<&str>,
) -> Result<(Scenario, Option<ScenarioPack>), CliError> {
    let (mut sc, pack) = if let Some(path) = args.get("scenario-file") {
        let json = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("read {path}: {e}")))?;
        let sc = wavelan::ScenarioSpec::from_json(&json)
            .and_then(wavelan::ScenarioSpec::into_scenario)
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        (sc, None)
    } else {
        let name = match (args.get("scenario"), default) {
            (Some(n), _) => n,
            (None, Some(d)) => d,
            (None, None) => return Err(CliError::usage("missing required flag --scenario")),
        };
        if is_pack_path(name) {
            let pack = load_pack_arg(name)?;
            (pack.scenario(), Some(pack))
        } else {
            let sc = Scenario::by_name(name).ok_or_else(|| {
                CliError::usage(format!(
                    "unknown scenario '{name}' (try: wean, porter, flagstaff, chatterbox, \
                     or a scenario-pack path ending in .toml/.json)"
                ))
            })?;
            (sc, None)
        }
    };
    if let Some(secs) = args.get("duration-secs") {
        let secs: u64 = secs
            .parse()
            .map_err(|_| CliError::usage(format!("invalid value for --duration-secs: {secs}")))?;
        if secs == 0 {
            return Err(CliError::usage("--duration-secs must be positive"));
        }
        sc.duration = SimDuration::from_secs(secs);
    }
    Ok((sc, pack))
}

fn cmd_dump_scenario(args: &Args) -> CliResult {
    args.check(&["scenario", "scenario-file", "duration-secs"], 1)?;
    let sc = scenario_arg(args)?;
    println!("{}", wavelan::ScenarioSpec::from_scenario(&sc).to_json());
    Ok(())
}

fn benchmark_named(name: &str) -> Result<Benchmark, CliError> {
    match name {
        "web" => Ok(Benchmark::Web),
        "ftp-send" => Ok(Benchmark::FtpSend),
        "ftp-recv" => Ok(Benchmark::FtpRecv),
        "andrew" => Ok(Benchmark::Andrew),
        other => Err(CliError::usage(format!(
            "unknown benchmark '{other}' (try: web, ftp-send, ftp-recv, andrew)"
        ))),
    }
}

fn benchmark_arg(args: &Args) -> Result<Benchmark, CliError> {
    benchmark_named(args.require("benchmark")?)
}

fn cmd_scenarios(args: &Args) -> CliResult {
    args.check(&[], 1)?;
    println!(
        "{:<12} {:>9} {:>12} {:>8}  notes",
        "name", "duration", "checkpoints", "asym"
    );
    for sc in Scenario::all() {
        println!(
            "{:<12} {:>8.0}s {:>12} {:>8.2}  {}",
            sc.name,
            sc.duration.as_secs_f64(),
            sc.checkpoints.len(),
            sc.loss_asym_up,
            if sc.stationary {
                "stationary (cross traffic)"
            } else {
                "mobile traversal"
            }
        );
    }
    println!("\nchannel-model families (for --scenario <pack.toml|pack.json>):");
    for f in wavelan::Registry::builtin().families() {
        println!(
            "{:<12} {}  [params: {}]",
            f.name,
            f.describe,
            if f.param_keys.is_empty() {
                "none".to_string()
            } else {
                f.param_keys.join(", ")
            }
        );
    }
    Ok(())
}

fn cmd_collect(args: &Args) -> CliResult {
    args.check(
        &[
            "scenario",
            "scenario-file",
            "duration-secs",
            "trial",
            "out",
            "target-out",
        ],
        1,
    )?;
    let sc = scenario_arg(args)?;
    let trial = args.parse_num("trial", 1u32)?;
    let out = PathBuf::from(args.require("out")?);
    let cfg = RunConfig::default();
    if let Some(target_out) = args.get("target-out") {
        eprintln!(
            "collecting two-sided trace of '{}' trial {trial}...",
            sc.name
        );
        let (mobile, target) = emu::collect_trace_two_sided(&sc, trial, &cfg);
        write_trace(&out, &mobile)
            .map_err(|e| CliError::runtime(format!("write {}: {e}", out.display())))?;
        let tp = PathBuf::from(target_out);
        write_trace(&tp, &target)
            .map_err(|e| CliError::runtime(format!("write {}: {e}", tp.display())))?;
        eprintln!(
            "wrote {} ({} records) and {} ({} records)",
            out.display(),
            mobile.records.len(),
            tp.display(),
            target.records.len()
        );
    } else {
        eprintln!("collecting trace of '{}' trial {trial}...", sc.name);
        let trace = emu::collect_trace(&sc, trial, &cfg);
        write_trace(&out, &trace)
            .map_err(|e| CliError::runtime(format!("write {}: {e}", out.display())))?;
        eprintln!("wrote {} ({} records)", out.display(), trace.records.len());
    }
    Ok(())
}

fn distill_cfg(args: &Args) -> Result<DistillConfig, CliError> {
    Ok(DistillConfig {
        window: WindowConfig {
            width: SimDuration::from_secs(args.parse_num("window-secs", 5u64)?),
            step: SimDuration::from_secs(1),
        },
        reorder_horizon: args.parse_num("horizon", DistillConfig::default().reorder_horizon)?,
    })
}

fn cmd_distill(args: &Args) -> CliResult {
    args.check(&["out", "window-secs", "horizon"], 2)?;
    let input = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("usage: tracemod distill <trace> --out <replay>"))?;
    let out = PathBuf::from(args.require("out")?);
    let cfg = distill_cfg(args)?;
    let path = Path::new(input);
    let (replay, solved, corrected, triplets) = if path.extension().is_some_and(|e| e == "json") {
        // JSON has no incremental decoder: batch path (same output).
        let trace =
            read_trace(path).map_err(|e| CliError::runtime(format!("read {input}: {e}")))?;
        let report = distill_with_report(&trace, &cfg);
        (
            report.replay,
            report.solved,
            report.corrected,
            report.triplets,
        )
    } else {
        // Binary traces stream through the incremental distiller: memory
        // stays O(window) however large the trace file is.
        let mut stream = TraceFileStream::open(path)
            .map_err(|e| CliError::runtime(format!("open {input}: {e}")))?;
        let header = stream
            .header()
            .map_err(|e| CliError::runtime(format!("read {input}: {e}")))?
            .clone();
        let mut replay = ReplayTrace::new(&format!("{} trial {}", header.scenario, header.trial));
        let stats = distill_stream(&mut stream, &cfg, &mut replay)
            .map_err(|e| CliError::runtime(format!("distill {input}: {e}")))?;
        (replay, stats.solved, stats.corrected, stats.triplets)
    };
    write_replay(&out, &replay)
        .map_err(|e| CliError::runtime(format!("write {}: {e}", out.display())))?;
    eprintln!(
        "distilled {} triplets ({} solved, {} corrected) → {} tuples → {}",
        triplets,
        solved,
        corrected,
        replay.tuples.len(),
        out.display()
    );
    Ok(())
}

fn cmd_inspect(args: &Args) -> CliResult {
    args.check(&["records"], 2)?;
    let input = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("usage: tracemod inspect <file>"))?;
    let path = Path::new(input);
    // Try replay trace first (cheap), then collected trace.
    if let Ok(replay) = read_replay(path) {
        println!("replay trace: {}", replay.source);
        println!("  tuples:        {}", replay.tuples.len());
        println!(
            "  duration:      {:.1} s",
            replay.total_duration().as_secs_f64()
        );
        println!(
            "  mean latency:  {:.2} ms",
            replay.mean_latency().as_millis_f64()
        );
        println!(
            "  mean Vb:       {:.0} ns/B ({:.0} kb/s bottleneck)",
            replay.mean_vb(),
            8e6 / replay.mean_vb().max(1e-9)
        );
        println!("  mean loss:     {:.2}%", replay.mean_loss() * 100.0);
        let worst = replay.tuples.iter().map(|t| t.loss).fold(0.0f64, f64::max);
        println!("  worst loss:    {:.1}%", worst * 100.0);
        return Ok(());
    }
    match read_trace(path) {
        Ok(trace) => {
            println!(
                "collected trace: host '{}', scenario '{}', trial {}",
                trace.host, trace.scenario, trace.trial
            );
            println!("  records:        {}", trace.records.len());
            println!("  span:           {:.1} s", trace.span_ns() as f64 / 1e9);
            println!("  packets:        {}", trace.packets().count());
            println!("  device samples: {}", trace.device_samples().count());
            println!("  lost (overrun): {}", trace.lost_records());
            let echoes = trace
                .packets()
                .filter(|p| matches!(p.proto, tracekit::ProtoInfo::IcmpEcho { .. }))
                .count();
            let replies = trace
                .packets()
                .filter(|p| matches!(p.proto, tracekit::ProtoInfo::IcmpEchoReply { .. }))
                .count();
            println!("  probes:         {echoes} echo, {replies} reply");
            // tcpdump-style record listing.
            let n: usize = args.parse_num("records", 0usize)?;
            for r in trace.records.iter().take(n) {
                println!("  {}", format_record(r));
            }
            if n > 0 && trace.records.len() > n {
                println!("  ... ({} more records)", trace.records.len() - n);
            }
            Ok(())
        }
        Err(e) => Err(CliError::runtime(format!(
            "{input}: not a trace or replay file ({e})"
        ))),
    }
}

/// One-line, tcpdump-flavoured rendering of a trace record.
fn format_record(r: &tracekit::TraceRecord) -> String {
    use tracekit::{Dir, ProtoInfo, TraceRecord};
    let ts = r.timestamp_ns() as f64 / 1e9;
    match r {
        TraceRecord::Packet(p) => {
            let dir = match p.dir {
                Dir::Out => ">",
                Dir::In => "<",
            };
            let proto = match &p.proto {
                ProtoInfo::IcmpEcho {
                    ident,
                    seq,
                    payload_len,
                    ..
                } => {
                    format!("icmp echo id {ident} seq {seq} len {payload_len}")
                }
                ProtoInfo::IcmpEchoReply {
                    ident, seq, rtt_ns, ..
                } => {
                    format!(
                        "icmp reply id {ident} seq {seq} rtt {:.2}ms",
                        *rtt_ns as f64 / 1e6
                    )
                }
                ProtoInfo::Udp {
                    src_port,
                    dst_port,
                    payload_len,
                } => {
                    format!("udp {src_port} > {dst_port} len {payload_len}")
                }
                ProtoInfo::Tcp {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    payload_len,
                } => {
                    let mut fl = String::new();
                    for (bit, ch) in [(1u8, 'F'), (2, 'S'), (4, 'R'), (8, 'P'), (16, '.')] {
                        if flags & bit != 0 {
                            fl.push(ch);
                        }
                    }
                    format!(
                        "tcp {src_port} > {dst_port} [{fl}] seq {seq} ack {ack} len {payload_len}"
                    )
                }
                ProtoInfo::Other { protocol } => format!("proto {protocol}"),
            };
            format!("{ts:12.6} {dir} {proto} ({}B wire)", p.wire_len)
        }
        TraceRecord::Device(d) => format!(
            "{ts:12.6} * device signal {} quality {} silence {}",
            d.signal, d.quality, d.silence
        ),
        TraceRecord::Overrun(o) => format!(
            "{ts:12.6} ! overrun: lost {} packet + {} device records",
            o.lost_packets, o.lost_device
        ),
    }
}

fn cmd_replay(args: &Args) -> CliResult {
    args.check(&["benchmark", "trial", "tick-ms"], 2)?;
    let input = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("usage: tracemod replay <replay> --benchmark <b>"))?;
    let replay = read_replay(Path::new(input))
        .map_err(|e| CliError::runtime(format!("read {input}: {e}")))?;
    let benchmark = benchmark_arg(args)?;
    let trial = args.parse_num("trial", 1u32)?;
    let tick_ms = args.parse_num("tick-ms", 10u64)?;
    let cfg = RunConfig {
        clock: if tick_ms == 0 {
            TickClock::ideal()
        } else {
            TickClock::with_resolution(SimDuration::from_millis(tick_ms))
        },
        ..RunConfig::default()
    };
    eprintln!(
        "running {} under modulation by '{}' (tick {} ms)...",
        benchmark.name(),
        replay.source,
        tick_ms
    );
    let r = modulated_run(&replay, trial, benchmark, &cfg);
    report_result(&r);
    Ok(())
}

fn cmd_live(args: &Args) -> CliResult {
    args.check(
        &[
            "scenario",
            "scenario-file",
            "duration-secs",
            "benchmark",
            "trial",
        ],
        1,
    )?;
    let sc = scenario_arg(args)?;
    let benchmark = benchmark_arg(args)?;
    let trial = args.parse_num("trial", 1u32)?;
    eprintln!(
        "running {} live on '{}' trial {trial}...",
        benchmark.name(),
        sc.name
    );
    let r = live_run(&sc, trial, benchmark, &RunConfig::default());
    report_result(&r);
    Ok(())
}

fn cmd_live_pipeline(args: &Args) -> CliResult {
    args.check(
        &[
            "scenario",
            "scenario-file",
            "duration-secs",
            "benchmark",
            "trial",
            "window-secs",
            "horizon",
            "obs-out",
        ],
        1,
    )?;
    let sc = scenario_arg(args)?;
    let benchmark = benchmark_arg(args)?;
    let trial = args.parse_num("trial", 1u32)?;
    let dcfg = distill_cfg(args)?;
    eprintln!(
        "live pipeline: collecting '{}' trial {trial} while running {} modulated...",
        sc.name,
        benchmark.name()
    );
    let out = live_modulated_run(&sc, trial, benchmark, &dcfg, &RunConfig::default());
    report_result(&out.result);
    let s = &out.stats;
    eprintln!(
        "pipeline: {} tuples fed, {} consumed, peak backlog {}",
        s.tuples_fed, s.tuples_consumed, s.peak_backlog
    );
    match s.first_consumption_secs {
        Some(t) => eprintln!(
            "modulation began at t={t:.1}s, {:.1}s before collection finished",
            s.collection_secs - t
        ),
        None => eprintln!("modulation never consumed a tuple (collection too short?)"),
    }
    if let Some(obs_out) = args.get("obs-out") {
        std::fs::write(obs_out, out.manifest.to_json_pretty())
            .map_err(|e| CliError::runtime(format!("write {obs_out}: {e}")))?;
        eprintln!("wrote run manifest → {obs_out}");
    }
    Ok(())
}

fn cmd_obs_report(args: &Args) -> CliResult {
    args.check(&["check", "format"], 2)?;
    let input = args.positional.get(1).ok_or_else(|| {
        CliError::usage("usage: tracemod obs-report <run.json> [--check] [--format text|json|md]")
    })?;
    let text = std::fs::read_to_string(input)
        .map_err(|e| CliError::runtime(format!("read {input}: {e}")))?;
    // A fleet aggregate report is the other artifact this command
    // understands: try the per-run manifest first (the common case),
    // fall back to the fleet schema.
    let manifest = match RunManifest::from_json(&text) {
        Ok(m) => m,
        Err(manifest_err) => {
            if let Ok(fleet) = FleetReport::from_json(&text) {
                return obs_report_fleet(args, &fleet);
            }
            return Err(CliError::runtime(format!("{input}: {manifest_err}")));
        }
    };
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", manifest.render_text()),
        "json" => println!("{}", manifest.to_json_pretty()),
        "md" => print!("{}", manifest.render_markdown()),
        other => {
            return Err(CliError::usage(format!(
                "unknown format '{other}' (try: text, json, md)"
            )))
        }
    }
    if args.get("check").is_some() {
        let violations = manifest.check(&FidelityThresholds::default());
        if !violations.is_empty() {
            let mut msg = String::from("fidelity self-check failed:");
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(v);
            }
            return Err(CliError::runtime(msg));
        }
        eprintln!("fidelity self-check: PASS");
    }
    Ok(())
}

/// `obs-report` on a fleet aggregate: render, then gate on the fleet
/// thresholds when `--check` is set.
fn obs_report_fleet(args: &Args, report: &FleetReport) -> CliResult {
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", report.render_text()),
        "md" => print!("{}", report.render_markdown()),
        "json" => println!("{}", report.to_json_pretty()),
        other => {
            return Err(CliError::usage(format!(
                "unknown format '{other}' (try: text, json, md)"
            )))
        }
    }
    if args.get("check").is_some() {
        let violations = report.check(&FidelityThresholds::default());
        if !violations.is_empty() {
            let mut msg = String::from("fleet fidelity gate failed:");
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(v);
            }
            return Err(CliError::runtime(msg));
        }
        eprintln!("fleet fidelity gate: PASS");
    }
    Ok(())
}

/// Flags shared by the flight-recorder commands (`trace-export`,
/// `journey`): which live pipeline to run.
const FLIGHT_RUN_FLAGS: [&str; 7] = [
    "scenario",
    "scenario-file",
    "duration-secs",
    "benchmark",
    "trial",
    "window-secs",
    "horizon",
];

/// Run the live pipeline the flight-recorder commands observe.
/// Scenario defaults to the Porter walk and benchmark to `web`, so
/// `tracemod journey` works bare.
fn flight_run(args: &Args) -> Result<LiveModOutcome, CliError> {
    let sc = scenario_arg_default(args, Some("porter"))?;
    let benchmark = benchmark_named(args.get("benchmark").unwrap_or("web"))?;
    let trial = args.parse_num("trial", 1u32)?;
    let dcfg = distill_cfg(args)?;
    eprintln!(
        "recording flight of '{}' trial {trial} under {}...",
        sc.name,
        benchmark.name()
    );
    Ok(live_modulated_run(
        &sc,
        trial,
        benchmark,
        &dcfg,
        &RunConfig::default(),
    ))
}

fn cmd_trace_export(args: &Args) -> CliResult {
    let mut allowed: Vec<&str> = FLIGHT_RUN_FLAGS.to_vec();
    allowed.push("out");
    args.check(&allowed, 1)?;
    let out_path = PathBuf::from(args.require("out")?);
    let outcome = flight_run(args)?;
    let json = outcome.flight.to_chrome_trace();
    std::fs::write(&out_path, &json)
        .map_err(|e| CliError::runtime(format!("write {}: {e}", out_path.display())))?;
    outcome.flight.with(|r| {
        eprintln!(
            "wrote {} ({} events, {} packets, {} evicted) — load in Perfetto or chrome://tracing",
            out_path.display(),
            r.len(),
            r.packets(),
            r.evicted()
        );
    });
    Ok(())
}

/// Parse `--window T0..T1` (seconds, decimals allowed) into ns bounds.
fn window_arg(spec: &str) -> Result<(u64, u64), CliError> {
    let bad = || {
        CliError::usage(format!(
            "invalid --window '{spec}' (expected T0..T1 in seconds)"
        ))
    };
    let (a, b) = spec.split_once("..").ok_or_else(bad)?;
    let t0: f64 = a.trim().parse().map_err(|_| bad())?;
    let t1: f64 = b.trim().parse().map_err(|_| bad())?;
    if t0 < 0.0 || t1 < t0 {
        return Err(bad());
    }
    Ok(((t0 * 1e9) as u64, (t1 * 1e9) as u64))
}

fn cmd_journey(args: &Args) -> CliResult {
    let mut allowed: Vec<&str> = FLIGHT_RUN_FLAGS.to_vec();
    allowed.extend(["packet-id", "window"]);
    args.check(&allowed, 1)?;
    if args.get("packet-id").is_some() && args.get("window").is_some() {
        return Err(CliError::usage(
            "--packet-id and --window are mutually exclusive",
        ));
    }
    let window = args.get("window").map(window_arg).transpose()?;
    let packet_id: Option<u64> = match args.get("packet-id") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::usage(format!("invalid value for --packet-id: {v}")))?,
        ),
    };
    let outcome = flight_run(args)?;
    let rendered = outcome.flight.with(|r| -> Result<String, CliError> {
        if let Some((t0_ns, t1_ns)) = window {
            return Ok(r.render_window(t0_ns, t1_ns));
        }
        let id = match packet_id {
            Some(n) => PacketId(n),
            None => r
                .best_packet()
                .ok_or_else(|| CliError::runtime("no packets recorded"))?,
        };
        let journey = r
            .journey(id)
            .ok_or_else(|| CliError::runtime(format!("no retained records for packet {id}")))?;
        Ok(journey.render_text())
    })?;
    print!("{rendered}");
    Ok(())
}

fn cmd_bench_diff(args: &Args) -> CliResult {
    args.check(&["baseline", "check", "json", "tolerance", "overhead"], 2)?;
    let current_path = args.positional.get(1).ok_or_else(|| {
        CliError::usage("usage: tracemod bench-diff <current.jsonl> [--baseline F] [--check]")
    })?;
    let baseline_path = args.get("baseline").unwrap_or("BENCH_baseline.json");
    let read = |p: &str| {
        std::fs::read_to_string(p)
            .map_err(|e| CliError::runtime(format!("read {p}: {e}")))
            .and_then(|t| parse_bench_jsonl(&t).map_err(|e| CliError::runtime(format!("{p}: {e}"))))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let cfg = BenchDiffConfig {
        default_tolerance_ratio: args.parse_num(
            "tolerance",
            BenchDiffConfig::default().default_tolerance_ratio,
        )?,
        ..BenchDiffConfig::default()
    };
    if cfg.default_tolerance_ratio < 1.0 {
        return Err(CliError::usage("--tolerance must be >= 1.0"));
    }
    let diff = BenchDiff::compare(&baseline, &current, &cfg);
    if args.get("json").is_some() {
        println!("{}", diff.to_json());
    } else {
        print!("{}", diff.render_text());
    }
    if args.get("check").is_some() && !diff.pass() {
        let names: Vec<&str> = diff.failures().map(|v| v.name.as_str()).collect();
        return Err(CliError::runtime(format!(
            "benchmark regression gate failed: {}",
            names.join(", ")
        )));
    }
    // Same-run overhead gates: both benchmarks come from *current*, so
    // the ratio is immune to cross-run machine noise and can be tight.
    if let Some(spec) = args.get("overhead") {
        let gate = OverheadGate::parse(spec).map_err(CliError::usage)?;
        let ratio = gate.check(&current).map_err(CliError::runtime)?;
        eprintln!(
            "overhead gate: {} is {ratio:.3}x {} (max {:.3}x) — PASS",
            gate.variant, gate.base, gate.max_ratio
        );
    }
    Ok(())
}

fn cmd_chaos(args: &Args) -> CliResult {
    args.check(
        &[
            "seed",
            "plan",
            "scenario",
            "scenario-file",
            "duration-secs",
            "benchmark",
            "trial",
            "trials",
            "window-secs",
            "horizon",
            "jobs",
            "obs-out",
            "fault-out",
            "fault-budget",
            "check",
        ],
        1,
    )?;
    let seed: u64 = args
        .require("seed")?
        .parse()
        .map_err(|_| CliError::usage("invalid value for --seed (expected u64)"))?;
    let plan_path = args.require("plan")?;
    // A bad plan file is a bad invocation, not a mid-run failure: the
    // run has not started yet, so both unreadable and unparseable plans
    // are usage errors (exit 2).
    let plan_text = std::fs::read_to_string(plan_path)
        .map_err(|e| CliError::usage(format!("read fault plan {plan_path}: {e}")))?;
    let fault_plan = FaultPlan::from_json(&plan_text)
        .map_err(|e| CliError::usage(format!("{plan_path}: {e}")))?;
    let sc = scenario_arg_default(args, Some("porter"))?;
    let benchmark = benchmark_named(args.get("benchmark").unwrap_or("web"))?;
    let trial0 = args.parse_num("trial", 1u32)?;
    let trials = args.parse_num("trials", 1u32)?.max(1);
    let dcfg = distill_cfg(args)?;
    let jobs = args.parse_num("jobs", 1usize)?.max(1);

    eprintln!(
        "chaos: '{}' under {} with {} fault(s), seed {seed}, {} trial(s), {} worker(s)...",
        sc.name,
        benchmark.name(),
        fault_plan.len(),
        trials,
        jobs
    );
    let mut tplan = TrialPlan::new();
    for i in 0..trials {
        let trial = trial0 + i;
        tplan.push(TrialCell {
            label: format!("{}/{}/chaos#{trial}", sc.name, benchmark.name()),
            trial,
            cfg: RunConfig::default(),
            kind: CellKind::Chaos {
                scenario: sc.clone(),
                benchmark,
                distill: dcfg,
                seed,
                plan: fault_plan.clone(),
            },
        });
    }
    let results = tplan.run(&Exec::with_workers(jobs));
    let outcomes = results.chaos(sc.name, benchmark);

    let mut manifests = String::new();
    let mut fault_log = String::new();
    let mut injected_total = 0u64;
    for (i, o) in outcomes.iter().enumerate() {
        let trial = trial0 + i as u32;
        report_result(&o.outcome.result);
        for ev in &o.faults {
            // One observable event per injected fault.
            eprintln!(
                "[fault] trial {trial} t={:9.3}s {:<13} {}",
                ev.t_virtual_ns as f64 / 1e9,
                ev.fault,
                ev.info
            );
        }
        fault_log.push_str(&events_to_jsonl(&o.faults));
        let c = &o.counters;
        injected_total += c.injected_total();
        eprintln!(
            "chaos trial {trial}: {} fault(s) injected ({} quarantined records, {} truncated, \
             {} rejected timestamps), degraded: {}",
            c.injected_total(),
            c.quarantined_records,
            c.truncated_records,
            c.rejected_timestamps,
            if o.outcome.manifest.fidelity.degraded {
                "YES"
            } else {
                "no"
            }
        );
        // Runner-stripped manifests: byte-comparable across --jobs.
        manifests.push_str(&o.outcome.manifest.deterministic_json());
        manifests.push('\n');
    }
    if let Some(obs_out) = args.get("obs-out") {
        std::fs::write(obs_out, &manifests)
            .map_err(|e| CliError::runtime(format!("write {obs_out}: {e}")))?;
        eprintln!("wrote {} run manifest(s) → {obs_out}", outcomes.len());
    }
    if let Some(fault_out) = args.get("fault-out") {
        std::fs::write(fault_out, &fault_log)
            .map_err(|e| CliError::runtime(format!("write {fault_out}: {e}")))?;
        eprintln!("wrote fault-event log → {fault_out}");
    }
    if let Some(budget) = args.get("fault-budget") {
        let budget: u64 = budget
            .parse()
            .map_err(|_| CliError::usage(format!("invalid value for --fault-budget: {budget}")))?;
        if injected_total > budget {
            return Err(CliError::runtime(format!(
                "fault budget exceeded: {injected_total} faults injected > budget {budget}"
            )));
        }
    }
    if args.get("check").is_some() {
        let mut msgs = Vec::new();
        for (i, o) in outcomes.iter().enumerate() {
            for v in o.outcome.manifest.check(&FidelityThresholds::default()) {
                msgs.push(format!("trial {}: {v}", trial0 + i as u32));
            }
        }
        if !msgs.is_empty() {
            let mut msg = String::from("fidelity self-check failed under faults:");
            for v in &msgs {
                msg.push_str("\n  - ");
                msg.push_str(v);
            }
            return Err(CliError::runtime(msg));
        }
        eprintln!("fidelity self-check: PASS");
    }
    Ok(())
}

fn cmd_fleet(args: &Args) -> CliResult {
    args.check(
        &[
            "clients",
            "scenario",
            "scenario-file",
            "duration-secs",
            "seed",
            "shards",
            "jobs",
            "stations",
            "probe-interval-ms",
            "wheel-slots",
            "fault-seed",
            "fault-plan",
            "obs-out",
            "manifests-out",
            "telemetry-out",
            "telemetry-prom",
            "telemetry-interval-secs",
            "profile-out",
            "fault-out",
            "alerts",
            "alerts-out",
            "alerts-md",
            "alerts-baseline",
            "check",
        ],
        1,
    )?;
    let (sc, pack) = scenario_or_pack(args, Some("porter"))?;
    let clients: u32 = args.parse_num("clients", 1000u32)?;
    if clients == 0 {
        return Err(CliError::usage("--clients must be positive"));
    }
    let shards = args.parse_num("shards", 1usize)?.max(1);
    let jobs = args.parse_num("jobs", 1usize)?.max(1);
    let mut plan = FleetPlan::new(sc, clients)
        .with_seed(args.parse_num("seed", 7u64)?)
        .with_shards(shards);
    // A pack fleet mixes models across clients; single-model runs keep
    // the scenario path.
    plan.pack = pack;
    if let Some(stations) = args.get("stations") {
        let n: u32 = stations
            .parse()
            .map_err(|_| CliError::usage(format!("invalid value for --stations: {stations}")))?;
        if n == 0 {
            return Err(CliError::usage("--stations must be positive"));
        }
        plan.stations = n;
    }
    let probe_ms = args.parse_num("probe-interval-ms", 1000u64)?;
    if probe_ms == 0 {
        return Err(CliError::usage("--probe-interval-ms must be positive"));
    }
    plan = plan.with_probe_interval(SimDuration::from_millis(probe_ms));
    let wheel_slots = args.parse_num("wheel-slots", 64usize)?;
    if wheel_slots == 0 || wheel_slots % 64 != 0 {
        return Err(CliError::usage(
            "--wheel-slots must be a positive multiple of 64",
        ));
    }
    plan.wheel_slots = wheel_slots;

    // Any telemetry flag switches the sampling plane on; the interval
    // flag alone is enough for `--obs-out` consumers who only want the
    // series embedded in the aggregate report.
    let telemetry_requested = args.get("telemetry-out").is_some()
        || args.get("telemetry-prom").is_some()
        || args.get("telemetry-interval-secs").is_some();
    if telemetry_requested {
        let secs = args.parse_num("telemetry-interval-secs", 1u64)?;
        if secs == 0 {
            return Err(CliError::usage(
                "--telemetry-interval-secs must be positive",
            ));
        }
        plan = plan.with_telemetry(TelemetryConfig::default().with_interval_secs(secs));
    }
    if args.get("profile-out").is_some() {
        plan = plan.with_profile(true);
    }

    eprintln!(
        "fleet: {} clients × '{}' ({} stations, {} shard(s), {} worker(s))...",
        plan.clients, plan.scenario.name, plan.stations, plan.shards, jobs
    );
    let exec = Exec::with_workers(jobs);
    let out = match args.get("fault-plan") {
        Some(plan_path) => {
            let fault_seed: u64 = args
                .parse_num("fault-seed", 42u64)
                .map_err(|_| CliError::usage("invalid value for --fault-seed (expected u64)"))?;
            let plan_text = std::fs::read_to_string(plan_path)
                .map_err(|e| CliError::usage(format!("read fault plan {plan_path}: {e}")))?;
            let fault_plan = FaultPlan::from_json(&plan_text)
                .map_err(|e| CliError::usage(format!("{plan_path}: {e}")))?;
            fleet_run_chaos(&plan, &exec, fault_seed, &fault_plan)
        }
        None => fleet_run(&plan, &exec),
    };

    print!("{}", out.report.render_text());
    for ev in &out.faults {
        eprintln!(
            "[fault] t={:9.3}s {:<13} {}",
            ev.t_virtual_ns as f64 / 1e9,
            ev.fault,
            ev.info
        );
    }
    if let Some(fault_out) = args.get("fault-out") {
        std::fs::write(fault_out, events_to_jsonl(&out.faults))
            .map_err(|e| CliError::runtime(format!("write {fault_out}: {e}")))?;
        eprintln!(
            "wrote fault-event log ({} event(s)) → {fault_out}",
            out.faults.len()
        );
    }
    if let Some(r) = &out.report.runner {
        eprintln!(
            "engine: {:.0} events/s over {:.2}s wall, peak queue depth {}, peak packets live {}",
            r.records_per_sec, r.wall_secs, out.peak_queue_depth, out.peak_packets_live
        );
    }
    if let Some(manifests_out) = args.get("manifests-out") {
        // Runner-stripped JSONL, one manifest per client in client
        // order: byte-comparable across --shards and --jobs.
        let mut s = String::new();
        for m in &out.manifests {
            s.push_str(&m.deterministic_json());
            s.push('\n');
        }
        std::fs::write(manifests_out, &s)
            .map_err(|e| CliError::runtime(format!("write {manifests_out}: {e}")))?;
        eprintln!(
            "wrote {} client manifest(s) → {manifests_out}",
            out.manifests.len()
        );
    }
    if let Some(obs_out) = args.get("obs-out") {
        std::fs::write(obs_out, out.report.to_json_pretty())
            .map_err(|e| CliError::runtime(format!("write {obs_out}: {e}")))?;
        eprintln!("wrote fleet report → {obs_out}");
    }
    if let Some(tel_out) = args.get("telemetry-out") {
        let tel = out.report.telemetry.as_ref().expect("telemetry enabled");
        std::fs::write(tel_out, tel.to_jsonl())
            .map_err(|e| CliError::runtime(format!("write {tel_out}: {e}")))?;
        eprintln!(
            "wrote telemetry series ({} samples) → {tel_out}",
            tel.series.len()
        );
    }
    if let Some(prom_out) = args.get("telemetry-prom") {
        let tel = out.report.telemetry.as_ref().expect("telemetry enabled");
        std::fs::write(prom_out, tel.to_prometheus())
            .map_err(|e| CliError::runtime(format!("write {prom_out}: {e}")))?;
        eprintln!("wrote Prometheus exposition → {prom_out}");
    }
    if let Some(prof_out) = args.get("profile-out") {
        let prof = out
            .profile
            .as_ref()
            .ok_or_else(|| CliError::runtime("profiler produced no data"))?;
        std::fs::write(prof_out, prof.render_collapsed())
            .map_err(|e| CliError::runtime(format!("write {prof_out}: {e}")))?;
        eprintln!("wrote collapsed-stack profile → {prof_out}");
        eprint!("{}", prof.render_text());
    }
    if args.get("check").is_some() {
        let violations = out.report.check(&FidelityThresholds::default());
        if !violations.is_empty() {
            let mut msg = String::from("fleet fidelity gate failed:");
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(v);
            }
            return Err(CliError::runtime(msg));
        }
        eprintln!("fleet fidelity gate: PASS");
    }
    if let Some(rules_spec) = args.get("alerts") {
        let rules = load_rules(rules_spec)?;
        let baseline = read_fleet_report(args, "alerts-baseline")?;
        let alerts = fleet_alerts(&out, &rules, baseline.as_ref()).map_err(CliError::runtime)?;
        eprintln!(
            "alerts: {} active, {} suppressed ({} rule(s) over {} boundaries)",
            alerts.active().count(),
            alerts.suppressed().count(),
            alerts.rules,
            alerts.boundaries
        );
        if let Some(p) = args.get("alerts-out") {
            std::fs::write(p, alerts.to_jsonl())
                .map_err(|e| CliError::runtime(format!("write {p}: {e}")))?;
            eprintln!("wrote alert report → {p}");
        }
        if let Some(p) = args.get("alerts-md") {
            std::fs::write(p, alerts.render_markdown())
                .map_err(|e| CliError::runtime(format!("write {p}: {e}")))?;
            eprintln!("wrote alert summary → {p}");
        }
        if args.get("check").is_some() {
            let violations = alerts.check(Severity::Warn);
            if !violations.is_empty() {
                let mut msg = String::from("fleet alert gate failed:");
                for v in &violations {
                    msg.push_str("\n  - ");
                    msg.push_str(v);
                }
                return Err(CliError::runtime(msg));
            }
            eprintln!("fleet alert gate: PASS");
        }
    }
    Ok(())
}

/// Resolve a `--rules`/`--alerts` value: the literal `builtin`, or a
/// path to a rule file — TOML (`[[rule]]` tables) unless the extension
/// or the leading byte says JSON. Rules are compiled up front so a bad
/// rule file is a bad invocation (exit 2), not a mid-run failure.
fn load_rules(spec: &str) -> Result<RuleSet, CliError> {
    if spec == "builtin" {
        return Ok(RuleSet::builtin());
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| CliError::usage(format!("read rules {spec}: {e}")))?;
    let rules = if spec.ends_with(".json") || text.trim_start().starts_with('{') {
        RuleSet::from_json(&text)
    } else {
        RuleSet::from_toml(&text)
    }
    .map_err(|e| CliError::usage(format!("{spec}: {e}")))?;
    rules
        .compile()
        .map_err(|e| CliError::usage(format!("{spec}: {e}")))?;
    Ok(rules)
}

/// Read an optional `--<key> fleet.json` aggregate report.
fn read_fleet_report(args: &Args, key: &str) -> Result<Option<FleetReport>, CliError> {
    match args.get(key) {
        None => Ok(None),
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| CliError::runtime(format!("read {p}: {e}")))?;
            FleetReport::from_json(&text)
                .map(Some)
                .map_err(|e| CliError::runtime(format!("{p}: {e}")))
        }
    }
}

fn cmd_alerts(args: &Args) -> CliResult {
    args.check(
        &[
            "rules",
            "telemetry",
            "report",
            "baseline",
            "faults",
            "out",
            "md",
            "min-severity",
            "check",
        ],
        1,
    )?;
    let rules = load_rules(args.require("rules")?)?;
    let report = read_fleet_report(args, "report")?;
    let baseline = read_fleet_report(args, "baseline")?;
    // The series comes from an exported `--telemetry-out` JSONL when
    // given, else from the series embedded in the fleet report.
    let series: Vec<SamplePoint> = match args.get("telemetry") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("read {path}: {e}")))?;
            let mut rows = Vec::new();
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                rows.push(
                    serde_json::from_str::<SamplePoint>(line)
                        .map_err(|e| CliError::runtime(format!("{path}:{}: {e}", i + 1)))?,
                );
            }
            rows
        }
        None => report
            .as_ref()
            .and_then(|r| r.telemetry.as_ref())
            .map(|t| t.series.clone())
            .unwrap_or_default(),
    };
    if series.is_empty() && report.is_none() {
        return Err(CliError::usage(
            "nothing to evaluate: pass --telemetry F.jsonl and/or --report fleet.json",
        ));
    }
    let faults = match args.get("faults") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("read {path}: {e}")))?;
            parse_fault_stamps(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?
        }
        None => Vec::new(),
    };
    let alert_report = evaluate_alerts(
        &rules,
        &AlertInputs {
            series: &series,
            report: report.as_ref(),
            baseline: baseline.as_ref(),
            faults: &faults,
        },
    )
    .map_err(CliError::runtime)?;
    print!("{}", alert_report.render_markdown());
    if let Some(p) = args.get("out") {
        std::fs::write(p, alert_report.to_jsonl())
            .map_err(|e| CliError::runtime(format!("write {p}: {e}")))?;
        eprintln!("wrote alert report → {p}");
    }
    if let Some(p) = args.get("md") {
        std::fs::write(p, alert_report.render_markdown())
            .map_err(|e| CliError::runtime(format!("write {p}: {e}")))?;
        eprintln!("wrote alert summary → {p}");
    }
    if args.get("check").is_some() {
        let floor =
            Severity::parse(args.get("min-severity").unwrap_or("warn")).map_err(CliError::usage)?;
        let violations = alert_report.check(floor);
        if !violations.is_empty() {
            let mut msg = String::from("alert gate failed:");
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(v);
            }
            return Err(CliError::runtime(msg));
        }
        eprintln!(
            "alert gate: PASS ({} suppressed alert(s) attributed to faults)",
            alert_report.suppressed().count()
        );
    }
    Ok(())
}

fn cmd_diff_runs(args: &Args) -> CliResult {
    args.check(&["shards", "check"], 3)?;
    let a_path = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("missing run artifacts: tracemod diff-runs A B"))?;
    let b_path = args
        .positional
        .get(2)
        .ok_or_else(|| CliError::usage("missing second run artifact: tracemod diff-runs A B"))?;
    let a = std::fs::read_to_string(a_path)
        .map_err(|e| CliError::runtime(format!("read {a_path}: {e}")))?;
    let b = std::fs::read_to_string(b_path)
        .map_err(|e| CliError::runtime(format!("read {b_path}: {e}")))?;
    let mut opts = DiffOptions::default();
    if let Some(s) = args.get("shards") {
        let n: usize = s
            .parse()
            .map_err(|_| CliError::usage(format!("invalid value for --shards: {s}")))?;
        if n == 0 {
            return Err(CliError::usage("--shards must be positive"));
        }
        opts.shards = Some(n);
    }
    match diff_artifacts(&a, &b, &opts) {
        None => {
            println!(
                "runs identical: {a_path} == {b_path} ({} record(s))",
                obs::diff::record_count(&a)
            );
            Ok(())
        }
        Some(d) => {
            println!("first divergence: {}", d.render());
            if args.get("check").is_some() {
                Err(CliError::runtime(format!(
                    "runs diverge: {a_path} vs {b_path}"
                )))
            } else {
                Ok(())
            }
        }
    }
}

fn report_result(r: &emu::RunResult) {
    match r.elapsed {
        Some(secs) => println!("{}: {:.2} s", r.benchmark.name(), secs),
        None => println!("{}: DID NOT COMPLETE (deadline)", r.benchmark.name()),
    }
    for (phase, secs) in &r.phases {
        println!("  {:<8} {:.2} s", phase.name(), secs);
    }
}

const USAGE: &str = "usage: tracemod <command> [args]
commands:
  scenarios                                list the built-in mobile scenarios and the
                                           registered channel-model families
  dump-scenario --scenario S               print a scenario as editable JSON
  collect  --scenario S --trial N --out F  collect a trace (add --target-out F2 for two-sided;
                                           --scenario-file F.json uses a custom scenario)
  distill  <trace> --out F                 distill a trace into a replay trace (binary traces
                                           stream in bounded memory; --window-secs W --horizon H)
  inspect  <file> [--records N]            summarize a trace/replay file (optionally list records)
  replay   <replay> --benchmark B          run a benchmark under modulation
  live     --scenario S --benchmark B      run a benchmark live on the wireless scenario
  live-pipeline --scenario S --benchmark B collect, distill, and modulate concurrently
                                           (--obs-out F writes the observability manifest)
  obs-report <run.json> [--check]          pretty-print a run manifest (--format text|json|md);
                                           --check gates on the fidelity thresholds
  trace-export --out F                     run the live pipeline with the flight recorder and
                                           export Perfetto/chrome://tracing JSON
                                           (defaults: --scenario porter --benchmark web)
  journey [--packet-id N | --window T0..T1] run the live pipeline and print one packet's causal
                                           timeline (default: the packet covering most stages)
  bench-diff <current.jsonl> [--check]     compare criterion JSONL against a baseline
                                           (--baseline F, default BENCH_baseline.json;
                                           --json for machine-readable verdicts; --tolerance R;
                                           --overhead BASE=VARIANT:R gates VARIANT's same-run
                                           median at R× BASE)
  chaos --seed N --plan F                  run the live pipeline under a deterministic fault plan
                                           (defaults: --scenario porter --benchmark web; --trials T
                                           --jobs J for a matrix; --obs-out F / --fault-out F write
                                           runner-stripped manifests and the fault-event JSONL;
                                           --fault-budget N gates on injected faults; --check gates
                                           on the fidelity thresholds)
  fleet --clients N                        run N mobile clients under one fleet engine
                                           (defaults: --scenario porter, 1000 clients; --shards S
                                           shards clients across engines with byte-identical
                                           output, --jobs J workers; --stations K, --seed N,
                                           --probe-interval-ms M, --wheel-slots W tune the fleet;
                                           --fault-plan F [--fault-seed N] injects faults;
                                           --manifests-out F writes per-client manifest JSONL,
                                           --obs-out F the aggregate report; --telemetry-out F /
                                           --telemetry-prom F write the sampled series as JSONL /
                                           Prometheus text [--telemetry-interval-secs N, default 1];
                                           --profile-out F writes a collapsed-stack self-profile;
                                           --fault-out F writes the fault-event JSONL;
                                           --alerts RULES evaluates SLO alert rules over the run
                                           [--alerts-out F / --alerts-md F export JSONL/markdown,
                                           --alerts-baseline fleet.json feeds delta rules];
                                           --check gates on the fleet fidelity thresholds and,
                                           with --alerts, on active alerts)
  alerts --rules RULES                     evaluate SLO alert rules over exported run artifacts
                                           (RULES is a TOML/JSON rule file or 'builtin';
                                           --telemetry F.jsonl --report fleet.json --faults F.jsonl
                                           feed the engine, --baseline fleet.json feeds delta
                                           rules; --out F / --md F export JSONL/markdown; --check
                                           [--min-severity info|warn|critical] fails on active
                                           alerts at or above the floor)
  diff-runs A B                            report the first field where two runs' artifacts
                                           diverge, with virtual-time/client/shard context
                                           (works on telemetry/manifest/fault/alert JSONL, fleet
                                           reports, and flight traces; --shards N names the owning
                                           shard; --check exits nonzero on divergence — the CI
                                           replacement for cmp)
  help                                     print this usage and exit 0 (also --help / -h)
benchmarks: web, ftp-send, ftp-recv, andrew
scenario commands also accept --duration-secs N to shorten the traversal;
--scenario also takes a scenario-pack path (*.toml / *.json) built from the
channel-model registry — fleets split clients across the pack's weighted model
mix, single-channel commands run the pack's first model";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    // `help` in any spelling prints the full usage to stdout and exits
    // 0 — it is the one successful invocation that takes no action.
    // Unknown commands still print it to stderr and exit 2.
    let wants_help = matches!(
        args.positional.first().map(String::as_str),
        Some("help") | Some("-h")
    ) || args.get("help").is_some();
    if wants_help {
        println!("{USAGE}");
        return;
    }
    let result = match args.positional.first().map(String::as_str) {
        Some("scenarios") => cmd_scenarios(&args),
        Some("dump-scenario") => cmd_dump_scenario(&args),
        Some("collect") => cmd_collect(&args),
        Some("distill") => cmd_distill(&args),
        Some("inspect") => cmd_inspect(&args),
        Some("replay") => cmd_replay(&args),
        Some("live") => cmd_live(&args),
        Some("live-pipeline") => cmd_live_pipeline(&args),
        Some("obs-report") => cmd_obs_report(&args),
        Some("trace-export") => cmd_trace_export(&args),
        Some("journey") => cmd_journey(&args),
        Some("bench-diff") => cmd_bench_diff(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("fleet") => cmd_fleet(&args),
        Some("alerts") => cmd_alerts(&args),
        Some("diff-runs") => cmd_diff_runs(&args),
        Some(other) => Err(CliError::usage(format!("unknown command '{other}'"))),
        None => Err(CliError::usage("no command given")),
    };
    match result {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            eprintln!("tracemod: {msg}");
            eprintln!("{USAGE}");
            exit(2);
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("tracemod: {msg}");
            exit(1);
        }
    }
}
