//! Bitwise equivalence of the calendar-queue and binary-heap hold
//! schedulers at the modulation layer: for arbitrary offer/collect
//! schedules — including clock jumps past the wheel horizon and stalls
//! at a frozen clock — both paths must produce identical verdicts,
//! identical release sequences (direction and payload), identical next
//! wakeup deadlines, and identical stats and fidelity reports.

use modulate::{Modulator, TickClock};
use netsim::{SimDuration, SimRng, SimTime};
use netstack::{Direction, LinkShim, ShimVerdict};
use proptest::prelude::*;
use tracekit::{QualityTuple, ReplayTrace};

fn arb_tuple() -> impl Strategy<Value = QualityTuple> {
    (
        100_000_000u64..5_000_000_000,
        0u64..100_000_000,
        0.0f64..20_000.0,
        0.0f64..5_000.0,
        0.0f64..0.5,
    )
        .prop_map(|(d, lat, vb, vr, loss)| QualityTuple {
            duration_ns: d,
            latency_ns: lat,
            vb_ns_per_byte: vb,
            vr_ns_per_byte: vr,
            loss,
        })
}

#[derive(Debug, Clone, Copy)]
enum Step {
    /// Offer one frame after `gap_us`.
    Offer {
        gap_us: u64,
        size: usize,
        inbound: bool,
    },
    /// Offer a burst of frames at one instant via `offer_batch`.
    Burst {
        gap_us: u64,
        count: u8,
        size: usize,
        inbound: bool,
    },
    /// Advance (or stall: `gap_us == 0`, or jump: hours) and collect.
    Collect { gap_us: u64 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..50_000, 40usize..1514, any::<bool>()).prop_map(|(gap_us, size, inbound)| {
            Step::Offer {
                gap_us,
                size,
                inbound,
            }
        }),
        (0u64..20_000, 2u8..20, 40usize..1514, any::<bool>()).prop_map(
            |(gap_us, count, size, inbound)| Step::Burst {
                gap_us,
                count,
                size,
                inbound,
            }
        ),
        // Stall / tick-scale advance / clock jump far past the horizon.
        prop_oneof![Just(0u64), 1u64..50_000, 3_600_000_000u64..7_200_000_000,]
            .prop_map(|gap_us| Step::Collect { gap_us }),
    ]
}

/// Run a schedule through one modulator and transcribe every observable:
/// verdicts, releases, wakeups, and the closing stats/fidelity reports.
fn transcript(heap: bool, tuples: &[QualityTuple], steps: &[Step], tick_ms: u64) -> Vec<String> {
    let replay = ReplayTrace {
        source: "prop".into(),
        tuples: tuples.to_vec(),
    };
    let clock = if tick_ms == 0 {
        TickClock::ideal()
    } else {
        TickClock::with_resolution(SimDuration::from_millis(tick_ms))
    };
    let mut m = Modulator::from_replay(replay).with_clock(clock);
    if heap {
        m = m.with_heap_scheduler();
    }
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    m.begin(SimTime::ZERO);
    let mut now = SimTime::ZERO;
    let mut log = Vec::new();
    let mut out = Vec::new();
    for (i, s) in steps.iter().enumerate() {
        match *s {
            Step::Offer {
                gap_us,
                size,
                inbound,
            } => {
                now += SimDuration::from_micros(gap_us);
                let dir = if inbound {
                    Direction::Inbound
                } else {
                    Direction::Outbound
                };
                let size = size + (i % 7);
                match m.offer(dir, vec![i as u8; size], now, &mut rng) {
                    ShimVerdict::Pass(bytes) => log.push(format!("{i} pass {}", bytes.len())),
                    ShimVerdict::Drop => log.push(format!("{i} drop")),
                    ShimVerdict::Hold => log.push(format!("{i} hold")),
                }
            }
            Step::Burst {
                gap_us,
                count,
                size,
                inbound,
            } => {
                now += SimDuration::from_micros(gap_us);
                let dir = if inbound {
                    Direction::Inbound
                } else {
                    Direction::Outbound
                };
                m.offer_batch(
                    dir,
                    (0..count).map(|k| vec![k; size]),
                    now,
                    &mut rng,
                    &mut out,
                );
                for rel in out.drain(..) {
                    log.push(format!("{i} batchpass {:?} {}", rel.dir, rel.bytes.len()));
                }
            }
            Step::Collect { gap_us } => {
                now += SimDuration::from_micros(gap_us);
                for rel in m.collect_due(now, &mut rng) {
                    log.push(format!("{i} rel {:?} {}", rel.dir, rel.bytes.len()));
                }
            }
        }
        log.push(format!(
            "{i} wakeup {:?} held {}",
            m.next_wakeup(),
            m.held_count()
        ));
    }
    // Drain the stragglers, then freeze the end-of-run reports.
    for rel in m.collect_due(SimTime::MAX, &mut rng) {
        log.push(format!("end rel {:?} {}", rel.dir, rel.bytes.len()));
    }
    log.push(format!("stats {:?}", m.stats()));
    log.push(format!("fidelity {:?}", m.fidelity()));
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same schedule, same seed: the wheel and heap hold queues are
    /// observationally identical, for every clock resolution.
    #[test]
    fn wheel_and_heap_modulators_are_bitwise_equivalent(
        tuples in proptest::collection::vec(arb_tuple(), 1..6),
        steps in proptest::collection::vec(arb_step(), 1..60),
        tick_ms in prop_oneof![Just(0u64), Just(1), Just(10)],
    ) {
        let wheel = transcript(false, &tuples, &steps, tick_ms);
        let heap = transcript(true, &tuples, &steps, tick_ms);
        prop_assert_eq!(wheel, heap);
    }
}
