//! Property tests for [`TupleBuffer`] occupancy accounting under
//! bounded and overrunning feeds: whatever sequence of writes and pops
//! the daemon and modulator interleave, the counters must keep the
//! invariant `total_written − total_popped == len ≤ capacity`, the peak
//! must be a true high-water mark, and every tuple offered must be
//! accounted as either written or rejected.

use modulate::{TupleBuffer, TupleFeed};
use proptest::prelude::*;
use tracekit::{QualityTuple, TupleSink};

fn tuple(d_ms: u64) -> QualityTuple {
    QualityTuple {
        duration_ns: d_ms * 1_000_000,
        latency_ns: 1_000_000,
        vb_ns_per_byte: 4000.0,
        vr_ns_per_byte: 0.0,
        loss: 0.0,
    }
}

/// One step of the interleaving: write a batch of `0..=8` tuples or pop
/// `0..=4` times.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(usize),
    Pop(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..=8).prop_map(Op::Write),
        (0usize..=4).prop_map(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation + bounds for arbitrary write/pop interleavings,
    /// including feeds much larger than the buffer (overrun).
    #[test]
    fn occupancy_accounting(
        capacity in 1usize..16,
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let buf = TupleBuffer::new(capacity);
        let mut offered = 0u64;
        let mut model_len = 0usize;
        let mut model_peak = 0usize;

        for op in ops {
            match op {
                Op::Write(n) => {
                    let batch = vec![tuple(1); n];
                    let taken = buf.write(&batch);
                    offered += n as u64;
                    // The buffer takes exactly what fits, never more.
                    prop_assert_eq!(taken, n.min(capacity - model_len));
                    model_len += taken;
                    model_peak = model_peak.max(model_len);
                }
                Op::Pop(n) => {
                    for _ in 0..n {
                        let got = buf.pop();
                        prop_assert_eq!(got.is_some(), model_len > 0);
                        model_len = model_len.saturating_sub(1);
                    }
                }
            }
            // Core invariant after every step.
            prop_assert_eq!(
                buf.total_written() - buf.total_popped(),
                buf.len() as u64
            );
            prop_assert!(buf.len() <= buf.capacity());
            prop_assert_eq!(buf.len(), model_len);
            prop_assert_eq!(buf.peak_occupancy(), model_peak);
            prop_assert!(buf.peak_occupancy() <= buf.capacity());
            // Every offered tuple is either written or rejected.
            prop_assert_eq!(buf.total_written() + buf.rejected(), offered);
        }
    }

    /// The user-space feed spills overflow and conserves tuples:
    /// everything fed is in the kernel buffer, already popped, or in
    /// the backlog — nothing is lost even when the feed overruns the
    /// buffer many times over.
    #[test]
    fn feed_conserves_tuples(
        capacity in 1usize..8,
        feeds in proptest::collection::vec(0usize..6, 1..60),
        pops in proptest::collection::vec(0usize..6, 1..60),
    ) {
        let buf = TupleBuffer::new(capacity);
        let mut feed = TupleFeed::new(buf.clone());
        let mut fed = 0u64;
        for (push, pop) in feeds.iter().zip(pops.iter().chain(std::iter::repeat(&0))) {
            for _ in 0..*push {
                feed.push_tuple(tuple(1));
                fed += 1;
            }
            for _ in 0..*pop {
                buf.pop();
            }
            feed.pump();
            prop_assert_eq!(feed.fed(), fed);
            // Conservation: fed == popped + buffered + backlog.
            prop_assert_eq!(
                fed,
                buf.total_popped() + buf.len() as u64 + feed.backlog() as u64
            );
            prop_assert!(feed.peak_backlog() >= feed.backlog());
            // The feed never over- or under-fills the kernel buffer.
            prop_assert!(buf.len() <= capacity);
            if feed.backlog() > 0 {
                // Backlog only persists while the buffer is full.
                prop_assert_eq!(buf.len(), capacity);
            }
        }
    }
}
