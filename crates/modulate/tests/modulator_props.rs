//! Property tests for the modulation layer's queueing invariants.

use modulate::{Modulator, TickClock};
use netsim::{SimDuration, SimRng, SimTime};
use netstack::{Direction, LinkShim, ShimVerdict};
use proptest::prelude::*;
use tracekit::{QualityTuple, ReplayTrace};

fn arb_tuple() -> impl Strategy<Value = QualityTuple> {
    (
        100_000_000u64..5_000_000_000,
        0u64..100_000_000,
        0.0f64..20_000.0,
        0.0f64..5_000.0,
        0.0f64..0.5,
    )
        .prop_map(|(d, lat, vb, vr, loss)| QualityTuple {
            duration_ns: d,
            latency_ns: lat,
            vb_ns_per_byte: vb,
            vr_ns_per_byte: vr,
            loss,
        })
}

#[derive(Debug, Clone, Copy)]
struct Offer {
    gap_us: u64,
    size: usize,
    inbound: bool,
}

fn arb_offer() -> impl Strategy<Value = Offer> {
    (0u64..50_000, 40usize..1514, any::<bool>()).prop_map(|(gap_us, size, inbound)| Offer {
        gap_us,
        size,
        inbound,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every offered packet is exactly one of
    /// {passed immediately, released later, dropped}. Releases preserve
    /// per-direction FIFO order (tracked by a size-encoded sequence).
    #[test]
    fn conservation_and_fifo(
        tuples in proptest::collection::vec(arb_tuple(), 1..6),
        offers in proptest::collection::vec(arb_offer(), 1..80),
        tick_ms in prop_oneof![Just(0u64), Just(1), Just(10)],
    ) {
        let replay = ReplayTrace { source: "prop".into(), tuples };
        let clock = if tick_ms == 0 {
            TickClock::ideal()
        } else {
            TickClock::with_resolution(SimDuration::from_millis(tick_ms))
        };
        let mut m = Modulator::from_replay(replay).with_clock(clock);
        let mut rng = SimRng::seed_from_u64(7);
        m.begin(SimTime::ZERO);

        let mut now = SimTime::ZERO;
        let mut immediate = 0u64;
        let mut released = 0u64;
        // Track per-direction emission order via payload length stamps.
        let mut out_seq_expected: Vec<usize> = Vec::new();
        let mut in_seq_expected: Vec<usize> = Vec::new();
        let mut out_seen = 0usize;
        let mut in_seen = 0usize;

        let offered = offers.len() as u64;
        for (i, o) in offers.iter().enumerate() {
            now += SimDuration::from_micros(o.gap_us);
            // Collect anything due before this offer.
            for rel in m.collect_due(now, &mut rng) {
                released += 1;
                match rel.dir {
                    Direction::Outbound => {
                        prop_assert_eq!(rel.bytes.len(), out_seq_expected[out_seen]);
                        out_seen += 1;
                    }
                    Direction::Inbound => {
                        prop_assert_eq!(rel.bytes.len(), in_seq_expected[in_seen]);
                        in_seen += 1;
                    }
                }
            }
            let dir = if o.inbound { Direction::Inbound } else { Direction::Outbound };
            // Unique-ish size stamp: base size + index ensures FIFO check
            // is meaningful.
            let size = o.size + (i % 7);
            match m.offer(dir, vec![0u8; size], now, &mut rng) {
                ShimVerdict::Pass(bytes) => {
                    prop_assert_eq!(bytes.len(), size);
                    immediate += 1;
                }
                ShimVerdict::Drop => {}
                ShimVerdict::Hold => match dir {
                    Direction::Outbound => out_seq_expected.push(size),
                    Direction::Inbound => in_seq_expected.push(size),
                },
            }
        }
        // Drain everything.
        for rel in m.collect_due(SimTime::MAX, &mut rng) {
            released += 1;
            match rel.dir {
                Direction::Outbound => {
                    prop_assert_eq!(rel.bytes.len(), out_seq_expected[out_seen]);
                    out_seen += 1;
                }
                Direction::Inbound => {
                    prop_assert_eq!(rel.bytes.len(), in_seq_expected[in_seen]);
                    in_seen += 1;
                }
            }
        }
        let stats = m.stats();
        prop_assert_eq!(stats.offered, offered);
        prop_assert_eq!(stats.immediate, immediate);
        prop_assert_eq!(stats.held, released); // every held packet was released
        prop_assert_eq!(stats.immediate + stats.held + stats.dropped + stats.unmodulated, offered);
        prop_assert!(m.next_wakeup().is_none(), "packets left behind");
        prop_assert_eq!(out_seen, out_seq_expected.len());
        prop_assert_eq!(in_seen, in_seq_expected.len());
    }

    /// Hold deadlines are never before the offer time, and with an ideal
    /// clock the delay is at least the tuple's fixed latency.
    #[test]
    fn delays_respect_model_floor(
        lat_ms in 1u64..200,
        vb in 0.0f64..10_000.0,
        sizes in proptest::collection::vec(40usize..1514, 1..30),
    ) {
        let replay = ReplayTrace::constant(
            "floor",
            SimDuration::from_secs(3600),
            SimDuration::from_millis(lat_ms),
            vb,
            0.0,
            0.0,
        );
        let mut m = Modulator::from_replay(replay).with_clock(TickClock::ideal());
        let mut rng = SimRng::seed_from_u64(3);
        m.begin(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for (i, &s) in sizes.iter().enumerate() {
            now += SimDuration::from_millis(i as u64);
            m.offer(Direction::Outbound, vec![0u8; s], now, &mut rng);
            let due = m.next_wakeup().expect("held");
            prop_assert!(due >= now + SimDuration::from_millis(lat_ms));
            // Drain so next_wakeup refers to the most recent packet.
            m.collect_due(SimTime::MAX, &mut rng);
        }
    }
}
