//! Delay compensation (§3.3 "Delay Compensation", Figure 1).
//!
//! Because the unified delay queue sits at an endpoint, inbound traffic
//! additionally pays the modulating (physical) network's own bottleneck
//! cost, making inbound throughput lower than outbound under identical
//! parameters. The fix: measure the modulating network once with the
//! same ping/distill tools, take the long-term average of its bottleneck
//! per-byte cost `Vb`, and subtract that from the replay trace's `Vb`
//! for inbound packets.
//!
//! The measurement is *independent of the network being emulated* — it
//! characterizes only the wired testbed, so it need be done only once.

use tracekit::ReplayTrace;

/// Extract the compensation term (mean `Vb`, ns/byte) from a replay
/// trace measured on the modulating network.
pub fn compensation_from_replay(measured: &ReplayTrace) -> f64 {
    measured.mean_vb()
}

/// Theoretical per-byte bottleneck cost of an ideal link of the given
/// bandwidth (ns/byte) — a sanity reference for the measured value.
pub fn link_vb_ns_per_byte(bandwidth_bps: u64) -> f64 {
    if bandwidth_bps == 0 {
        return 0.0;
    }
    8e9 / bandwidth_bps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    #[test]
    fn ethernet_reference_cost() {
        // 10 Mb/s Ethernet: 0.8 µs per byte.
        assert!((link_vb_ns_per_byte(10_000_000) - 800.0).abs() < 1e-9);
        assert_eq!(link_vb_ns_per_byte(0), 0.0);
    }

    #[test]
    fn compensation_is_mean_vb() {
        let r = ReplayTrace::constant(
            "ethernet measurement",
            SimDuration::from_secs(60),
            SimDuration::from_micros(100),
            812.0,
            10.0,
            0.0,
        );
        assert!((compensation_from_replay(&r) - 812.0).abs() < 1e-9);
    }
}
