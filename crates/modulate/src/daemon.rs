//! The modulation replay daemon (§3.3): a user-level process that feeds
//! quality tuples from a replay-trace file into a fixed-size in-kernel
//! buffer. When the buffer is full the daemon waits; it may loop over
//! the file until interrupted.

use netsim::SimDuration;
use netstack::{App, AppEvent, HostApi};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use tracekit::{QualityTuple, ReplayTrace, TupleSink};

/// Occupancy bookkeeping shared with the queue itself, so every
/// write/pop updates it under the same lock.
#[derive(Debug, Default)]
struct BufState {
    q: VecDeque<QualityTuple>,
    peak: usize,
    total_in: u64,
    total_out: u64,
    rejected: u64,
    closed: bool,
}

/// The bounded in-kernel tuple buffer shared between the daemon (writer)
/// and the modulation layer (reader).
///
/// Besides the queue itself the buffer keeps occupancy accounting —
/// peak occupancy, total tuples written/popped, and writes rejected for
/// lack of room — maintaining the invariant
/// `total_written − total_popped == len ≤ capacity`.
#[derive(Debug, Clone)]
pub struct TupleBuffer {
    inner: Arc<Mutex<BufState>>,
    capacity: usize,
}

impl TupleBuffer {
    /// Buffer holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tuple buffer needs capacity");
        TupleBuffer {
            inner: Arc::new(Mutex::new(BufState::default())),
            capacity,
        }
    }

    /// Write as many of `tuples` as fit; returns how many were taken.
    pub fn write(&self, tuples: &[QualityTuple]) -> usize {
        let mut st = self.inner.lock();
        let room = self.capacity.saturating_sub(st.q.len());
        let n = room.min(tuples.len());
        st.q.extend(tuples[..n].iter().copied());
        st.total_in += n as u64;
        st.rejected += (tuples.len() - n) as u64;
        let depth = st.q.len();
        st.peak = st.peak.max(depth);
        n
    }

    /// Reader side: take the next tuple.
    pub fn pop(&self) -> Option<QualityTuple> {
        let mut st = self.inner.lock();
        let t = st.q.pop_front();
        if t.is_some() {
            st.total_out += 1;
        }
        t
    }

    /// Tuples currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().q.is_empty()
    }

    /// Maximum tuples the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of buffered tuples.
    pub fn peak_occupancy(&self) -> usize {
        self.inner.lock().peak
    }

    /// Total tuples accepted by [`write`](TupleBuffer::write).
    pub fn total_written(&self) -> u64 {
        self.inner.lock().total_in
    }

    /// Total tuples handed out by [`pop`](TupleBuffer::pop).
    pub fn total_popped(&self) -> u64 {
        self.inner.lock().total_out
    }

    /// Tuples offered to [`write`](TupleBuffer::write) that did not fit.
    pub fn rejected(&self) -> u64 {
        self.inner.lock().rejected
    }

    /// Writer side: declare that no more tuples will ever be written.
    ///
    /// Once closed, an empty buffer means *end of trace*; while open,
    /// an empty buffer only means *starved right now* — the reader
    /// (the modulation layer) treats the two very differently (final
    /// hold vs. backoff-and-retry with a `degraded` mark).
    pub fn close(&self) {
        self.inner.lock().closed = true;
    }

    /// True once the writer has declared end-of-trace.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

/// Live-mode feeder: a [`TupleSink`] that accepts tuples straight from
/// the incremental distiller and forwards them into the bounded
/// [`TupleBuffer`], buffering overflow in user space when the kernel
/// buffer is full (the "daemon blocks" backpressure of §3.3, without a
/// replay file in between). Call [`pump`](TupleFeed::pump) periodically
/// — e.g. once per lockstep slice — to move backlog into freed space.
#[derive(Debug)]
pub struct TupleFeed {
    buf: TupleBuffer,
    overflow: VecDeque<QualityTuple>,
    fed: u64,
    peak_backlog: usize,
    closing: bool,
    paused: bool,
}

impl TupleFeed {
    /// A feed writing into `buf`.
    pub fn new(buf: TupleBuffer) -> Self {
        TupleFeed {
            buf,
            overflow: VecDeque::new(),
            fed: 0,
            peak_backlog: 0,
            closing: false,
            paused: false,
        }
    }

    /// Move as much backlog as fits into the kernel buffer. Returns the
    /// number of tuples moved.
    ///
    /// A paused feed ([`set_paused`](TupleFeed::set_paused)) moves
    /// nothing: the backlog accumulates in user space and the kernel
    /// buffer drains, which is exactly the starvation a stalled feeder
    /// process produces.
    pub fn pump(&mut self) -> usize {
        if self.paused {
            return 0;
        }
        let mut moved = 0;
        while let Some(t) = self.overflow.front().copied() {
            if self.buf.write(std::slice::from_ref(&t)) == 0 {
                break;
            }
            self.overflow.pop_front();
            moved += 1;
        }
        // End-of-trace propagates only once the backlog has drained:
        // the buffer must not look closed while tuples are still on
        // their way in.
        if self.closing && self.overflow.is_empty() {
            self.buf.close();
        }
        moved
    }

    /// Declare that the distiller has emitted its last tuple. The
    /// underlying buffer is closed as soon as the remaining backlog
    /// has been pumped in.
    pub fn close(&mut self) {
        self.closing = true;
        self.pump();
    }

    /// Pause or resume the feed. While paused, tuples still arrive in
    /// the user-space backlog but none reach the kernel buffer — the
    /// fault-injection hook for a stalled feeder. Resuming pumps
    /// immediately.
    pub fn set_paused(&mut self, on: bool) {
        self.paused = on;
        if !on {
            self.pump();
        }
    }

    /// True while the feed is paused.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Total tuples accepted from the distiller so far.
    pub fn fed(&self) -> u64 {
        self.fed
    }

    /// Tuples waiting in user space for kernel-buffer room.
    pub fn backlog(&self) -> usize {
        self.overflow.len()
    }

    /// High-water mark of the user-space backlog.
    pub fn peak_backlog(&self) -> usize {
        self.peak_backlog
    }

    /// The shared kernel buffer this feed writes into.
    pub fn buffer(&self) -> &TupleBuffer {
        &self.buf
    }
}

impl TupleSink for TupleFeed {
    fn push_tuple(&mut self, tuple: QualityTuple) {
        self.fed += 1;
        self.overflow.push_back(tuple);
        self.pump();
        self.peak_backlog = self.peak_backlog.max(self.overflow.len());
    }
}

const FEED_TIMER: u32 = 0xFEED;

/// The user-level feeder process, run as an app on the modulated host.
pub struct ModulationDaemon {
    buf: TupleBuffer,
    replay: ReplayTrace,
    pos: usize,
    /// Loop over the trace until the experiment ends (vs. one pass).
    pub loop_trace: bool,
    /// Refill cadence.
    pub interval: SimDuration,
    /// Total tuples fed (diagnostics).
    pub fed: u64,
}

impl ModulationDaemon {
    /// Daemon feeding `replay` into `buf`.
    pub fn new(buf: TupleBuffer, replay: ReplayTrace) -> Self {
        ModulationDaemon {
            buf,
            replay,
            pos: 0,
            loop_trace: true,
            interval: SimDuration::from_millis(250),
            fed: 0,
        }
    }

    fn refill(&mut self) {
        loop {
            if self.replay.tuples.is_empty() {
                self.buf.close(); // nothing will ever arrive
                return;
            }
            if self.pos >= self.replay.tuples.len() {
                if !self.loop_trace {
                    self.buf.close(); // one pass done: genuine end of trace
                    return;
                }
                self.pos = 0;
            }
            let n = self.buf.write(&self.replay.tuples[self.pos..]);
            self.pos += n;
            self.fed += n as u64;
            if n == 0 {
                return; // buffer full: "the daemon blocks"
            }
        }
    }
}

impl App for ModulationDaemon {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                self.refill();
                api.set_timer(self.interval, FEED_TIMER);
            }
            AppEvent::Timer { token } if token == FEED_TIMER => {
                self.refill();
                api.set_timer(self.interval, FEED_TIMER);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "modulation-daemon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(d_ms: u64) -> QualityTuple {
        QualityTuple {
            duration_ns: d_ms * 1_000_000,
            latency_ns: 1_000_000,
            vb_ns_per_byte: 4000.0,
            vr_ns_per_byte: 0.0,
            loss: 0.0,
        }
    }

    #[test]
    fn bounded_writes() {
        let buf = TupleBuffer::new(3);
        let ts = vec![tuple(1); 5];
        assert_eq!(buf.write(&ts), 3);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.write(&ts), 0);
        assert!(buf.pop().is_some(), "full buffer must yield a tuple");
        assert_eq!(buf.write(&ts), 1);
    }

    #[test]
    fn daemon_refills_and_loops() {
        let buf = TupleBuffer::new(4);
        let replay = ReplayTrace {
            source: "t".into(),
            tuples: vec![tuple(1), tuple(2), tuple(3)],
        };
        let mut d = ModulationDaemon::new(buf.clone(), replay);
        d.refill();
        assert_eq!(buf.len(), 4); // 3 + looped first
                                  // Drain two, refill: loops through the file again.
        buf.pop();
        buf.pop();
        d.refill();
        assert_eq!(buf.len(), 4);
        assert!(d.fed >= 6);
    }

    #[test]
    fn one_pass_mode_stops_at_end() {
        let buf = TupleBuffer::new(10);
        let replay = ReplayTrace {
            source: "t".into(),
            tuples: vec![tuple(1), tuple(2)],
        };
        let mut d = ModulationDaemon::new(buf.clone(), replay);
        d.loop_trace = false;
        d.refill();
        d.refill();
        assert_eq!(buf.len(), 2);
        assert_eq!(d.fed, 2);
    }

    #[test]
    fn feed_spills_to_overflow_and_pumps() {
        let buf = TupleBuffer::new(2);
        let mut feed = TupleFeed::new(buf.clone());
        for _ in 0..5 {
            feed.push_tuple(tuple(1));
        }
        assert_eq!(feed.fed(), 5);
        assert_eq!(buf.len(), 2);
        assert_eq!(feed.backlog(), 3);
        // The modulator consumes; pumping moves backlog in.
        buf.pop();
        buf.pop();
        assert_eq!(feed.pump(), 2);
        assert_eq!(feed.backlog(), 1);
        assert_eq!(feed.peak_backlog(), 3);
    }

    #[test]
    fn paused_feed_starves_the_buffer() {
        let buf = TupleBuffer::new(4);
        let mut feed = TupleFeed::new(buf.clone());
        feed.set_paused(true);
        for _ in 0..3 {
            feed.push_tuple(tuple(1));
        }
        assert!(buf.is_empty(), "paused feed must not reach the buffer");
        assert_eq!(feed.backlog(), 3);
        // Closing while paused must not mark the buffer ended: tuples
        // are still pending in user space.
        feed.close();
        assert!(!buf.is_closed());
        feed.set_paused(false);
        assert_eq!(buf.len(), 3);
        assert!(buf.is_closed(), "backlog drained after resume => EOF");
    }

    #[test]
    fn empty_replay_is_harmless() {
        let buf = TupleBuffer::new(4);
        let mut d = ModulationDaemon::new(buf.clone(), ReplayTrace::new("e"));
        d.refill();
        assert!(buf.is_empty());
    }
}
