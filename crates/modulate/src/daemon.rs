//! The modulation replay daemon (§3.3): a user-level process that feeds
//! quality tuples from a replay-trace file into a fixed-size in-kernel
//! buffer. When the buffer is full the daemon waits; it may loop over
//! the file until interrupted.

use netsim::SimDuration;
use netstack::{App, AppEvent, HostApi};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use tracekit::{QualityTuple, ReplayTrace};

/// The bounded in-kernel tuple buffer shared between the daemon (writer)
/// and the modulation layer (reader).
#[derive(Debug, Clone)]
pub struct TupleBuffer {
    inner: Arc<Mutex<VecDeque<QualityTuple>>>,
    capacity: usize,
}

impl TupleBuffer {
    /// Buffer holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tuple buffer needs capacity");
        TupleBuffer {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            capacity,
        }
    }

    /// Write as many of `tuples` as fit; returns how many were taken.
    pub fn write(&self, tuples: &[QualityTuple]) -> usize {
        let mut q = self.inner.lock();
        let room = self.capacity.saturating_sub(q.len());
        let n = room.min(tuples.len());
        q.extend(tuples[..n].iter().copied());
        n
    }

    /// Reader side: take the next tuple.
    pub fn pop(&self) -> Option<QualityTuple> {
        self.inner.lock().pop_front()
    }

    /// Tuples currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

const FEED_TIMER: u32 = 0xFEED;

/// The user-level feeder process, run as an app on the modulated host.
pub struct ModulationDaemon {
    buf: TupleBuffer,
    replay: ReplayTrace,
    pos: usize,
    /// Loop over the trace until the experiment ends (vs. one pass).
    pub loop_trace: bool,
    /// Refill cadence.
    pub interval: SimDuration,
    /// Total tuples fed (diagnostics).
    pub fed: u64,
}

impl ModulationDaemon {
    /// Daemon feeding `replay` into `buf`.
    pub fn new(buf: TupleBuffer, replay: ReplayTrace) -> Self {
        ModulationDaemon {
            buf,
            replay,
            pos: 0,
            loop_trace: true,
            interval: SimDuration::from_millis(250),
            fed: 0,
        }
    }

    fn refill(&mut self) {
        loop {
            if self.replay.tuples.is_empty() {
                return;
            }
            if self.pos >= self.replay.tuples.len() {
                if !self.loop_trace {
                    return;
                }
                self.pos = 0;
            }
            let n = self.buf.write(&self.replay.tuples[self.pos..]);
            self.pos += n;
            self.fed += n as u64;
            if n == 0 {
                return; // buffer full: "the daemon blocks"
            }
        }
    }
}

impl App for ModulationDaemon {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                self.refill();
                api.set_timer(self.interval, FEED_TIMER);
            }
            AppEvent::Timer { token } if token == FEED_TIMER => {
                self.refill();
                api.set_timer(self.interval, FEED_TIMER);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "modulation-daemon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(d_ms: u64) -> QualityTuple {
        QualityTuple {
            duration_ns: d_ms * 1_000_000,
            latency_ns: 1_000_000,
            vb_ns_per_byte: 4000.0,
            vr_ns_per_byte: 0.0,
            loss: 0.0,
        }
    }

    #[test]
    fn bounded_writes() {
        let buf = TupleBuffer::new(3);
        let ts = vec![tuple(1); 5];
        assert_eq!(buf.write(&ts), 3);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.write(&ts), 0);
        buf.pop().unwrap();
        assert_eq!(buf.write(&ts), 1);
    }

    #[test]
    fn daemon_refills_and_loops() {
        let buf = TupleBuffer::new(4);
        let replay = ReplayTrace {
            source: "t".into(),
            tuples: vec![tuple(1), tuple(2), tuple(3)],
        };
        let mut d = ModulationDaemon::new(buf.clone(), replay);
        d.refill();
        assert_eq!(buf.len(), 4); // 3 + looped first
                                  // Drain two, refill: loops through the file again.
        buf.pop();
        buf.pop();
        d.refill();
        assert_eq!(buf.len(), 4);
        assert!(d.fed >= 6);
    }

    #[test]
    fn one_pass_mode_stops_at_end() {
        let buf = TupleBuffer::new(10);
        let replay = ReplayTrace {
            source: "t".into(),
            tuples: vec![tuple(1), tuple(2)],
        };
        let mut d = ModulationDaemon::new(buf.clone(), replay);
        d.loop_trace = false;
        d.refill();
        d.refill();
        assert_eq!(buf.len(), 2);
        assert_eq!(d.fed, 2);
    }

    #[test]
    fn empty_replay_is_harmless() {
        let buf = TupleBuffer::new(4);
        let mut d = ModulationDaemon::new(buf.clone(), ReplayTrace::new("e"));
        d.refill();
        assert!(buf.is_empty());
    }
}
