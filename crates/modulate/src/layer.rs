//! The in-kernel modulation layer (§3.3): a [`LinkShim`] placed between
//! IP and the device that delays and drops every inbound and outbound
//! packet according to the replay trace's quality tuples.
//!
//! Model realization, per the paper:
//!
//! * a **single unified delay queue** — outbound and inbound packets
//!   share one bottleneck, so they interfere with one another;
//! * per-packet delay `F + s·(Vb + Vr)`, with the bottleneck term
//!   (`s·Vb`) serialized: a packet may queue behind the previous
//!   packet's bottleneck departure;
//! * random **drop with probability L applied after the bottleneck**
//!   (lost packets still consume bottleneck time);
//! * departures quantized to the host's clock resolution
//!   ([`TickClock`]);
//! * **delay compensation**: the modulating network's measured mean
//!   `Vb` is subtracted from the replay `Vb` for inbound packets.

use crate::clock::{Quantized, TickClock};
use crate::daemon::TupleBuffer;
use netsim::wheel::{CalendarQueue, WheelStats};
use netsim::{SimDuration, SimRng, SimTime};
use netstack::{Direction, LinkShim, ShimRelease, ShimVerdict};
use obs::flight::{frame_key, FlightHandle, Stage};
use obs::{FidelityCollector, FidelityReport};
use std::collections::BinaryHeap;
use tracekit::{QualityTuple, ReplayTrace};

/// First backoff window after the live tuple buffer runs dry
/// mid-stream (doubles per consecutive empty poll).
const STARVE_BACKOFF_INITIAL_NS: u64 = 250_000_000;
/// Backoff cap. Reaching it means the feed starved for a sustained
/// stretch (several seconds), which marks the run degraded.
const STARVE_BACKOFF_MAX_NS: u64 = 8_000_000_000;

/// Signed difference `a − b` in milliseconds.
fn signed_ms(a: SimTime, b: SimTime) -> f64 {
    if a >= b {
        a.since(b).as_secs_f64() * 1e3
    } else {
        -(b.since(a).as_secs_f64() * 1e3)
    }
}

/// Where the modulator gets its quality tuples.
enum TupleSource {
    /// Whole replay trace held in memory.
    Trace {
        replay: ReplayTrace,
        start: Option<SimTime>,
        looping: bool,
    },
    /// Streamed through the bounded kernel buffer by the daemon.
    Buffer {
        buf: TupleBuffer,
        current: Option<QualityTuple>,
        until: SimTime,
        /// Tuples consumed so far; `popped − 1` is the emission index
        /// of `current` (the distiller counts the same way, so flight
        /// records from both stages meet on the same tuple id).
        popped: u64,
        /// In a starvation backoff window: the buffer was open but
        /// empty when `current` expired, so the stale tuple is being
        /// replayed until the next poll.
        starved: bool,
        /// Width of the next backoff window (ns), doubling per
        /// consecutive empty poll up to [`STARVE_BACKOFF_MAX_NS`].
        backoff_ns: u64,
    },
    /// Per-direction replay traces from one-way (synchronized-clocks)
    /// distillation: outbound packets follow `up`, inbound follow
    /// `down`. Clamped playback, shared start.
    Asymmetric {
        up: ReplayTrace,
        down: ReplayTrace,
        start: Option<SimTime>,
    },
}

/// Modulation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModStats {
    /// Packets offered to the layer.
    pub offered: u64,
    /// Packets released with no hold (sub-half-tick delay).
    pub immediate: u64,
    /// Packets held for later release.
    pub held: u64,
    /// Packets dropped by the loss process.
    pub dropped: u64,
    /// Packets passed through because no tuple was available yet.
    pub unmodulated: u64,
}

#[derive(Debug)]
struct HeldPkt {
    due: SimTime,
    /// The model's intended (clamped, unquantized) release time — kept
    /// for the fidelity self-check's delay-error measurement.
    ideal_due: SimTime,
    seq: u64,
    dir: Direction,
    bytes: Vec<u8>,
    /// When the packet entered the modulation layer (flight recording).
    offered: SimTime,
    /// Flight-recorder content key, when a recorder is attached.
    key: Option<u64>,
    /// Tuple emission index governing this packet's delay decision.
    tuple: Option<u64>,
}

impl PartialEq for HeldPkt {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for HeldPkt {}
impl PartialOrd for HeldPkt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeldPkt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl netsim::wheel::WheelItem for HeldPkt {
    fn due_ns(&self) -> u64 {
        self.due.as_nanos()
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Hold-queue bucket width: the scheduling clock's tick (every quantized
/// release lands on a tick boundary, so one bucket per tick), or ~1 ms
/// for the ideal clock.
fn hold_tick_ns(clock: &TickClock) -> u64 {
    match clock.resolution.as_nanos() {
        0 => 1 << 20,
        r => r,
    }
}

/// The modulator's delay queue. The calendar queue is the production
/// scheduler; the binary heap it replaced is retained as the reference
/// implementation — both pop in ascending `(due, seq)` order, and the
/// equivalence tests in `tests/wheel_vs_heap.rs` hold them to
/// bit-identical schedules.
enum HoldQueue {
    Wheel(Box<CalendarQueue<HeldPkt>>),
    Heap(BinaryHeap<HeldPkt>),
}

impl HoldQueue {
    fn len(&self) -> usize {
        match self {
            HoldQueue::Wheel(q) => q.len(),
            HoldQueue::Heap(h) => h.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, pkt: HeldPkt) {
        match self {
            HoldQueue::Wheel(q) => q.push(pkt),
            HoldQueue::Heap(h) => h.push(pkt),
        }
    }

    fn next_due(&self) -> Option<SimTime> {
        match self {
            HoldQueue::Wheel(q) => q.next_due_ns().map(SimTime::from_nanos),
            HoldQueue::Heap(h) => h.peek().map(|p| p.due),
        }
    }

    /// Append every packet due at or before `now` to `out`, ascending
    /// `(due, seq)`.
    fn drain_due_into(&mut self, now: SimTime, out: &mut Vec<HeldPkt>) {
        match self {
            HoldQueue::Wheel(q) => q.drain_due_into(now.as_nanos(), out),
            HoldQueue::Heap(h) => {
                // Pop-first rather than peek-then-pop: the not-yet-due
                // head is pushed back, so there is no panicking unwrap
                // on the hot path.
                while let Some(p) = h.pop() {
                    if p.due > now {
                        h.push(p);
                        break;
                    }
                    out.push(p);
                }
            }
        }
    }
}

/// A cached `params_at` result for replay-backed sources: `tuple` is in
/// effect for elapsed times in `[from_ns, until_ns)`.
#[derive(Clone, Copy)]
struct TupleWindow {
    tuple: QualityTuple,
    from_ns: u64,
    until_ns: u64,
}

/// The modulation layer.
///
/// ```
/// use modulate::{Modulator, TickClock};
/// use netstack::{Direction, LinkShim, ShimVerdict};
/// use netsim::{SimDuration, SimRng, SimTime};
/// use tracekit::ReplayTrace;
///
/// // Emulate a 2 Mb/s, 5 ms network with an ideal clock.
/// let replay = ReplayTrace::constant(
///     "demo", SimDuration::from_secs(60),
///     SimDuration::from_millis(5), 4000.0, 0.0, 0.0,
/// );
/// let mut m = Modulator::from_replay(replay).with_clock(TickClock::ideal());
/// let mut rng = SimRng::seed_from_u64(1);
/// m.begin(SimTime::ZERO);
/// // A 1000-byte packet: 4 ms bottleneck service + 5 ms latency.
/// let v = m.offer(Direction::Outbound, vec![0; 1000], SimTime::ZERO, &mut rng);
/// assert!(matches!(v, ShimVerdict::Hold));
/// assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(9)));
/// ```
pub struct Modulator {
    source: TupleSource,
    clock: TickClock,
    /// Mean bottleneck per-byte cost of the modulating (physical)
    /// network, in ns/byte, subtracted from inbound `Vb`.
    compensation_vb: f64,
    bottleneck_free: SimTime,
    held: HoldQueue,
    /// Latest release time per direction ([out, in]): releases are kept
    /// monotone so a tuple transition to lower latency cannot reorder
    /// packets within a direction (a real serial path never would).
    last_due: [SimTime; 2],
    seq: u64,
    stats: ModStats,
    fidelity: FidelityCollector,
    flight: Option<FlightHandle>,
    /// Cached governing-tuple window per direction ([out, in]) for
    /// replay-backed sources, so the hot path does one interval scan
    /// per tuple transition instead of one per packet. (The buffer
    /// source is already incremental and bypasses this.)
    window: [Option<TupleWindow>; 2],
    /// Reused drain buffer for `collect_due_into`.
    release_scratch: Vec<HeldPkt>,
}

impl Modulator {
    /// Modulator playing a whole in-memory replay trace. Playback starts
    /// at the first packet offered, or at [`begin`](Modulator::begin).
    /// When the trace runs out the final tuple stays in effect (matching
    /// a mobile user who has stopped moving); use
    /// [`looping`](Modulator::looping) to replay the file until
    /// interrupted instead, as the paper's daemon optionally does.
    pub fn from_replay(replay: ReplayTrace) -> Self {
        Modulator::with_source(TupleSource::Trace {
            replay,
            start: None,
            looping: false,
        })
    }

    fn with_source(source: TupleSource) -> Self {
        let clock = TickClock::netbsd();
        Modulator {
            source,
            held: HoldQueue::Wheel(Box::new(CalendarQueue::new(hold_tick_ns(&clock)))),
            clock,
            compensation_vb: 0.0,
            bottleneck_free: SimTime::ZERO,
            last_due: [SimTime::ZERO; 2],
            seq: 0,
            stats: ModStats::default(),
            fidelity: FidelityCollector::new(),
            flight: None,
            window: [None; 2],
            release_scratch: Vec::new(),
        }
    }

    /// Modulator playing per-direction replay traces (the
    /// synchronized-clocks extension): outbound traffic follows the
    /// uplink trace, inbound the downlink trace. No symmetry assumption
    /// and no compensation needed.
    pub fn from_asymmetric(up: ReplayTrace, down: ReplayTrace) -> Self {
        Modulator::with_source(TupleSource::Asymmetric {
            up,
            down,
            start: None,
        })
    }

    /// Modulator reading tuples from the daemon-fed kernel buffer.
    pub fn from_buffer(buf: TupleBuffer) -> Self {
        Modulator::with_source(TupleSource::Buffer {
            buf,
            current: None,
            until: SimTime::ZERO,
            popped: 0,
            starved: false,
            backoff_ns: STARVE_BACKOFF_INITIAL_NS,
        })
    }

    /// Use a specific scheduling clock (default: the 10 ms NetBSD tick).
    pub fn with_clock(mut self, clock: TickClock) -> Self {
        self.clock = clock;
        // Re-bucket the calendar queue to the new tick, preserving any
        // custom wheel width (construction time only: the queue is
        // still empty).
        if let HoldQueue::Wheel(q) = &self.held {
            if q.is_empty() {
                self.held = HoldQueue::Wheel(Box::new(CalendarQueue::with_slots(
                    hold_tick_ns(&self.clock),
                    q.slot_count(),
                )));
            }
        }
        self
    }

    /// Use a narrow delay-queue wheel of `slot_count` slots (default:
    /// [`netsim::wheel::SLOTS`] = 4096). Fleet runs give each of their
    /// thousands of per-client modulators a 64–256 slot wheel — the
    /// live window still covers hundreds of milliseconds at the 10 ms
    /// tick, far past any realistic hold, while the footprint drops
    /// from ~96 KiB to ~1.5–6 KiB per client; anything beyond the
    /// horizon rides the overflow stage with identical release order.
    /// Construction-time only: panics if packets are already held.
    pub fn with_wheel_slots(mut self, slot_count: usize) -> Self {
        assert!(
            self.held.is_empty(),
            "resize the wheel before offering packets"
        );
        self.held = HoldQueue::Wheel(Box::new(CalendarQueue::with_slots(
            hold_tick_ns(&self.clock),
            slot_count,
        )));
        self
    }

    /// Schedule holds on the original binary heap instead of the
    /// calendar queue. The two produce bit-identical release schedules;
    /// the heap survives as the reference implementation the
    /// equivalence proptests compare against.
    pub fn with_heap_scheduler(mut self) -> Self {
        assert!(
            self.held.is_empty(),
            "switch schedulers before offering packets"
        );
        self.held = HoldQueue::Heap(BinaryHeap::new());
        self
    }

    /// Attach a flight recorder: every intended-vs-actual delay
    /// decision — pass-throughs, drops, drift clamps, immediate
    /// releases, and hold spans — is recorded against the governing
    /// tuple's emission index.
    pub fn with_flight(mut self, flight: FlightHandle) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Loop the replay trace until the experiment ends instead of holding
    /// the final tuple.
    pub fn looping(mut self, on: bool) -> Self {
        if let TupleSource::Trace { looping, .. } = &mut self.source {
            *looping = on;
        }
        self
    }

    /// Enable inbound delay compensation with the measured mean `Vb`
    /// (ns/byte) of the modulating network.
    pub fn with_compensation(mut self, vb_ns_per_byte: f64) -> Self {
        self.compensation_vb = vb_ns_per_byte.max(0.0);
        self
    }

    /// Pin the replay start time (otherwise the first packet starts it).
    pub fn begin(&mut self, at: SimTime) {
        match &mut self.source {
            TupleSource::Trace { start, .. } | TupleSource::Asymmetric { start, .. } => {
                *start = Some(at)
            }
            TupleSource::Buffer { .. } => {}
        }
        self.window = [None; 2];
    }

    /// Counters.
    pub fn stats(&self) -> ModStats {
        self.stats
    }

    /// Snapshot of the fidelity self-check (intended-vs-actual delay
    /// error, deadline misses, drift clamps, loss delta).
    pub fn fidelity(&self) -> FidelityReport {
        self.fidelity.report()
    }

    /// Packets still waiting in the hold queue.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Telemetry readout: `(released_packets, Σ|delay error| ns)` as
    /// exact integers. Unlike [`fidelity`](Self::fidelity) this does no
    /// percentile math, so the fleet sampler can poll it at every
    /// boundary.
    pub fn error_accum(&self) -> (u64, u64) {
        self.fidelity.error_accum()
    }

    /// `true` once sustained tuple-feed starvation has marked this
    /// client degraded. Cheap flag read for the telemetry sampler.
    pub fn is_degraded(&self) -> bool {
        self.fidelity.is_degraded()
    }

    /// Calendar-queue usage counters (all zero under the reference heap
    /// scheduler). Virtual-time deterministic.
    pub fn sched_stats(&self) -> WheelStats {
        match &self.held {
            HoldQueue::Wheel(q) => q.stats(),
            HoldQueue::Heap(_) => WheelStats::default(),
        }
    }

    /// Offer a batch of same-direction frames that all arrived at `now`
    /// — the per-tick entry point, equivalent to calling
    /// [`offer`](LinkShim::offer) per frame (same verdicts, same RNG
    /// draws, same counters) but without a verdict round-trip each
    /// time: pass-throughs are appended to `out` as immediate releases
    /// in offer order, holds enter the delay queue, drops are counted
    /// in [`stats`](Modulator::stats).
    pub fn offer_batch(
        &mut self,
        dir: Direction,
        frames: impl IntoIterator<Item = Vec<u8>>,
        now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<ShimRelease>,
    ) {
        for bytes in frames {
            if let ShimVerdict::Pass(bytes) = self.offer(dir, bytes, now, rng) {
                out.push(ShimRelease { dir, bytes });
            }
        }
    }

    fn params_at(&mut self, dir: Direction, now: SimTime) -> Option<QualityTuple> {
        let dir_idx = match dir {
            Direction::Outbound => 0,
            Direction::Inbound => 1,
        };
        match &mut self.source {
            TupleSource::Asymmetric { up, down, start } => {
                let s = *start.get_or_insert(now);
                let elapsed = now.since(s);
                if let Some(w) = &self.window[dir_idx] {
                    let e = elapsed.as_nanos();
                    if w.from_ns <= e && e < w.until_ns {
                        return Some(w.tuple);
                    }
                }
                let trace = match dir {
                    Direction::Outbound => up,
                    Direction::Inbound => down,
                };
                let (tuple, from_ns, until_ns) = trace.window_at(elapsed, false)?;
                self.window[dir_idx] = Some(TupleWindow {
                    tuple,
                    from_ns,
                    until_ns,
                });
                Some(tuple)
            }
            TupleSource::Trace {
                replay,
                start,
                looping,
            } => {
                let s = *start.get_or_insert(now);
                let elapsed = now.since(s);
                // Both directions share one trace: cache in slot 0.
                if let Some(w) = &self.window[0] {
                    let e = elapsed.as_nanos();
                    if w.from_ns <= e && e < w.until_ns {
                        return Some(w.tuple);
                    }
                }
                let (tuple, from_ns, until_ns) = replay.window_at(elapsed, *looping)?;
                self.window[0] = Some(TupleWindow {
                    tuple,
                    from_ns,
                    until_ns,
                });
                Some(tuple)
            }
            TupleSource::Buffer {
                buf,
                current,
                until,
                popped,
                starved,
                backoff_ns,
            } => {
                // Advance through expired tuples. An empty buffer means
                // two very different things depending on whether the
                // writer closed it: end-of-trace (hold the final tuple
                // silently, as a replay file would) versus starvation
                // (replay the *stale* tuple, back off exponentially,
                // and — once the backoff saturates — mark the run
                // degraded).
                loop {
                    match current {
                        None => match buf.pop() {
                            Some(t) => {
                                *until = now + t.duration();
                                *current = Some(t);
                                *popped += 1;
                            }
                            None => return None,
                        },
                        Some(c) => {
                            if now < *until {
                                return Some(*c);
                            }
                            match buf.pop() {
                                Some(t) => {
                                    if *starved {
                                        // Recovered: the schedule
                                        // slipped during the outage, so
                                        // restart the tuple clock.
                                        *starved = false;
                                        *backoff_ns = STARVE_BACKOFF_INITIAL_NS;
                                        *until = now + t.duration();
                                    } else {
                                        *until += t.duration();
                                    }
                                    *current = Some(t);
                                    *popped += 1;
                                }
                                None if buf.is_closed() => {
                                    // Genuine end of trace: hold the
                                    // final tuple, not a degradation.
                                    return Some(*c);
                                }
                                None => {
                                    // Starved: replay the stale tuple
                                    // for one backoff window before
                                    // polling again.
                                    *starved = true;
                                    *until = now + SimDuration::from_nanos(*backoff_ns);
                                    *backoff_ns = (*backoff_ns * 2).min(STARVE_BACKOFF_MAX_NS);
                                    self.fidelity.on_starvation_hold();
                                    if *backoff_ns >= STARVE_BACKOFF_MAX_NS {
                                        self.fidelity.on_starvation_saturated();
                                    }
                                    return Some(*c);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Emission index of the tuple currently governing decisions
    /// (buffer source only — trace sources have no shared emission
    /// numbering with a live distiller).
    fn current_tuple_index(&self) -> Option<u64> {
        match &self.source {
            TupleSource::Buffer {
                current: Some(_),
                popped,
                ..
            } => popped.checked_sub(1),
            _ => None,
        }
    }
}

impl LinkShim for Modulator {
    fn offer(
        &mut self,
        dir: Direction,
        bytes: Vec<u8>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ShimVerdict {
        self.stats.offered += 1;
        let key = self.flight.as_ref().map(|fl| {
            let k = frame_key(&bytes);
            // Benchmark packets enter the observed pipeline here, so
            // this is where their identity is born.
            fl.assign(k);
            k
        });
        let Some(q) = self.params_at(dir, now) else {
            // No tuples yet (daemon still priming): transparent.
            self.stats.unmodulated += 1;
            self.fidelity.on_unmodulated();
            if let Some(fl) = &self.flight {
                fl.instant(
                    Stage::Modulate,
                    "pass",
                    key,
                    None,
                    now.as_nanos(),
                    "unmodulated (no tuple yet)".to_string(),
                );
            }
            return ShimVerdict::Pass(bytes);
        };
        let tuple = self.current_tuple_index();
        self.fidelity.on_modulated(q.loss);
        let s = bytes.len() as f64;

        // Bottleneck serialization, shared by both directions, with the
        // inbound compensation applied to Vb.
        let vb = match dir {
            Direction::Inbound => (q.vb_ns_per_byte - self.compensation_vb).max(0.0),
            Direction::Outbound => q.vb_ns_per_byte,
        };
        if matches!(dir, Direction::Inbound) && self.compensation_vb > 0.0 && q.vb_ns_per_byte > 0.0
        {
            self.fidelity.on_compensated();
        }
        let service = netsim::SimDuration::from_nanos((s * vb).round().max(0.0) as u64);
        let start = self.bottleneck_free.max(now);
        let leave_bottleneck = start + service;
        self.bottleneck_free = leave_bottleneck;

        // Loss applied after the bottleneck: a lost packet has already
        // consumed bottleneck time.
        if rng.chance(q.loss) {
            self.stats.dropped += 1;
            self.fidelity.on_drop();
            if let Some(fl) = &self.flight {
                fl.instant(
                    Stage::Modulate,
                    "drop",
                    key,
                    tuple,
                    leave_bottleneck.as_nanos(),
                    format!("loss process p={:.4}", q.loss),
                );
            }
            return ShimVerdict::Drop;
        }

        let intended = leave_bottleneck + q.latency() + q.residual_delay(bytes.len());
        let mut due = intended;
        // Keep per-direction releases monotone (no reordering when the
        // active tuple's delay shrinks).
        let dir_idx = match dir {
            Direction::Outbound => 0,
            Direction::Inbound => 1,
        };
        if due < self.last_due[dir_idx] {
            due = self.last_due[dir_idx];
            self.fidelity.on_drift_clamp();
            if let Some(fl) = &self.flight {
                fl.instant(
                    Stage::Modulate,
                    "clamp",
                    key,
                    tuple,
                    now.as_nanos(),
                    format!(
                        "monotone clamp +{:.3}ms (intended {:.3}ms)",
                        signed_ms(due, intended),
                        signed_ms(intended, now)
                    ),
                );
            }
        }
        self.last_due[dir_idx] = due.max(now);
        match self.clock.quantize(now, due) {
            Quantized::Immediate => {
                self.stats.immediate += 1;
                // Released now although the model wanted `due`: the
                // paper's §5.4 under-delay artifact (negative error).
                self.fidelity.on_release(signed_ms(now, due), false);
                if let Some(fl) = &self.flight {
                    fl.instant(
                        Stage::Modulate,
                        "release",
                        key,
                        tuple,
                        now.as_nanos(),
                        format!(
                            "immediate, intended +{:.3}ms err {:+.3}ms",
                            signed_ms(due, now),
                            signed_ms(now, due)
                        ),
                    );
                }
                ShimVerdict::Pass(bytes)
            }
            Quantized::At(t) => {
                self.stats.held += 1;
                self.seq += 1;
                self.held.push(HeldPkt {
                    due: t,
                    ideal_due: due,
                    seq: self.seq,
                    dir,
                    bytes,
                    offered: now,
                    key,
                    tuple,
                });
                ShimVerdict::Hold
            }
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.held.next_due()
    }

    fn collect_due(&mut self, now: SimTime, rng: &mut SimRng) -> Vec<ShimRelease> {
        let mut out = Vec::new();
        self.collect_due_into(now, rng, &mut out);
        out
    }

    fn collect_due_into(&mut self, now: SimTime, _rng: &mut SimRng, out: &mut Vec<ShimRelease>) {
        // Drain in one batch (wholesale-sorted buckets on the wheel
        // path), then account each release in `(due, seq)` order — the
        // same per-packet side-effect sequence the heap path produces.
        let mut due = std::mem::take(&mut self.release_scratch);
        due.clear();
        self.held.drain_due_into(now, &mut due);
        for p in due.drain(..) {
            // Released at `now`: positive error = held past the intended
            // time (quantization or a late wakeup), deadline missed when
            // the quantized due tick itself has already passed.
            let err_ms = signed_ms(now, p.ideal_due);
            let missed = now > p.due;
            self.fidelity.on_release(err_ms, missed);
            if let Some(fl) = &self.flight {
                fl.span(
                    Stage::Modulate,
                    "hold",
                    p.key,
                    p.tuple,
                    p.offered.as_nanos(),
                    now.as_nanos(),
                    format!(
                        "held {:.3}ms err {err_ms:+.3}ms{}",
                        signed_ms(now, p.offered),
                        if missed { " (deadline missed)" } else { "" }
                    ),
                );
            }
            out.push(ShimRelease {
                dir: p.dir,
                bytes: p.bytes,
            });
        }
        self.release_scratch = due;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn trace(latency_ms: u64, vb: f64, vr: f64, loss: f64) -> ReplayTrace {
        ReplayTrace::constant(
            "test",
            SimDuration::from_secs(3600),
            SimDuration::from_millis(latency_ms),
            vb,
            vr,
            loss,
        )
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(42)
    }

    fn offer(
        m: &mut Modulator,
        dir: Direction,
        n: usize,
        now: SimTime,
        r: &mut SimRng,
    ) -> ShimVerdict {
        m.offer(dir, vec![0u8; n], now, r)
    }

    #[test]
    fn delay_formula_f_plus_s_v() {
        // F = 50 ms, Vb = 4000 ns/B, Vr = 1000 ns/B, ideal clock.
        let mut m =
            Modulator::from_replay(trace(50, 4000.0, 1000.0, 0.0)).with_clock(TickClock::ideal());
        let mut r = rng();
        m.begin(SimTime::ZERO);
        let v = offer(&mut m, Direction::Outbound, 1000, SimTime::ZERO, &mut r);
        assert!(matches!(v, ShimVerdict::Hold));
        // due = s·Vb (4 ms) + F (50 ms) + s·Vr (1 ms) = 55 ms.
        assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(55)));
        let rel = m.collect_due(SimTime::from_millis(55), &mut r);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].bytes.len(), 1000);
    }

    #[test]
    fn unified_bottleneck_couples_directions() {
        let mut m =
            Modulator::from_replay(trace(0, 4000.0, 0.0, 0.0)).with_clock(TickClock::ideal());
        let mut r = rng();
        m.begin(SimTime::ZERO);
        // Outbound then inbound at t=0, 1000 B each: bottleneck services
        // them serially (4 ms each).
        offer(&mut m, Direction::Outbound, 1000, SimTime::ZERO, &mut r);
        offer(&mut m, Direction::Inbound, 1000, SimTime::ZERO, &mut r);
        let due1 = m.next_wakeup().unwrap();
        assert_eq!(due1, SimTime::from_millis(4));
        let rel = m.collect_due(SimTime::from_millis(8), &mut r);
        assert_eq!(rel.len(), 2);
        assert!(matches!(rel[0].dir, Direction::Outbound));
        assert!(matches!(rel[1].dir, Direction::Inbound));
    }

    #[test]
    fn inbound_compensation_reduces_vb_only_inbound() {
        let mut m = Modulator::from_replay(trace(0, 4000.0, 0.0, 0.0))
            .with_clock(TickClock::ideal())
            .with_compensation(800.0); // the Ethernet's per-byte cost
        let mut r = rng();
        m.begin(SimTime::ZERO);
        offer(&mut m, Direction::Inbound, 1000, SimTime::ZERO, &mut r);
        // Inbound service = (4000−800) ns/B × 1000 B = 3.2 ms.
        assert_eq!(m.next_wakeup(), Some(SimTime::from_nanos(3_200_000)));
        m.collect_due(SimTime::from_secs(1), &mut r);
        offer(
            &mut m,
            Direction::Outbound,
            1000,
            SimTime::from_secs(2),
            &mut r,
        );
        // Outbound unchanged: 4 ms after its start.
        assert_eq!(
            m.next_wakeup(),
            Some(SimTime::from_secs(2) + SimDuration::from_millis(4))
        );
    }

    #[test]
    fn compensation_clamps_at_zero() {
        let mut m = Modulator::from_replay(trace(0, 500.0, 0.0, 0.0))
            .with_clock(TickClock::ideal())
            .with_compensation(800.0);
        let mut r = rng();
        m.begin(SimTime::ZERO);
        // Vb − comp < 0 → clamped: only F (0) remains → immediate.
        let v = offer(&mut m, Direction::Inbound, 1000, SimTime::ZERO, &mut r);
        assert!(matches!(v, ShimVerdict::Pass(_)));
    }

    #[test]
    fn loss_applied_after_bottleneck() {
        let mut m =
            Modulator::from_replay(trace(0, 4000.0, 0.0, 1.0)).with_clock(TickClock::ideal());
        let mut r = rng();
        m.begin(SimTime::ZERO);
        let v = offer(&mut m, Direction::Outbound, 1000, SimTime::ZERO, &mut r);
        assert!(matches!(v, ShimVerdict::Drop));
        // The dropped packet still consumed bottleneck time: the next
        // packet queues behind it.
        let mut m2 =
            Modulator::from_replay(trace(0, 4000.0, 0.0, 0.0)).with_clock(TickClock::ideal());
        m2.begin(SimTime::ZERO);
        m2.bottleneck_free = m.bottleneck_free;
        offer(&mut m2, Direction::Outbound, 1000, SimTime::ZERO, &mut r);
        assert_eq!(m2.next_wakeup(), Some(SimTime::from_millis(8)));
    }

    #[test]
    fn ten_ms_tick_sends_short_delays_immediately() {
        // Delay = 2 ms < half tick → immediate: the paper's under-delay
        // artifact for short NFS messages.
        let mut m = Modulator::from_replay(trace(2, 0.0, 0.0, 0.0));
        let mut r = rng();
        m.begin(SimTime::ZERO);
        let v = offer(&mut m, Direction::Outbound, 100, SimTime::ZERO, &mut r);
        assert!(matches!(v, ShimVerdict::Pass(_)));
        assert_eq!(m.stats().immediate, 1);
        // Delay = 8 ms → due at 1.008 s rounds to the 1.010 s tick.
        let mut m8 = Modulator::from_replay(trace(8, 0.0, 0.0, 0.0));
        m8.begin(SimTime::ZERO);
        let v = offer(
            &mut m8,
            Direction::Outbound,
            100,
            SimTime::from_secs(1),
            &mut r,
        );
        assert!(matches!(v, ShimVerdict::Hold));
        assert_eq!(
            m8.next_wakeup(),
            Some(SimTime::from_secs(1) + SimDuration::from_millis(10))
        );
    }

    #[test]
    fn buffer_source_streams_tuples() {
        let buf = TupleBuffer::new(8);
        buf.write(&[
            QualityTuple {
                duration_ns: 1_000_000_000,
                latency_ns: 5_000_000,
                vb_ns_per_byte: 0.0,
                vr_ns_per_byte: 0.0,
                loss: 0.0,
            },
            QualityTuple {
                duration_ns: 1_000_000_000,
                latency_ns: 40_000_000,
                vb_ns_per_byte: 0.0,
                vr_ns_per_byte: 0.0,
                loss: 0.0,
            },
        ]);
        let mut m = Modulator::from_buffer(buf.clone()).with_clock(TickClock::ideal());
        let mut r = rng();
        // First tuple: 5 ms latency.
        offer(&mut m, Direction::Outbound, 10, SimTime::ZERO, &mut r);
        assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(5)));
        m.collect_due(SimTime::from_secs(1), &mut r);
        // Second tuple active after 1 s: 40 ms latency.
        offer(
            &mut m,
            Direction::Outbound,
            10,
            SimTime::from_millis(1500),
            &mut r,
        );
        assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(1540)));
        // Starved buffer: last tuple stretches.
        m.collect_due(SimTime::from_secs(10), &mut r);
        offer(
            &mut m,
            Direction::Outbound,
            10,
            SimTime::from_secs(30),
            &mut r,
        );
        assert_eq!(
            m.next_wakeup(),
            Some(SimTime::from_secs(30) + SimDuration::from_millis(40))
        );
    }

    #[test]
    fn starvation_and_stream_end_are_distinguished() {
        let mk = |lat_ms: u64| QualityTuple {
            duration_ns: 1_000_000_000,
            latency_ns: lat_ms * 1_000_000,
            vb_ns_per_byte: 0.0,
            vr_ns_per_byte: 0.0,
            loss: 0.0,
        };
        // --- Open buffer that runs dry: starvation with backoff. ---
        let buf = TupleBuffer::new(8);
        buf.write(&[mk(5)]);
        let mut m = Modulator::from_buffer(buf.clone()).with_clock(TickClock::ideal());
        let mut r = rng();
        offer(&mut m, Direction::Outbound, 10, SimTime::ZERO, &mut r);
        assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(5)));
        m.collect_due(SimTime::from_secs(1), &mut r);
        // Tuple expired at 1 s, buffer open + empty → starvation hold:
        // the stale 5 ms tuple still modulates.
        offer(
            &mut m,
            Direction::Outbound,
            10,
            SimTime::from_millis(1100),
            &mut r,
        );
        assert_eq!(m.fidelity().starvation_holds, 1);
        assert!(
            !m.fidelity().degraded,
            "transient starvation is not degradation"
        );
        m.collect_due(SimTime::from_millis(1150), &mut r);
        // Within the 250 ms backoff window the buffer is NOT re-polled:
        // a fresh tuple sits unread while the stale one replays.
        buf.write(&[mk(40)]);
        offer(
            &mut m,
            Direction::Outbound,
            10,
            SimTime::from_millis(1200),
            &mut r,
        );
        assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(1205)));
        assert_eq!(m.fidelity().starvation_holds, 1);
        m.collect_due(SimTime::from_secs(2), &mut r);
        // Past the window: recovery pops the fresh tuple and restarts
        // its clock from now.
        offer(
            &mut m,
            Direction::Outbound,
            10,
            SimTime::from_millis(1400),
            &mut r,
        );
        assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(1440)));
        assert_eq!(m.fidelity().starvation_holds, 1);
        m.collect_due(SimTime::from_secs(3), &mut r);
        // Sustained starvation (no refill): consecutive empty polls
        // escalate 250→500→1000→2000→4000 ms; when the next window
        // reaches the 8 s cap the run is marked degraded.
        let mut t = SimTime::from_millis(2500);
        for _ in 0..5 {
            offer(&mut m, Direction::Outbound, 10, t, &mut r);
            m.collect_due(t + SimDuration::from_secs(20), &mut r);
            t += SimDuration::from_secs(20);
        }
        assert_eq!(m.fidelity().starvation_holds, 6);
        assert!(m.fidelity().degraded, "saturated backoff marks degradation");

        // --- Closed buffer: end of trace, a silent final hold. ---
        let buf2 = TupleBuffer::new(8);
        buf2.write(&[mk(7)]);
        buf2.close();
        let mut m2 = Modulator::from_buffer(buf2).with_clock(TickClock::ideal());
        offer(&mut m2, Direction::Outbound, 10, SimTime::ZERO, &mut r);
        m2.collect_due(SimTime::from_secs(5), &mut r);
        // Long after the tuple expired: still modulates with it, with
        // no starvation accounting — the stream simply ended.
        offer(
            &mut m2,
            Direction::Outbound,
            10,
            SimTime::from_secs(6),
            &mut r,
        );
        assert_eq!(
            m2.next_wakeup(),
            Some(SimTime::from_secs(6) + SimDuration::from_millis(7))
        );
        assert_eq!(m2.fidelity().starvation_holds, 0);
        assert!(!m2.fidelity().degraded);
    }

    #[test]
    fn empty_buffer_passes_through() {
        let buf = TupleBuffer::new(8);
        let mut m = Modulator::from_buffer(buf);
        let mut r = rng();
        let v = offer(&mut m, Direction::Inbound, 500, SimTime::ZERO, &mut r);
        assert!(matches!(v, ShimVerdict::Pass(_)));
        assert_eq!(m.stats().unmodulated, 1);
    }

    #[test]
    fn fifo_release_order() {
        let mut m =
            Modulator::from_replay(trace(20, 1000.0, 0.0, 0.0)).with_clock(TickClock::ideal());
        let mut r = rng();
        m.begin(SimTime::ZERO);
        for i in 0..5 {
            offer(
                &mut m,
                Direction::Outbound,
                100 + i * 10,
                SimTime::ZERO,
                &mut r,
            );
        }
        let rel = m.collect_due(SimTime::from_secs(1), &mut r);
        assert_eq!(rel.len(), 5);
        let sizes: Vec<usize> = rel.iter().map(|p| p.bytes.len()).collect();
        assert_eq!(sizes, vec![100, 110, 120, 130, 140]);
    }

    #[test]
    fn asymmetric_source_uses_per_direction_tuples() {
        let up = trace(10, 6000.0, 0.0, 0.0); // slow uplink
        let down = trace(2, 2000.0, 0.0, 0.0); // fast downlink
        let mut m = Modulator::from_asymmetric(up, down).with_clock(TickClock::ideal());
        let mut r = rng();
        m.begin(SimTime::ZERO);
        offer(&mut m, Direction::Outbound, 1000, SimTime::ZERO, &mut r);
        // Outbound: 6 ms bottleneck + 10 ms latency = 16 ms.
        assert_eq!(m.next_wakeup(), Some(SimTime::from_millis(16)));
        m.collect_due(SimTime::from_secs(1), &mut r);
        // Inbound at t=2s: 2 ms bottleneck + 2 ms latency = 4 ms.
        offer(
            &mut m,
            Direction::Inbound,
            1000,
            SimTime::from_secs(2),
            &mut r,
        );
        assert_eq!(
            m.next_wakeup(),
            Some(SimTime::from_secs(2) + SimDuration::from_millis(4))
        );
    }

    #[test]
    fn stats_accounting() {
        let mut m = Modulator::from_replay(trace(50, 0.0, 0.0, 0.0));
        let mut r = rng();
        m.begin(SimTime::ZERO);
        for _ in 0..10 {
            offer(&mut m, Direction::Outbound, 100, SimTime::ZERO, &mut r);
        }
        let s = m.stats();
        assert_eq!(s.offered, 10);
        assert_eq!(s.held, 10);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.immediate, 0);
    }
}
