//! Scheduling-granularity model (§3.3 "Scheduling Granularity").
//!
//! The paper's NetBSD host could only schedule delayed packets on 10 ms
//! clock interrupts. Departures are rounded to the *nearest* tick (so the
//! long-term average error tends to zero), and packets whose delay would
//! be less than half a tick are sent immediately. This quantizer
//! reproduces that behaviour — including the under-delay artifact the
//! paper observed for short NFS messages (Wean ScanDir/ReadAll) — and can
//! be configured finer to model better clocks.

use netsim::{SimDuration, SimTime};

/// A clock-tick quantizer for packet departures.
#[derive(Debug, Clone, Copy)]
pub struct TickClock {
    /// Interrupt resolution. Zero means ideal (no quantization).
    pub resolution: SimDuration,
}

/// What the quantizer decided about a departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantized {
    /// Delay under half a tick: send now.
    Immediate,
    /// Hold until this instant (a tick boundary).
    At(SimTime),
}

impl TickClock {
    /// The paper's 10 ms NetBSD clock.
    pub fn netbsd() -> Self {
        TickClock {
            resolution: SimDuration::from_millis(10),
        }
    }

    /// An ideal clock (no quantization) — the "custom hardware clock"
    /// alternative the paper rejected, useful for ablations.
    pub fn ideal() -> Self {
        TickClock {
            resolution: SimDuration::ZERO,
        }
    }

    /// A clock with the given resolution.
    pub fn with_resolution(resolution: SimDuration) -> Self {
        TickClock { resolution }
    }

    /// Quantize a departure scheduled for `due`, given the current time.
    pub fn quantize(&self, now: SimTime, due: SimTime) -> Quantized {
        if due <= now {
            return Quantized::Immediate;
        }
        let res = self.resolution.as_nanos();
        if res == 0 {
            return Quantized::At(due);
        }
        // Round the absolute due time to the nearest tick boundary.
        let due_ns = due.as_nanos();
        let rounded = (due_ns + res / 2) / res * res;
        if rounded <= now.as_nanos() {
            Quantized::Immediate
        } else {
            Quantized::At(SimTime::from_nanos(rounded))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms_tenths: u64) -> SimTime {
        SimTime::from_nanos(ms_tenths * 100_000) // 0.1 ms units
    }

    #[test]
    fn sub_half_tick_sends_immediately() {
        let c = TickClock::netbsd();
        // now = 0, due at 4 ms: nearest tick is 0 → immediate.
        assert_eq!(c.quantize(SimTime::ZERO, t(40)), Quantized::Immediate);
        // due at 4.9 ms → still immediate.
        assert_eq!(c.quantize(SimTime::ZERO, t(49)), Quantized::Immediate);
    }

    #[test]
    fn above_half_tick_rounds_to_nearest() {
        let c = TickClock::netbsd();
        // due at 5 ms rounds to 10 ms.
        assert_eq!(
            c.quantize(SimTime::ZERO, t(50)),
            Quantized::At(SimTime::from_millis(10))
        );
        // due at 14 ms rounds down to 10 ms.
        assert_eq!(
            c.quantize(SimTime::ZERO, t(140)),
            Quantized::At(SimTime::from_millis(10))
        );
        // due at 16 ms rounds up to 20 ms.
        assert_eq!(
            c.quantize(SimTime::ZERO, t(160)),
            Quantized::At(SimTime::from_millis(20))
        );
    }

    #[test]
    fn rounding_relative_to_absolute_ticks() {
        let c = TickClock::netbsd();
        // now = 7 ms, due at 12 ms: nearest tick 10 ms is in the future →
        // hold until 10 ms (3 ms of the 5 ms delay).
        assert_eq!(
            c.quantize(SimTime::from_millis(7), SimTime::from_millis(12)),
            Quantized::At(SimTime::from_millis(10))
        );
        // now = 12 ms, due 14 ms: nearest tick 10 ms already passed →
        // immediate (under-delay artifact).
        assert_eq!(
            c.quantize(SimTime::from_millis(12), SimTime::from_millis(14)),
            Quantized::Immediate
        );
    }

    #[test]
    fn ideal_clock_is_exact() {
        let c = TickClock::ideal();
        assert_eq!(c.quantize(SimTime::ZERO, t(49)), Quantized::At(t(49)));
        assert_eq!(c.quantize(t(50), t(50)), Quantized::Immediate);
    }

    #[test]
    fn past_due_is_immediate() {
        let c = TickClock::netbsd();
        assert_eq!(
            c.quantize(SimTime::from_millis(20), SimTime::from_millis(5)),
            Quantized::Immediate
        );
    }

    #[test]
    fn long_term_average_error_near_zero() {
        // Rounding to nearest: over many uniformly-placed departures the
        // mean signed error tends to zero.
        let c = TickClock::netbsd();
        let mut err_sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let due = SimTime::from_nanos(20_000_000 + i * 9_973); // ≥2 ticks out
            match c.quantize(SimTime::ZERO, due) {
                Quantized::At(q) => {
                    err_sum += q.as_nanos() as f64 - due.as_nanos() as f64;
                }
                Quantized::Immediate => unreachable!("due far in the future"),
            }
        }
        let mean_err_ms = err_sum / n as f64 / 1e6;
        assert!(mean_err_ms.abs() < 0.5, "mean error {mean_err_ms} ms");
    }
}
