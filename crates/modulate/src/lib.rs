//! # modulate — the trace modulation layer (§3.3)
//!
//! Reproduces the paper's kernel modulation machinery:
//!
//! * [`Modulator`] — a [`netstack::LinkShim`] between IP and the device
//!   that subjects all inbound and outbound traffic to the replay
//!   trace's ⟨d, F, Vb, Vr, L⟩ tuples through a single unified delay
//!   queue (drop-after-bottleneck, per the model);
//! * [`TickClock`] — the 10 ms scheduling-granularity quantizer
//!   (round to nearest tick; sub-half-tick delays sent immediately);
//! * [`TupleBuffer`] + [`ModulationDaemon`] — the user-level daemon that
//!   streams tuples from a replay-trace file into the fixed-size kernel
//!   buffer, optionally looping until interrupted;
//! * [`TupleFeed`] — the live-mode counterpart: a
//!   [`tracekit::TupleSink`] that forwards tuples straight from the
//!   incremental distiller into the kernel buffer, so modulation can
//!   begin while collection is still running;
//! * [`compensation`] — the inbound delay-compensation term measured
//!   once on the modulating network (Figure 1).

#![warn(missing_docs)]

pub mod clock;
pub mod compensation;
pub mod daemon;
pub mod layer;

pub use clock::{Quantized, TickClock};
pub use compensation::{compensation_from_replay, link_vb_ns_per_byte};
pub use daemon::{ModulationDaemon, TupleBuffer, TupleFeed};
pub use layer::{ModStats, Modulator};
