//! Virtual time for the discrete-event engine.
//!
//! Simulation time is a monotonically non-decreasing count of nanoseconds
//! since the start of the run. All protocol timers, link serialization
//! delays, and benchmark elapsed times are expressed in these units, which
//! makes every experiment fully deterministic and independent of wall-clock
//! speed.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration needed to serialize `bytes` at `bits_per_sec` onto a link.
    ///
    /// Returns zero for a zero rate, which callers use to express an
    /// infinitely fast (non-serializing) attachment.
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> Self {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        let ns = bits * 1_000_000_000 / bits_per_sec as u128;
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        if k <= 0.0 || !k.is_finite() {
            return SimDuration(0);
        }
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        let d = SimDuration::from_millis(10) * 3;
        assert_eq!(d, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(15));
    }

    #[test]
    fn transmission_time() {
        // 1500 bytes at 2 Mb/s = 6 ms.
        let d = SimDuration::transmission(1500, 2_000_000);
        assert_eq!(d, SimDuration::from_millis(6));
        // Zero rate means "no serialization delay".
        assert_eq!(SimDuration::transmission(1500, 0), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(150));
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
    }
}
