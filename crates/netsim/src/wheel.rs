//! A calendar queue (hierarchical timing wheel) for deterministic event
//! scheduling.
//!
//! The simulator and the modulation layer both need a priority queue
//! ordered by `(due, seq)`. A binary heap pays `O(log n)` sift cost on
//! every push and pop, and under the paper's workload — a saturated
//! bottleneck holding thousands of packets — that per-packet churn
//! dominates the modulation hot path. This queue quantizes time into
//! fixed ticks (the 10 ms modulation tick, §3.3) and exploits the fact
//! that events are overwhelmingly scheduled a short distance into the
//! future:
//!
//! * a **front heap** holds only the items of the currently open bucket
//!   (a handful of entries, so its sifts are near-free);
//! * a **wheel** of `slot_count` buckets ([`SLOTS`] by default,
//!   configurable via [`CalendarQueue::with_slots`]) covers the next
//!   `slot_count` ticks with O(1) insertion — a bucket is an unsorted
//!   `Vec`, found by `tick % slot_count`, with a bitmap for fast
//!   next-occupied scans;
//! * an **overflow stage** absorbs far-future items beyond the wheel
//!   horizon with an O(1) append; when the wheel needs them it sorts the
//!   stage once and moves a whole window's worth into the slots, so each
//!   overflow item pays one sort participation and one slot push no
//!   matter how many buckets it spans (a `BTreeMap` keyed by tick costs
//!   an insert *and* a remove per tiny bucket, which under a saturated
//!   backlog dominates the entire queue).
//!
//! Pop order is *exactly* ascending `(due, seq)` — bit-identical to the
//! binary heap it replaces — because a bucket is opened (sorted or
//! heapified) only once every earlier bucket has fully drained, and two
//! distinct ticks can never share a slot: live ticks span the half-open
//! window `(front_tick, front_tick + SLOTS]`, which maps injectively
//! onto slots. Determinism therefore does not depend on the tick size;
//! the quantum only shifts work between the front heap (coarse ticks)
//! and bucket bookkeeping (fine ticks).
//!
//! The payoff is batch draining: when the caller collects everything due
//! up to `now` — the per-tick shape of the modulation loop — a bucket
//! that is *entirely* due is sorted once and appended wholesale,
//! skipping the heap entirely.

use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::{BinaryHeap, HashMap};

/// Default number of wheel slots; live ticks cover
/// `(front_tick, front_tick + slots]`.
///
/// **Horizon math.** The wheel covers a horizon of
/// `slot_count × tick_ns` nanoseconds past the open bucket; anything
/// scheduled further out takes the overflow stage (an O(1) append plus
/// one sort participation per refill, instead of a direct slot file).
/// At the default 4096 slots this is ≈4.3 s for the simulator's ~1 ms
/// quantum (`1 << 20` ns) and ≈41 s for the 10 ms modulation tick —
/// comfortably past any single-client schedule. Memory is what scales
/// with slots: each slot is a `Vec` header (24 B) plus a bitmap bit, so
/// 4096 slots cost ~96 KiB per queue before any items. A fleet of 10k
/// per-client queues cannot afford that; fleet clients therefore
/// construct narrow wheels (e.g. 64–256 slots via
/// [`CalendarQueue::with_slots`]), trading horizon for footprint: a
/// 10 ms tick × 64 slots still covers 640 ms, and the rare
/// beyond-horizon hold simply rides the overflow stage with identical
/// pop order.
pub const SLOTS: usize = 4096;

/// Sort keys for calendar-queue items. `(due_ns, seq)` must be unique
/// per queue (the schedulers guarantee this with a monotone sequence
/// counter), which makes pop order total and deterministic.
///
/// `'static` is required so retired queue allocations can be pooled in
/// a type-keyed thread-local free list (see [`CalendarQueue::with_slots`]).
pub trait WheelItem: 'static {
    /// Absolute due time in nanoseconds.
    fn due_ns(&self) -> u64;
    /// Tie-break sequence number (scheduling order).
    fn seq(&self) -> u64;
}

/// Min-heap adapter: reverses `(due, seq)` so `BinaryHeap` pops the
/// earliest item first.
struct Front<T>(T);

impl<T: WheelItem> PartialEq for Front<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<T: WheelItem> Eq for Front<T> {}
impl<T: WheelItem> PartialOrd for Front<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: WheelItem> Ord for Front<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.due_ns(), other.0.seq()).cmp(&(self.0.due_ns(), self.0.seq()))
    }
}

/// Counters describing how the queue has been exercised. Tracked in
/// virtual time only, so they are identical across reruns of the same
/// schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Items ever pushed.
    pub pushes: u64,
    /// Pushes that landed beyond the wheel horizon (overflow stage).
    pub overflow_pushes: u64,
    /// Buckets opened into the front heap (partial drains).
    pub buckets_opened: u64,
    /// Buckets drained wholesale (sorted and appended, no heap).
    pub buckets_drained_whole: u64,
    /// High-water mark of queue length.
    pub peak_len: usize,
}

/// A deterministic calendar queue ordered by `(due_ns, seq)`.
pub struct CalendarQueue<T: WheelItem> {
    tick_ns: u64,
    front: BinaryHeap<Front<T>>,
    /// All front items have `tick <= front_tick`; all bucketed items
    /// have `tick > front_tick`.
    front_tick: u64,
    slots: Vec<Vec<T>>,
    occupied: Vec<u64>,
    /// Far-future items, unsorted — O(1) push, merged into `sorted` on
    /// the next refill.
    staging: Vec<T>,
    /// Exact minimum `(due, seq)` across `staging`, tracked on push.
    staging_min: Option<(u64, u64)>,
    /// Far-future items sorted *descending* by `(due, seq)`: the global
    /// overflow minimum sits at the tail, and a refill pops the due
    /// window off the end in ascending order.
    sorted: Vec<T>,
    len: usize,
    /// `Some((due, seq))` is the exact global minimum; `None` with
    /// `len > 0` means "recompute on demand". Interior-mutable so
    /// `next_due_ns(&self)` can memoize.
    min_cache: Cell<Option<(u64, u64)>>,
    /// Recycled bucket allocations (refilled by wholesale drains).
    spare: Vec<Vec<T>>,
    stats: WheelStats,
}

/// Retired allocations of one queue: item-free, capacity preserved.
/// Boxed behind `dyn Any` in the thread-local pool, keyed by
/// `(TypeId, slot count)` so a hit always hands back vectors of the
/// right shape.
struct PooledParts<T> {
    slots: Vec<Vec<T>>,
    occupied: Vec<u64>,
    staging: Vec<T>,
    sorted: Vec<T>,
    spare: Vec<Vec<T>>,
    front: BinaryHeap<Front<T>>,
}

/// Retired queues kept per key; enough to cover a handful of live
/// queues per thread (the bench constructs two per iteration) without
/// letting a burst of drops pin memory forever.
const POOL_MAX_PER_KEY: usize = 8;

/// Pool storage: retired queue parts boxed as `dyn Any`, keyed by
/// `(item type, slot count)`.
type PoolMap = HashMap<(TypeId, usize), Vec<Box<dyn Any>>>;

thread_local! {
    /// Thread-local free list of retired queue allocations. Purely an
    /// allocator-level cache: hits and misses never touch [`WheelStats`]
    /// or any other virtual-time-deterministic surface, because pool
    /// state depends on wall-clock construction order across runs.
    static WHEEL_POOL: RefCell<PoolMap> = RefCell::new(HashMap::new());
}

fn pool_acquire<T: WheelItem>(slot_count: usize) -> Option<PooledParts<T>> {
    WHEEL_POOL.with(|p| {
        let mut map = p.try_borrow_mut().ok()?;
        let boxed = map.get_mut(&(TypeId::of::<T>(), slot_count))?.pop()?;
        boxed.downcast::<PooledParts<T>>().ok().map(|b| *b)
    })
}

fn pool_retire<T: WheelItem>(parts: PooledParts<T>) {
    let key = (TypeId::of::<T>(), parts.slots.len());
    let boxed: Box<dyn Any> = Box::new(parts);
    WHEEL_POOL.with(|p| {
        // `try_borrow_mut` keeps a re-entrant retire (a pooled box being
        // evicted while the map is borrowed cannot happen — parts hold
        // no items — but a hostile `T::drop` could construct queues) a
        // silent miss instead of a panic.
        if let Ok(mut map) = p.try_borrow_mut() {
            let v = map.entry(key).or_default();
            if v.len() < POOL_MAX_PER_KEY {
                v.push(boxed);
            }
        }
    });
}

impl<T: WheelItem> CalendarQueue<T> {
    /// A queue with the given tick quantum (bucket width) in
    /// nanoseconds and the default [`SLOTS`]-slot wheel. Panics if
    /// `tick_ns` is zero.
    pub fn new(tick_ns: u64) -> Self {
        Self::with_slots(tick_ns, SLOTS)
    }

    /// A queue with an explicit wheel width. `slot_count` trades
    /// footprint for horizon (see the [`SLOTS`] doc for the math) and
    /// must be a positive multiple of 64 (the occupancy-bitmap word
    /// size). Reuses a retired queue's allocations from a thread-local
    /// pool when one of the same item type and width is available, so
    /// construct-per-run call sites stop paying the slot-vector
    /// allocation after their first run on a thread.
    pub fn with_slots(tick_ns: u64, slot_count: usize) -> Self {
        assert!(tick_ns > 0, "calendar queue tick must be positive");
        assert!(
            slot_count > 0 && slot_count.is_multiple_of(64),
            "slot count must be a positive multiple of 64"
        );
        let parts = pool_acquire::<T>(slot_count).unwrap_or_else(|| PooledParts {
            slots: (0..slot_count).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; slot_count / 64],
            staging: Vec::new(),
            sorted: Vec::new(),
            spare: Vec::new(),
            front: BinaryHeap::new(),
        });
        debug_assert!(parts.slots.iter().all(Vec::is_empty));
        debug_assert!(parts.occupied.iter().all(|w| *w == 0));
        CalendarQueue {
            tick_ns,
            front: parts.front,
            front_tick: 0,
            slots: parts.slots,
            occupied: parts.occupied,
            staging: parts.staging,
            staging_min: None,
            sorted: parts.sorted,
            len: 0,
            min_cache: Cell::new(None),
            spare: parts.spare,
            stats: WheelStats::default(),
        }
    }

    /// The bucket width in nanoseconds.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Number of wheel slots (the live-window width in ticks).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Usage counters (virtual-time deterministic).
    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    /// Insert an item. O(1) unless it lands in the currently open
    /// bucket (front-heap push).
    pub fn push(&mut self, item: T) {
        let key = (item.due_ns(), item.seq());
        self.len += 1;
        self.stats.pushes += 1;
        if self.len > self.stats.peak_len {
            self.stats.peak_len = self.len;
        }
        match self.min_cache.get() {
            Some(m) if key < m => self.min_cache.set(Some(key)),
            None if self.len == 1 => self.min_cache.set(Some(key)),
            _ => {}
        }
        let tick = key.0 / self.tick_ns;
        if tick <= self.front_tick {
            self.front.push(Front(item));
        } else if tick - self.front_tick <= self.slots.len() as u64 {
            self.slot_push(tick, item);
        } else {
            if self.staging_min.is_none_or(|m| key < m) {
                self.staging_min = Some(key);
            }
            self.staging.push(item);
            self.stats.overflow_pushes += 1;
        }
    }

    // File an item under a live tick's slot.
    fn slot_push(&mut self, tick: u64, item: T) {
        debug_assert!(tick > self.front_tick && tick - self.front_tick <= self.slots.len() as u64);
        let slot = (tick % self.slots.len() as u64) as usize;
        if self.slots[slot].is_empty() {
            if let Some(mut spare) = self.spare.pop() {
                spare.clear();
                self.slots[slot] = spare;
            }
        }
        self.slots[slot].push(item);
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Remove and return the earliest item by `(due, seq)`.
    pub fn pop_next(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        if self.front.is_empty() {
            self.open_next_bucket();
        }
        let item = self.front.pop().expect("open_next_bucket fills front").0;
        self.len -= 1;
        // The front head, when present, is the global minimum: every
        // bucketed item lives in a strictly later tick.
        self.min_cache
            .set(self.front.peek().map(|f| (f.0.due_ns(), f.0.seq())));
        Some(item)
    }

    /// Earliest due time, or `None` when empty. O(1) when the minimum
    /// is cached (always, except right after a drain that emptied the
    /// open bucket); otherwise one bucket scan, memoized.
    pub fn next_due_ns(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if let Some((due, _)) = self.min_cache.get() {
            return Some(due);
        }
        let m = self.compute_min();
        self.min_cache.set(Some(m));
        Some(m.0)
    }

    /// Append every item with `due_ns <= now_ns` to `out`, in ascending
    /// `(due, seq)` order. All *entirely* due buckets are swept in one
    /// pass — slots drained in place, overflow pulled directly, one sort
    /// over the whole appended range — so the per-tick batch collection
    /// of a saturated backlog never pays per-bucket bookkeeping.
    pub fn drain_due_into(&mut self, now_ns: u64, out: &mut Vec<T>) {
        let start_len = out.len();
        // Last tick whose bucket is entirely due at `now`:
        // (tick + 1) * tick_ns - 1 <= now.
        let q = now_ns / self.tick_ns;
        let full_max = if now_ns % self.tick_ns == self.tick_ns - 1 {
            Some(q)
        } else {
            q.checked_sub(1)
        };
        loop {
            while let Some(head) = self.front.peek() {
                if head.0.due_ns() > now_ns {
                    break;
                }
                out.push(self.front.pop().expect("peeked").0);
                self.len -= 1;
            }
            if !self.front.is_empty() || self.len == 0 {
                break;
            }
            if let Some(full_max) = full_max {
                let mark = out.len();
                self.sweep_full(full_max, out);
                if out.len() > mark {
                    // One global sort replaces per-bucket sorts: swept
                    // dues partition into disjoint per-tick ranges, so
                    // the orders coincide — and a bucket split between
                    // its slot and the overflow stage interleaves
                    // correctly without ever being reunited.
                    // Stable run-detecting sort: the swept range is a
                    // few ascending runs (slots in tick order, overflow
                    // stages each in order), merged near-linearly.
                    out[mark..].sort_by_key(|t| (t.due_ns(), t.seq()));
                    continue;
                }
            }
            // Only a partially-due bucket can still hold due items.
            let Some(tick) = self.next_bucket_tick() else {
                break;
            };
            if tick.saturating_mul(self.tick_ns) > now_ns {
                break; // earliest possible due in that bucket is beyond now
            }
            self.open_bucket_at(tick);
        }
        if out.len() != start_len {
            self.min_cache
                .set(self.front.peek().map(|f| (f.0.due_ns(), f.0.seq())));
        }
    }

    /// Move every item in buckets with `tick <= full_max` into `out`,
    /// unsorted: occupied slots in ascending-tick order (drained in
    /// place, keeping their capacity), then any overflow items that far.
    /// Advances the window past `full_max`.
    fn sweep_full(&mut self, full_max: u64, out: &mut Vec<T>) {
        while let Some(slot) = self.first_occupied_slot() {
            let tick = self.slots[slot][0].due_ns() / self.tick_ns;
            if tick > full_max {
                break;
            }
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
            self.len -= self.slots[slot].len();
            out.append(&mut self.slots[slot]);
            // Advancing per bucket keeps the next occupancy scan O(1)
            // under dense backlogs (it starts at the very next slot).
            self.front_tick = tick;
            self.stats.buckets_drained_whole += 1;
        }
        if self.overflow_min_tick().is_some_and(|o| o <= full_max) {
            // due < limit  <=>  tick <= full_max.
            let limit = full_max.saturating_add(1).saturating_mul(self.tick_ns);
            if self.staging_min.is_some_and(|(due, _)| due < limit) {
                // Order-preserving extraction: pushes arrive in nearly
                // ascending due order (a saturated link serializes), so
                // keeping that order leaves `out` a concatenation of
                // ascending runs the run-detecting sort merges in near
                // linear time instead of quicksorting a shuffle.
                let before = self.staging.len();
                out.extend(self.staging.extract_if(.., |it| it.due_ns() < limit));
                self.len -= before - self.staging.len();
                self.staging_min = self.staging.iter().map(|it| (it.due_ns(), it.seq())).min();
            }
            while self.sorted.last().is_some_and(|it| it.due_ns() < limit) {
                out.push(self.sorted.pop().expect("peeked"));
                self.len -= 1;
            }
        }
        // Safe unconditionally: every pending tick <= full_max was just
        // drained, and filing only needs `tick > front_tick` for
        // bucketed items (front absorbs anything at or below it).
        self.front_tick = self.front_tick.max(full_max);
    }

    /// Open the earliest bucket into the front heap. Precondition:
    /// front empty, `len > 0`.
    fn open_next_bucket(&mut self) {
        let tick = self.next_bucket_tick().expect("len > 0, front empty");
        self.open_bucket_at(tick);
    }

    /// Open the bucket at `tick` (from a wheel scan) into the front heap.
    fn open_bucket_at(&mut self, tick: u64) {
        let items = self.take_bucket(tick);
        debug_assert!(!items.is_empty(), "next_bucket_tick found an empty bucket");
        self.front_tick = tick;
        self.front = BinaryHeap::from(items.into_iter().map(Front).collect::<Vec<_>>());
        self.stats.buckets_opened += 1;
    }

    /// Earliest overflow tick (staging or sorted), O(1).
    fn overflow_min_tick(&self) -> Option<u64> {
        let s = self.staging_min.map(|(due, _)| due / self.tick_ns);
        let t = self.sorted.last().map(|it| it.due_ns() / self.tick_ns);
        match (s, t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Earliest tick holding items. Refills the wheel from the overflow
    /// stage first if the overflow minimum would otherwise be missed,
    /// so afterwards the wheel scan alone is authoritative.
    fn next_bucket_tick(&mut self) -> Option<u64> {
        let wheel = self
            .first_occupied_slot()
            .map(|slot| self.slots[slot][0].due_ns() / self.tick_ns);
        match (wheel, self.overflow_min_tick()) {
            // `o == w` still refills: the bucket can be split between
            // its slot and the overflow stage, and both halves must be
            // in the slot before it is taken.
            (Some(w), Some(o)) if o > w => Some(w),
            (Some(w), None) => Some(w),
            (None, None) => None,
            _ => {
                // Overflow holds (part of) the earliest pending tick.
                self.refill_overflow();
                self.first_occupied_slot()
                    .map(|slot| self.slots[slot][0].due_ns() / self.tick_ns)
            }
        }
    }

    /// Merge the staging items into the sorted stage (one sort) and move
    /// everything due within the live window into the wheel slots. If
    /// the wheel is empty, the window first jumps so the earliest
    /// overflow tick becomes live. Precondition: overflow is non-empty.
    fn refill_overflow(&mut self) {
        if !self.staging.is_empty() {
            self.sorted.append(&mut self.staging);
            self.sorted
                .sort_unstable_by_key(|it| std::cmp::Reverse((it.due_ns(), it.seq())));
            self.staging_min = None;
        }
        let min_tick = match self.sorted.last() {
            Some(it) => it.due_ns() / self.tick_ns,
            None => return,
        };
        if self.first_occupied_slot().is_none()
            && min_tick > self.front_tick.saturating_add(self.slots.len() as u64)
        {
            self.front_tick = min_tick - 1;
        }
        let horizon = self.front_tick.saturating_add(self.slots.len() as u64);
        while let Some(it) = self.sorted.last() {
            let tick = it.due_ns() / self.tick_ns;
            if tick > horizon {
                break;
            }
            let it = self.sorted.pop().expect("peeked");
            self.slot_push(tick, it);
        }
    }

    /// Remove every item scheduled for `tick`. Precondition: `tick` came
    /// from a wheel scan after [`next_bucket_tick`](Self::next_bucket_tick),
    /// so its slot is occupied and holds exactly that tick's items.
    fn take_bucket(&mut self, tick: u64) -> Vec<T> {
        let slot = (tick % self.slots.len() as u64) as usize;
        debug_assert!(
            !self.slots[slot].is_empty() && self.slots[slot][0].due_ns() / self.tick_ns == tick
        );
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        std::mem::replace(&mut self.slots[slot], self.spare.pop().unwrap_or_default())
    }

    /// First occupied slot in circular order starting just after the
    /// open bucket's slot — which is ascending-tick order, since live
    /// ticks map injectively onto slots.
    fn first_occupied_slot(&self) -> Option<usize> {
        let words = self.occupied.len();
        let start = ((self.front_tick + 1) % self.slots.len() as u64) as usize;
        let w0 = start / 64;
        let b0 = start % 64;
        let head = self.occupied[w0] & (!0u64 << b0);
        if head != 0 {
            return Some(w0 * 64 + head.trailing_zeros() as usize);
        }
        for i in 1..=words {
            let w = (w0 + i) % words;
            let mut word = self.occupied[w];
            if w == w0 {
                word &= !(!0u64 << b0); // wrapped tail of the start word
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Exact global minimum `(due, seq)`. Precondition: `len > 0`.
    ///
    /// Candidates: the front head, the wheel's earliest occupied slot
    /// (scanned — every other slot holds strictly later ticks), and the
    /// two overflow minima. Each structure's own minimum bounds all its
    /// items, so the least of the candidates is the global minimum.
    fn compute_min(&self) -> (u64, u64) {
        if let Some(f) = self.front.peek() {
            return (f.0.due_ns(), f.0.seq());
        }
        let mut best: Option<(u64, u64)> = None;
        let mut consider = |key: (u64, u64)| {
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        };
        if let Some(slot) = self.first_occupied_slot() {
            for it in &self.slots[slot] {
                consider((it.due_ns(), it.seq()));
            }
        }
        if let Some(it) = self.sorted.last() {
            consider((it.due_ns(), it.seq()));
        }
        if let Some(key) = self.staging_min {
            consider(key);
        }
        best.expect("len > 0 with empty front means occupied buckets")
    }
}

impl<T: WheelItem> Drop for CalendarQueue<T> {
    /// Return the queue's allocations to the thread-local pool. Items
    /// are dropped *first* — before the pool cell is borrowed — so an
    /// item `Drop` that itself retires a queue cannot re-enter the
    /// borrow.
    fn drop(&mut self) {
        self.front.clear();
        self.staging.clear();
        self.sorted.clear();
        for s in &mut self.slots {
            s.clear();
        }
        self.occupied.iter_mut().for_each(|w| *w = 0);
        pool_retire(PooledParts {
            slots: std::mem::take(&mut self.slots),
            occupied: std::mem::take(&mut self.occupied),
            staging: std::mem::take(&mut self.staging),
            sorted: std::mem::take(&mut self.sorted),
            spare: std::mem::take(&mut self.spare),
            front: std::mem::take(&mut self.front),
        });
    }
}

impl<T: WheelItem + std::fmt::Debug> std::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("tick_ns", &self.tick_ns)
            .field("len", &self.len)
            .field("front_tick", &self.front_tick)
            .field("overflow_items", &(self.staging.len() + self.sorted.len()))
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Item {
        due: u64,
        seq: u64,
    }

    impl WheelItem for Item {
        fn due_ns(&self) -> u64 {
            self.due
        }
        fn seq(&self) -> u64 {
            self.seq
        }
    }

    fn random_items(rng: &mut SimRng, n: usize, horizon_ns: u64) -> Vec<Item> {
        (0..n)
            .map(|i| Item {
                due: rng.range_u64(0, horizon_ns),
                seq: i as u64,
            })
            .collect()
    }

    /// Oracle: plain sort by (due, seq) — what a binary heap yields.
    fn sorted(mut items: Vec<Item>) -> Vec<Item> {
        items.sort_unstable_by_key(|it| (it.due, it.seq));
        items
    }

    #[test]
    fn pops_in_due_seq_order() {
        let mut rng = SimRng::seed_from_u64(7);
        let items = random_items(&mut rng, 10_000, 400 * 10_000_000);
        let mut q = CalendarQueue::new(10_000_000);
        for it in &items {
            q.push(*it);
        }
        assert_eq!(q.len(), items.len());
        let mut popped = Vec::new();
        while let Some(it) = q.pop_next() {
            popped.push(it);
        }
        assert_eq!(popped, sorted(items));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_due_matches_pop_loop() {
        let mut rng = SimRng::seed_from_u64(11);
        let items = random_items(&mut rng, 5_000, 100 * 10_000_000);
        let mut q = CalendarQueue::new(10_000_000);
        for it in &items {
            q.push(*it);
        }
        let mut out = Vec::new();
        // Drain in 25 ms strides; every item must come out in order.
        let mut now = 0;
        while !q.is_empty() {
            now += 25_000_000;
            q.drain_due_into(now, &mut out);
            for it in &out {
                assert!(it.due <= now);
            }
        }
        assert_eq!(out, sorted(items));
    }

    #[test]
    fn interleaved_push_and_drain_stay_ordered() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut q = CalendarQueue::new(1_000_000);
        let mut all = Vec::new();
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..200 {
            for _ in 0..rng.range_u64(0, 20) {
                let it = Item {
                    // Future-only, like the schedulers guarantee.
                    due: now + rng.range_u64(0, 50_000_000),
                    seq,
                };
                seq += 1;
                all.push(it);
                q.push(it);
            }
            now += rng.range_u64(0, 10_000_000);
            q.drain_due_into(now, &mut out);
        }
        q.drain_due_into(u64::MAX, &mut out);
        assert_eq!(out, sorted(all));
    }

    #[test]
    fn far_future_items_take_the_overflow_path() {
        let mut q = CalendarQueue::new(1_000);
        // Horizon is SLOTS ticks = 4096 us at 1 us ticks.
        q.push(Item { due: 500, seq: 0 });
        q.push(Item {
            due: 10_000_000, // far beyond the wheel
            seq: 1,
        });
        q.push(Item {
            due: 9_999_999,
            seq: 2,
        });
        assert_eq!(q.stats().overflow_pushes, 2);
        assert_eq!(q.next_due_ns(), Some(500));
        assert_eq!(q.pop_next().unwrap().seq, 0);
        assert_eq!(q.next_due_ns(), Some(9_999_999));
        assert_eq!(q.pop_next().unwrap().seq, 2);
        assert_eq!(q.pop_next().unwrap().seq, 1);
        assert_eq!(q.pop_next(), None);
        assert_eq!(q.next_due_ns(), None);
    }

    #[test]
    fn same_due_breaks_ties_by_seq() {
        let mut q = CalendarQueue::new(10_000_000);
        for seq in [5u64, 1, 9, 3] {
            q.push(Item { due: 42, seq });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_next()).map(|i| i.seq).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn next_due_is_consistent_under_mutation() {
        let mut rng = SimRng::seed_from_u64(17);
        let mut q = CalendarQueue::new(2_000_000);
        let mut mirror: Vec<Item> = Vec::new();
        let mut seq = 0;
        for round in 0..500 {
            if rng.range_u64(0, 3) < 2 || mirror.is_empty() {
                let it = Item {
                    due: rng.range_u64(0, 800_000_000),
                    seq,
                };
                seq += 1;
                q.push(it);
                mirror.push(it);
            } else {
                let popped = q.pop_next().unwrap();
                let min = *mirror
                    .iter()
                    .min_by_key(|it| (it.due, it.seq))
                    .expect("mirror non-empty");
                assert_eq!(popped, min, "round {round}");
                mirror.retain(|it| it != &min);
            }
            assert_eq!(
                q.next_due_ns(),
                mirror.iter().map(|it| it.due).min(),
                "round {round}"
            );
        }
    }

    #[test]
    fn wholesale_drain_counts_in_stats() {
        let mut q = CalendarQueue::new(10_000_000);
        for i in 0..100u64 {
            q.push(Item {
                due: 10_000_000 + i * 1_000_000, // spread over ~10 buckets
                seq: i,
            });
        }
        let mut out = Vec::new();
        q.drain_due_into(u64::MAX, &mut out);
        assert_eq!(out.len(), 100);
        assert!(q.stats().buckets_drained_whole >= 9);
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_rejected() {
        let _ = CalendarQueue::<Item>::new(0);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn ragged_slot_count_rejected() {
        let _ = CalendarQueue::<Item>::with_slots(1_000, 100);
    }

    #[test]
    fn narrow_wheel_matches_oracle() {
        // A 64-slot wheel pushes most of this spread through the
        // overflow stage; pop order must still be exactly (due, seq).
        let mut rng = SimRng::seed_from_u64(23);
        let items = random_items(&mut rng, 5_000, 2_000 * 10_000_000);
        let mut q = CalendarQueue::with_slots(10_000_000, 64);
        assert_eq!(q.slot_count(), 64);
        for it in &items {
            q.push(*it);
        }
        assert!(q.stats().overflow_pushes > 0, "spread must exceed horizon");
        let mut popped = Vec::new();
        while let Some(it) = q.pop_next() {
            popped.push(it);
        }
        assert_eq!(popped, sorted(items));
    }

    #[test]
    fn narrow_wheel_drain_matches_oracle() {
        let mut rng = SimRng::seed_from_u64(29);
        let items = random_items(&mut rng, 3_000, 1_000 * 1_000_000);
        let mut q = CalendarQueue::with_slots(1_000_000, 64);
        for it in &items {
            q.push(*it);
        }
        let mut out = Vec::new();
        let mut now = 0;
        while !q.is_empty() {
            now += 7_777_777;
            q.drain_due_into(now, &mut out);
        }
        assert_eq!(out, sorted(items));
    }

    /// A distinctive width no other test uses, so pool hits observed
    /// here can only come from this test's own retired queues.
    const POOLED_WIDTH: usize = 192;

    #[test]
    fn retired_allocations_are_reused() {
        let mut q = CalendarQueue::with_slots(1_000, POOLED_WIDTH);
        for i in 0..POOLED_WIDTH as u64 {
            q.push(Item {
                due: 1_000 + i * 1_000, // one per slot
                seq: i,
            });
        }
        drop(q);
        let q2 = CalendarQueue::<Item>::with_slots(1_000, POOLED_WIDTH);
        // Pool hit: the slot vectors keep the capacity the first queue
        // grew, while a fresh construction would start at zero.
        assert!(
            q2.slots.iter().any(|s| s.capacity() > 0),
            "expected recycled slot capacity"
        );
        assert!(q2.is_empty());
        assert_eq!(q2.stats(), WheelStats::default());
        assert!(q2.occupied.iter().all(|w| *w == 0));
    }

    #[test]
    fn pool_reuse_keeps_behavior_identical() {
        let mut rng = SimRng::seed_from_u64(31);
        let items = random_items(&mut rng, 2_000, 500 * 1_000_000);
        let run = |items: &[Item]| {
            let mut q = CalendarQueue::with_slots(1_000_000, POOLED_WIDTH);
            for it in items {
                q.push(*it);
            }
            let mut out = Vec::new();
            q.drain_due_into(u64::MAX, &mut out);
            (out, q.stats())
        };
        let first = run(&items);
        let second = run(&items); // second run constructs from the pool
        assert_eq!(first, second);
        assert_eq!(first.0, sorted(items));
    }
}
