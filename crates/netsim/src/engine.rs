//! The discrete-event simulator: owns nodes, links, and the event queue.

use crate::event::{EventKind, NodeId, PortId, Scheduled};
use crate::link::{Link, LinkId, LinkParams, LinkStats};
use crate::node::{Context, FrameHook, Node, PortBinding};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::wheel::{CalendarQueue, WheelStats};
use std::collections::HashMap;

/// Event-queue bucket width: ~1 ms (power of two so the divide is a
/// shift). Quantization affects only where the calendar queue files an
/// event, never dispatch order, which stays exact `(time, seq)`.
const QUEUE_TICK_NS: u64 = 1 << 20;

/// A deterministic discrete-event network simulator.
///
/// Construction: add nodes, connect ports with links, seed initial events,
/// then [`run`](Simulator::run) / [`run_until`](Simulator::run_until). The
/// same seed and topology always produce the same event trace.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<Scheduled>,
    nodes: Vec<Option<Box<dyn Node>>>,
    links: Vec<Link>,
    ports: HashMap<(NodeId, PortId), PortBinding>,
    rng: SimRng,
    pending: Vec<Scheduled>,
    processed: u64,
    queue_peak: usize,
    frame_hook: Option<Box<dyn FrameHook>>,
}

impl Simulator {
    /// Create a simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(QUEUE_TICK_NS),
            nodes: Vec::new(),
            links: Vec::new(),
            ports: HashMap::new(),
            rng: SimRng::seed_from_u64(seed),
            pending: Vec::new(),
            processed: 0,
            queue_peak: 0,
            frame_hook: None,
        }
    }

    /// Install a passive [`FrameHook`] observing every link send.
    /// Hooks get no scheduling or RNG access, so installing one never
    /// changes the event trace.
    pub fn set_frame_hook(&mut self, hook: Box<dyn FrameHook>) {
        self.frame_hook = Some(hook);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Events currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the event-queue depth — keyed to event
    /// scheduling only (virtual time), so it is identical across runs
    /// regardless of wall-clock interleaving.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue_peak
    }

    /// Calendar-queue usage counters (pushes, overflow pushes, buckets
    /// opened/drained, peak length). Virtual-time deterministic.
    pub fn queue_stats(&self) -> WheelStats {
        self.queue.stats()
    }

    /// Fork an independent RNG stream (e.g. to pre-generate workloads).
    pub fn fork_rng(&mut self, salt: u64) -> SimRng {
        self.rng.fork(salt)
    }

    /// Register a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(Some(node));
        NodeId(self.nodes.len() - 1)
    }

    /// Connect `a`'s port `pa` to `b`'s port `pb` with the given per
    /// direction parameters (`ab` carries a→b). Panics if either port is
    /// already bound.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        ab: LinkParams,
        ba: LinkParams,
    ) -> LinkId {
        assert!(
            !self.ports.contains_key(&(a, pa)),
            "port {pa:?} of node {a:?} already connected"
        );
        assert!(
            !self.ports.contains_key(&(b, pb)),
            "port {pb:?} of node {b:?} already connected"
        );
        self.links.push(Link::new(ab, ba));
        let link = self.links.len() - 1;
        self.ports.insert(
            (a, pa),
            PortBinding {
                link,
                dir: 0,
                peer: b,
                peer_port: pb,
            },
        );
        self.ports.insert(
            (b, pb),
            PortBinding {
                link,
                dir: 1,
                peer: a,
                peer_port: pa,
            },
        );
        LinkId(link)
    }

    /// Connect with identical parameters in both directions.
    pub fn connect_sym(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        params: LinkParams,
    ) -> LinkId {
        self.connect(a, pa, b, pb, params, params)
    }

    /// Counters for one direction of a link (0 = a→b as passed to
    /// `connect`).
    pub fn link_stats(&self, link: LinkId, dir: usize) -> LinkStats {
        self.links[link.0].dirs[dir].stats
    }

    /// Seed an event from outside any node (e.g. to kick off an
    /// application at t=0).
    pub fn schedule_event(&mut self, time: SimTime, target: NodeId, kind: EventKind) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.seq += 1;
        self.queue.push(Scheduled {
            time,
            seq: self.seq,
            target,
            kind,
        });
        self.queue_peak = self.queue_peak.max(self.queue.len());
    }

    /// Borrow a node, downcast to its concrete type. Panics on a type
    /// mismatch or if called re-entrantly for a node being dispatched.
    pub fn node<T: Node>(&self, id: NodeId) -> &T {
        let node = self.nodes[id.0]
            .as_deref()
            .expect("node is currently being dispatched");
        (node as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node, downcast to its concrete type.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let node = self.nodes[id.0]
            .as_deref_mut()
            .expect("node is currently being dispatched");
        (node as &mut dyn std::any::Any)
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Process the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop_next() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.processed += 1;

        let mut node = self.nodes[ev.target.0]
            .take()
            .expect("re-entrant dispatch of a node");
        {
            let mut ctx = Context {
                now: self.now,
                node: ev.target,
                seq: &mut self.seq,
                pending: &mut self.pending,
                links: &mut self.links,
                ports: &self.ports,
                rng: &mut self.rng,
                hook: &mut self.frame_hook,
            };
            node.on_event(ev.kind, &mut ctx);
        }
        self.nodes[ev.target.0] = Some(node);
        for s in self.pending.drain(..) {
            self.queue.push(s);
        }
        self.queue_peak = self.queue_peak.max(self.queue.len());
        true
    }

    /// Run until the queue is empty or `limit` events have been processed.
    /// Returns the number of events processed by this call.
    pub fn run(&mut self, limit: u64) -> u64 {
        let start = self.processed;
        while self.processed - start < limit {
            if !self.step() {
                break;
            }
        }
        self.processed - start
    }

    /// Run until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue empties.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(due) = self.queue.next_due_ns() {
            if due > deadline.as_nanos() {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Frame;
    use crate::time::SimDuration;

    /// Test node: echoes every delivered frame back out the same port after
    /// a fixed delay, and counts everything it sees.
    struct Echo {
        delay: SimDuration,
        received: Vec<(SimTime, usize)>,
        timers: Vec<u64>,
        bounce: bool,
    }

    impl Echo {
        fn new(bounce: bool) -> Self {
            Echo {
                delay: SimDuration::from_millis(1),
                received: Vec::new(),
                timers: Vec::new(),
                bounce,
            }
        }
    }

    impl Node for Echo {
        fn on_event(&mut self, event: EventKind, ctx: &mut Context<'_>) {
            match event {
                EventKind::Deliver { port, frame } => {
                    self.received.push((ctx.now(), frame.len()));
                    if self.bounce {
                        ctx.schedule_in(self.delay, port.0 as u64);
                    }
                }
                EventKind::Timer { token } => {
                    self.timers.push(token);
                    if self.bounce {
                        let f = Frame::new(vec![0u8; 100], ctx.now());
                        ctx.send(PortId(token as usize), f);
                        self.bounce = false; // only once
                    }
                }
                EventKind::Message { .. } => {}
            }
        }
    }

    fn two_node_sim() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo::new(false)));
        let b = sim.add_node(Box::new(Echo::new(true)));
        sim.connect_sym(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkParams::new(8_000_000, SimDuration::from_micros(100), 16),
        );
        (sim, a, b)
    }

    #[test]
    fn frame_travels_and_bounces() {
        let (mut sim, a, b) = two_node_sim();
        // Inject a frame as if node a sent it: seed a Deliver on b directly
        // is easier, but we want to exercise links, so use a timer on b
        // that makes it transmit. Instead: seed a Deliver at a's port via
        // schedule_event from outside.
        sim.schedule_event(
            SimTime::ZERO,
            b,
            EventKind::Deliver {
                port: PortId(0),
                frame: Frame::new(vec![0u8; 200], SimTime::ZERO),
            },
        );
        sim.run(1000);
        // b received the injected frame at t=0, then after 1ms sent 100
        // bytes back: 100B at 8Mb/s = 100us serialization + 100us
        // propagation → arrives at a at 1.2ms.
        let bn: &Echo = sim.node(b);
        assert_eq!(bn.received, vec![(SimTime::ZERO, 200)]);
        let an: &Echo = sim.node(a);
        assert_eq!(an.received, vec![(SimTime::from_micros(1200), 100)]);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut sim, _a, _b) = two_node_sim();
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(sim.is_idle());
    }

    #[test]
    fn determinism_across_runs() {
        let trace = |seed: u64| {
            let (mut sim, _a, b) = two_node_sim();
            for i in 0..10 {
                sim.schedule_event(
                    SimTime::from_millis(i * 3),
                    b,
                    EventKind::Deliver {
                        port: PortId(0),
                        frame: Frame::new(vec![0u8; 64 + i as usize], SimTime::ZERO),
                    },
                );
            }
            let _ = seed;
            sim.run(10_000);
            let bn: &Echo = sim.node(b);
            bn.received.clone()
        };
        assert_eq!(trace(1), trace(1));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo::new(false)));
        sim.schedule_event(SimTime::from_millis(5), a, EventKind::Timer { token: 2 });
        sim.schedule_event(SimTime::from_millis(1), a, EventKind::Timer { token: 1 });
        sim.schedule_event(SimTime::from_millis(9), a, EventKind::Timer { token: 3 });
        sim.run(100);
        let an: &Echo = sim.node(a);
        assert_eq!(an.timers, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(9));
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let (mut sim, a, _b) = two_node_sim();
        let c = sim.add_node(Box::new(Echo::new(false)));
        sim.connect_sym(a, PortId(0), c, PortId(0), LinkParams::instant());
    }

    #[test]
    fn link_stats_account_traffic() {
        let (mut sim, _a, b) = two_node_sim();
        sim.schedule_event(
            SimTime::ZERO,
            b,
            EventKind::Deliver {
                port: PortId(0),
                frame: Frame::new(vec![0u8; 200], SimTime::ZERO),
            },
        );
        sim.run(1000);
        // b sent one 100-byte frame back on direction 1 (b→a).
        let stats = sim.link_stats(LinkId(0), 1);
        assert_eq!(stats.delivered_frames, 1);
        assert_eq!(stats.delivered_bytes, 100);
        assert_eq!(stats.dropped_frames, 0);
    }
}
