//! The [`Node`] trait and the [`Context`] handed to nodes during dispatch.

use crate::event::{EventKind, Frame, NodeId, PortId, Scheduled};
use crate::link::Link;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::collections::HashMap;

/// Where a node's port attaches: which link, which direction index for
/// transmission, and who is on the far end.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PortBinding {
    pub link: usize,
    /// Index into `Link::dirs` for frames sent *out* of this port.
    pub dir: usize,
    pub peer: NodeId,
    pub peer_port: PortId,
}

/// A simulated component: a host, a wireless channel, a router, a daemon.
///
/// Nodes receive [`EventKind`]s and react by sending frames, setting
/// timers, and posting control messages through the [`Context`]. All state
/// lives inside the node; the engine owns scheduling and links.
pub trait Node: Any + Send {
    /// Handle one event. Called with monotonically non-decreasing
    /// `ctx.now()` values.
    fn on_event(&mut self, event: EventKind, ctx: &mut Context<'_>);

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "node"
    }
}

/// Passive observer of frame movement through links, installed with
/// [`Simulator::set_frame_hook`](crate::Simulator::set_frame_hook).
///
/// The hook sees every [`Context::send`] outcome — accepted frames
/// with their computed arrival time, and tail-dropped frames. It must
/// not influence the simulation (it gets no scheduling or RNG access),
/// so installing one cannot change an event trace.
pub trait FrameHook: Send {
    /// A link accepted `bytes` from `from` at `sent`; delivery to `to`
    /// is scheduled for `arrival`.
    fn on_transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: &[u8],
        sent: SimTime,
        arrival: SimTime,
    );

    /// The outgoing link direction tail-dropped the frame at `now`.
    fn on_link_drop(&mut self, from: NodeId, to: NodeId, bytes: &[u8], now: SimTime) {
        let _ = (from, to, bytes, now);
    }
}

/// Engine services available to a node while it handles an event.
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) seq: &'a mut u64,
    pub(crate) pending: &'a mut Vec<Scheduled>,
    pub(crate) links: &'a mut Vec<Link>,
    pub(crate) ports: &'a HashMap<(NodeId, PortId), PortBinding>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) hook: &'a mut Option<Box<dyn FrameHook>>,
}

impl Context<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being dispatched.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Deterministic RNG shared by the simulation.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn push(&mut self, time: SimTime, target: NodeId, kind: EventKind) {
        *self.seq += 1;
        self.pending.push(Scheduled {
            time,
            seq: *self.seq,
            target,
            kind,
        });
    }

    /// Transmit `frame` out of `port`. Returns `true` if the link accepted
    /// it (it may tail-drop). Panics if the port is not connected — that is
    /// always a topology-construction bug.
    pub fn send(&mut self, port: PortId, frame: Frame) -> bool {
        let binding = *self
            .ports
            .get(&(self.node, port))
            .unwrap_or_else(|| panic!("node {:?} port {:?} is not connected", self.node, port));
        let dir = &mut self.links[binding.link].dirs[binding.dir];
        match dir.offer(self.now, frame.len()) {
            Some(arrival) => {
                if let Some(h) = self.hook.as_mut() {
                    h.on_transit(self.node, binding.peer, &frame.data, self.now, arrival);
                }
                self.push(
                    arrival,
                    binding.peer,
                    EventKind::Deliver {
                        port: binding.peer_port,
                        frame,
                    },
                );
                true
            }
            None => {
                if let Some(h) = self.hook.as_mut() {
                    h.on_link_drop(self.node, binding.peer, &frame.data, self.now);
                }
                false
            }
        }
    }

    /// Number of frames currently queued (or in service) on the outgoing
    /// direction of `port`.
    pub fn send_queue_len(&mut self, port: PortId) -> usize {
        let binding = *self
            .ports
            .get(&(self.node, port))
            .unwrap_or_else(|| panic!("node {:?} port {:?} is not connected", self.node, port));
        self.links[binding.link].dirs[binding.dir].occupancy(self.now)
    }

    /// Arrange for a `Timer { token }` event on this node after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, token: u64) {
        let t = self.now + delay;
        let node = self.node;
        self.push(t, node, EventKind::Timer { token });
    }

    /// Arrange for a `Timer { token }` event on this node at absolute time
    /// `at` (clamped to now if already past).
    pub fn schedule_at(&mut self, at: SimTime, token: u64) {
        let t = at.max(self.now);
        let node = self.node;
        self.push(t, node, EventKind::Timer { token });
    }

    /// Deliver an out-of-band control message to another node at the
    /// current instant (it is processed after the current event completes).
    pub fn post(&mut self, target: NodeId, tag: u64, data: Vec<u8>) {
        let now = self.now;
        let from = self.node;
        self.push(now, target, EventKind::Message { from, tag, data });
    }

    /// Deliver an out-of-band control message after `delay`.
    pub fn post_in(&mut self, delay: SimDuration, target: NodeId, tag: u64, data: Vec<u8>) {
        let t = self.now + delay;
        let from = self.node;
        self.push(t, target, EventKind::Message { from, tag, data });
    }
}
