//! Events, node identity, and frames carried by the engine.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Identifies a node registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies one of a node's attachment points to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// A raw frame as carried on a link: opaque bytes, plus the simulation
/// timestamp at which it was originally handed to the sending device.
///
/// Keeping frames as bytes (rather than a typed packet enum) mirrors a real
/// NIC boundary: every layer above must parse, which is exactly where the
/// paper's tracing and modulation hooks sit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Serialized frame contents (link header + payload).
    pub data: Vec<u8>,
    /// When the original sender queued this frame.
    pub born: SimTime,
}

impl Frame {
    /// Construct a frame born at `born`.
    pub fn new(data: Vec<u8>, born: SimTime) -> Self {
        Frame { data, born }
    }

    /// Size on the wire in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the frame carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// What happened, from the perspective of the receiving node.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A frame finished propagating across a link and arrived on `port`.
    Deliver {
        /// The local port the frame arrived on.
        port: PortId,
        /// The frame itself.
        frame: Frame,
    },
    /// A timer set by this node fired. `token` is caller-defined.
    Timer {
        /// Caller-defined discriminator set when the timer was scheduled.
        token: u64,
    },
    /// An out-of-band message from another node (control plane, not wire
    /// traffic): used for daemon/kernel style coordination.
    Message {
        /// The sending node.
        from: NodeId,
        /// Caller-defined discriminator.
        tag: u64,
        /// Opaque payload.
        data: Vec<u8>,
    },
}

/// An entry in the global event queue.
#[derive(Debug)]
pub(crate) struct Scheduled {
    pub time: SimTime,
    pub seq: u64,
    pub target: NodeId,
    pub kind: EventKind,
}

impl crate::wheel::WheelItem for Scheduled {
    fn due_ns(&self) -> u64 {
        self.time.as_nanos()
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

// Order by (time, seq) ascending; BinaryHeap is a max-heap so invert.
// Kept alongside the calendar queue as the reference ordering (tests
// compare wheel pop order against this).
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(t: u64, seq: u64) -> Scheduled {
        Scheduled {
            time: SimTime::from_nanos(t),
            seq,
            target: NodeId(0),
            kind: EventKind::Timer { token: 0 },
        }
    }

    #[test]
    fn heap_pops_in_time_then_seq_order() {
        let mut h = BinaryHeap::new();
        h.push(ev(10, 2));
        h.push(ev(5, 3));
        h.push(ev(10, 1));
        h.push(ev(1, 4));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| h.pop())
            .map(|e| (e.time.as_nanos(), e.seq))
            .collect();
        assert_eq!(order, vec![(1, 4), (5, 3), (10, 1), (10, 2)]);
    }

    #[test]
    fn frame_len() {
        let f = Frame::new(vec![0u8; 42], SimTime::ZERO);
        assert_eq!(f.len(), 42);
        assert!(!f.is_empty());
        assert!(Frame::new(vec![], SimTime::ZERO).is_empty());
    }
}
