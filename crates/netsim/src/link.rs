//! Point-to-point duplex links with serialization, propagation, and a
//! drop-tail queue.
//!
//! A link connects two node ports. Each direction has independent
//! parameters and state, so asymmetric links (the condition the paper's
//! symmetry assumption papers over) can be modeled directly.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifies a link registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Static parameters of one direction of a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Serialization rate in bits per second. `0` means infinitely fast
    /// (used for host-to-channel attachments whose delay the channel owns).
    pub bandwidth_bps: u64,
    /// Propagation delay applied after serialization completes.
    pub propagation: SimDuration,
    /// Maximum number of frames queued awaiting serialization before the
    /// link tail-drops. `usize::MAX` disables dropping.
    pub queue_frames: usize,
}

impl LinkParams {
    /// An infinitely fast, zero-delay attachment.
    pub fn instant() -> Self {
        LinkParams {
            bandwidth_bps: 0,
            propagation: SimDuration::ZERO,
            queue_frames: usize::MAX,
        }
    }

    /// A classic 10 Mb/s Ethernet segment with a short propagation delay —
    /// the modulation substrate used throughout the paper's experiments.
    pub fn ethernet_10mbps() -> Self {
        LinkParams {
            bandwidth_bps: 10_000_000,
            propagation: SimDuration::from_micros(50),
            queue_frames: 64,
        }
    }

    /// General constructor.
    pub fn new(bandwidth_bps: u64, propagation: SimDuration, queue_frames: usize) -> Self {
        LinkParams {
            bandwidth_bps,
            propagation,
            queue_frames,
        }
    }
}

/// Counters for one direction of a link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Frames accepted and delivered (scheduled for arrival).
    pub delivered_frames: u64,
    /// Bytes accepted and delivered.
    pub delivered_bytes: u64,
    /// Frames tail-dropped because the queue was full.
    pub dropped_frames: u64,
}

/// Dynamic state of one direction.
#[derive(Debug)]
pub(crate) struct Direction {
    pub params: LinkParams,
    pub stats: LinkStats,
    /// Transmitter is busy until this instant.
    busy_until: SimTime,
    /// Departure times of frames currently queued or in service, used to
    /// compute instantaneous queue occupancy lazily.
    in_flight: VecDeque<SimTime>,
}

impl Direction {
    pub fn new(params: LinkParams) -> Self {
        Direction {
            params,
            stats: LinkStats::default(),
            busy_until: SimTime::ZERO,
            in_flight: VecDeque::new(),
        }
    }

    /// Offer a frame of `bytes` at time `now`. Returns the arrival time at
    /// the far end, or `None` if the frame was tail-dropped.
    pub fn offer(&mut self, now: SimTime, bytes: usize) -> Option<SimTime> {
        // Lazily drain entries that have already departed.
        while matches!(self.in_flight.front(), Some(&d) if d <= now) {
            self.in_flight.pop_front();
        }
        if self.in_flight.len() >= self.params.queue_frames {
            self.stats.dropped_frames += 1;
            return None;
        }
        let start = self.busy_until.max(now);
        let depart = start + SimDuration::transmission(bytes, self.params.bandwidth_bps);
        self.busy_until = depart;
        self.in_flight.push_back(depart);
        self.stats.delivered_frames += 1;
        self.stats.delivered_bytes += bytes as u64;
        Some(depart + self.params.propagation)
    }

    /// Current number of frames queued or in service at `now`.
    pub fn occupancy(&mut self, now: SimTime) -> usize {
        while matches!(self.in_flight.front(), Some(&d) if d <= now) {
            self.in_flight.pop_front();
        }
        self.in_flight.len()
    }
}

/// A duplex link: direction 0 carries a→b traffic, direction 1 carries b→a.
#[derive(Debug)]
pub(crate) struct Link {
    pub dirs: [Direction; 2],
}

impl Link {
    pub fn new(ab: LinkParams, ba: LinkParams) -> Self {
        Link {
            dirs: [Direction::new(ab), Direction::new(ba)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(bps: u64, prop_us: u64, q: usize) -> LinkParams {
        LinkParams::new(bps, SimDuration::from_micros(prop_us), q)
    }

    #[test]
    fn serialization_and_propagation() {
        // 1000 bytes at 8 Mb/s = 1 ms serialization + 100 us propagation.
        let mut d = Direction::new(params(8_000_000, 100, 16));
        let arrival = d.offer(SimTime::ZERO, 1000).unwrap();
        assert_eq!(arrival, SimTime::from_micros(1100));
    }

    #[test]
    fn back_to_back_frames_queue() {
        let mut d = Direction::new(params(8_000_000, 0, 16));
        let a1 = d.offer(SimTime::ZERO, 1000).unwrap();
        let a2 = d.offer(SimTime::ZERO, 1000).unwrap();
        assert_eq!(a1, SimTime::from_millis(1));
        assert_eq!(a2, SimTime::from_millis(2));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut d = Direction::new(params(8_000_000, 0, 16));
        let _ = d.offer(SimTime::ZERO, 1000).unwrap();
        // Offered after the first departed: no queueing delay.
        let a = d.offer(SimTime::from_millis(5), 1000).unwrap();
        assert_eq!(a, SimTime::from_millis(6));
    }

    #[test]
    fn tail_drop_when_queue_full() {
        let mut d = Direction::new(params(8_000_000, 0, 2));
        assert!(d.offer(SimTime::ZERO, 1000).is_some());
        assert!(d.offer(SimTime::ZERO, 1000).is_some());
        assert!(d.offer(SimTime::ZERO, 1000).is_none());
        assert_eq!(d.stats.dropped_frames, 1);
        assert_eq!(d.stats.delivered_frames, 2);
        // After the queue drains, frames are accepted again.
        assert!(d.offer(SimTime::from_secs(1), 1000).is_some());
    }

    #[test]
    fn instant_link_is_transparent() {
        let mut d = Direction::new(LinkParams::instant());
        let a = d.offer(SimTime::from_secs(3), 100_000).unwrap();
        assert_eq!(a, SimTime::from_secs(3));
    }

    #[test]
    fn occupancy_tracks_queue() {
        let mut d = Direction::new(params(8_000_000, 0, 16));
        assert_eq!(d.occupancy(SimTime::ZERO), 0);
        d.offer(SimTime::ZERO, 1000);
        d.offer(SimTime::ZERO, 1000);
        assert_eq!(d.occupancy(SimTime::ZERO), 2);
        assert_eq!(d.occupancy(SimTime::from_millis(1)), 1);
        assert_eq!(d.occupancy(SimTime::from_millis(2)), 0);
    }
}
