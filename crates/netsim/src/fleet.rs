//! Fleet event core: one calendar queue driving N independent mobile
//! clients.
//!
//! The single-client [`Simulator`](crate::engine::Simulator) dispatches
//! through boxed [`Node`](crate::node::Node) trait objects — the right
//! shape for a handful of richly-typed nodes, but at fleet scale
//! (10k clients × a Porter walk each) the per-event indirection, the
//! per-node allocations, and above all per-client *queues* dominate.
//! This module is the fleet-shaped counterpart:
//!
//! * **one** [`CalendarQueue`] carries every client's events — a
//!   [`FleetEvent`] is a flat `(due_ns, seq, client, kind)` record, so
//!   scheduling is one slot push with no allocation;
//! * dispatch is a caller-supplied `FnMut` over the event — clients are
//!   plain indices into the caller's own state arrays (struct-of-arrays
//!   at the call site), not trait objects;
//! * packet bookkeeping lives in a [`PacketStore`]: parallel columns
//!   plus a free list, so a fleet's in-flight packets occupy a few
//!   contiguous arrays with O(1) alloc/release and an exact live/peak
//!   account (bounded memory is a headline requirement, so the store
//!   *is* the arena — rows are recycled, never leaked);
//! * shared infrastructure (base stations, the wired core) is a
//!   [`StationTable`] of *static* per-station load factors computed
//!   from the full fleet layout. Service time inflates with station
//!   population, but deliberately not with instantaneous queue state:
//!   runtime cross-client coupling would make per-client results
//!   depend on which clients share an engine, and shard-invariance
//!   (byte-identical output at 1/2/8 shards) is the property the fleet
//!   runner is built on. Station counters are commutative sums, so
//!   per-shard tables merge exactly.
//!
//! Determinism: pop order is exact `(due_ns, seq)`. Two clients'
//! events at the same instant dispatch in schedule order, which can
//! differ between shard layouts — safe precisely because handlers may
//! only touch their own client's state and commutative aggregates.

use crate::wheel::{CalendarQueue, WheelItem, WheelStats};

/// One scheduled fleet event: when, for whom, and what.
#[derive(Debug, Clone, Copy)]
pub struct FleetEvent<K> {
    /// Absolute due time in nanoseconds.
    pub due_ns: u64,
    /// Queue-wide tie-break (schedule order).
    pub seq: u64,
    /// Owning client index.
    pub client: u32,
    /// Caller-defined payload.
    pub kind: K,
}

impl<K: 'static> WheelItem for FleetEvent<K> {
    fn due_ns(&self) -> u64 {
        self.due_ns
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Engine-queue bucket width: ~1 ms, matching the single-client
/// simulator's quantum.
const FLEET_TICK_NS: u64 = 1 << 20;

/// A deterministic multi-client event core over one calendar queue.
///
/// ```
/// use netsim::fleet::FleetSim;
///
/// let mut sim: FleetSim<u32> = FleetSim::new();
/// sim.schedule(1_000, 0, 7);
/// sim.schedule(500, 1, 9);
/// let mut seen = Vec::new();
/// sim.run_until(10_000, &mut |ev, sim| {
///     seen.push((ev.client, ev.kind));
///     if ev.kind == 9 {
///         sim.schedule(sim.now_ns() + 100, ev.client, 10);
///     }
/// });
/// assert_eq!(seen, vec![(1, 9), (1, 10), (0, 7)]);
/// assert_eq!(sim.now_ns(), 10_000);
/// ```
pub struct FleetSim<K: 'static> {
    now_ns: u64,
    seq: u64,
    queue: CalendarQueue<FleetEvent<K>>,
    processed: u64,
    queue_peak: usize,
}

impl<K: 'static> Default for FleetSim<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: 'static> FleetSim<K> {
    /// A fleet engine with the default wheel geometry (~1 ms tick,
    /// 4096 slots: a ~4.3 s live window).
    pub fn new() -> Self {
        FleetSim {
            now_ns: 0,
            seq: 0,
            queue: CalendarQueue::new(FLEET_TICK_NS),
            processed: 0,
            queue_peak: 0,
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Events currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the queue depth. Depends on how clients
    /// interleave in *this* engine, so it is per-shard diagnostic
    /// data — never part of shard-invariant output.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue_peak
    }

    /// Calendar-queue usage counters for this engine.
    pub fn queue_stats(&self) -> WheelStats {
        self.queue.stats()
    }

    /// Schedule `kind` for `client` at absolute time `due_ns`. Panics
    /// on scheduling into the past.
    pub fn schedule(&mut self, due_ns: u64, client: u32, kind: K) {
        assert!(due_ns >= self.now_ns, "cannot schedule into the past");
        self.seq += 1;
        self.queue.push(FleetEvent {
            due_ns,
            seq: self.seq,
            client,
            kind,
        });
        self.queue_peak = self.queue_peak.max(self.queue.len());
    }

    /// Dispatch events in `(due, seq)` order until the queue is empty
    /// or the next event lies beyond `deadline_ns`; the clock then
    /// advances to the deadline. The handler receives each event plus
    /// the engine, so it can schedule follow-ups directly.
    pub fn run_until<F>(&mut self, deadline_ns: u64, handler: &mut F)
    where
        F: FnMut(FleetEvent<K>, &mut Self),
    {
        self.run_until_limit(deadline_ns, u64::MAX, handler);
    }

    /// [`run_until`](Self::run_until) with an event budget: dispatch at
    /// most `limit` events, returning `true` if the budget ran out
    /// first (the chaos kill/restart protocol aborts probe runs this
    /// way).
    pub fn run_until_limit<F>(&mut self, deadline_ns: u64, limit: u64, handler: &mut F) -> bool
    where
        F: FnMut(FleetEvent<K>, &mut Self),
    {
        self.run_until_sampled_limit(deadline_ns, 0, limit, &mut |step, sim| {
            if let FleetStep::Event(ev) = step {
                handler(ev, sim);
            }
        })
    }

    /// [`run_until`](Self::run_until) with telemetry sampling:
    /// interleave [`FleetStep::Sample`] callbacks at every multiple of
    /// `interval_ns` up to `deadline_ns` (0 disables sampling).
    pub fn run_until_sampled<F>(&mut self, deadline_ns: u64, interval_ns: u64, handler: &mut F)
    where
        F: FnMut(FleetStep<K>, &mut Self),
    {
        self.run_until_sampled_limit(deadline_ns, interval_ns, u64::MAX, handler);
    }

    /// The full run loop: dispatch events in `(due, seq)` order up to
    /// `deadline_ns` under an event budget of `limit`, delivering a
    /// [`FleetStep::Sample`] at every virtual boundary `t` that is a
    /// positive multiple of `interval_ns` (0 disables sampling).
    ///
    /// **Boundary rule** — the sample at boundary `t` is delivered
    /// after every event with `due < t` and before any event with
    /// `due >= t`, with the clock advanced to `t`. A client therefore
    /// contributes identically to a sample no matter which shard's
    /// engine hosts it: this is what makes merged telemetry series
    /// byte-identical across shard layouts. Trailing boundaries `<=
    /// deadline_ns` past the last event are still delivered.
    ///
    /// Samples do **not** count against `limit` and do not increment
    /// [`events_processed`](Self::events_processed), so enabling
    /// telemetry cannot shift the chaos protocol's event-budget kill
    /// points. Returns `true` if the event budget ran out first (no
    /// trailing samples are delivered in that case — the aborted probe
    /// run's telemetry is discarded anyway).
    pub fn run_until_sampled_limit<F>(
        &mut self,
        deadline_ns: u64,
        interval_ns: u64,
        limit: u64,
        handler: &mut F,
    ) -> bool
    where
        F: FnMut(FleetStep<K>, &mut Self),
    {
        let start = self.processed;
        // Next boundary strictly after `now`; u64::MAX = disabled.
        let mut next_sample = self
            .now_ns
            .checked_div(interval_ns)
            .map_or(u64::MAX, |q| (q + 1).saturating_mul(interval_ns));
        while let Some(due) = self.queue.next_due_ns() {
            if due > deadline_ns {
                break;
            }
            while next_sample != u64::MAX && next_sample <= due && next_sample <= deadline_ns {
                if self.now_ns < next_sample {
                    self.now_ns = next_sample;
                }
                handler(FleetStep::Sample(next_sample), self);
                next_sample = next_sample.saturating_add(interval_ns);
            }
            if self.processed - start >= limit {
                return true;
            }
            let ev = self.queue.pop_next().expect("next_due_ns saw an item");
            debug_assert!(ev.due_ns >= self.now_ns, "event queue went backwards");
            self.now_ns = ev.due_ns;
            self.processed += 1;
            handler(FleetStep::Event(ev), self);
            self.queue_peak = self.queue_peak.max(self.queue.len());
        }
        while next_sample != u64::MAX && next_sample <= deadline_ns {
            if self.now_ns < next_sample {
                self.now_ns = next_sample;
            }
            handler(FleetStep::Sample(next_sample), self);
            next_sample = next_sample.saturating_add(interval_ns);
        }
        if self.now_ns < deadline_ns {
            self.now_ns = deadline_ns;
        }
        false
    }
}

/// One step of a sampled run loop
/// ([`FleetSim::run_until_sampled_limit`]): either a dispatched engine
/// event or a telemetry sample boundary.
#[derive(Debug)]
pub enum FleetStep<K> {
    /// An engine event, dispatched in `(due, seq)` order.
    Event(FleetEvent<K>),
    /// A telemetry boundary at this virtual time: every event with an
    /// earlier due time has been dispatched, none with a later-or-equal
    /// one has.
    Sample(u64),
}

/// Struct-of-arrays storage for a fleet's in-flight packets.
///
/// Rows are addressed by a `u32` id and recycled through a free list:
/// the arrays only ever grow to the *peak concurrent* packet count, not
/// the total sent — the arena that keeps a 10k-client run's packet
/// memory bounded. Hot per-packet fields live in parallel columns so a
/// scan touches only the column it needs.
#[derive(Debug, Default)]
pub struct PacketStore {
    client: Vec<u32>,
    size: Vec<u32>,
    sent_ns: Vec<u64>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    total_allocated: u64,
}

impl PacketStore {
    /// An empty store.
    pub fn new() -> Self {
        PacketStore::default()
    }

    /// Allocate a row for a packet, reusing a released one if
    /// available. Returns the packet id.
    pub fn alloc(&mut self, client: u32, size: u32, sent_ns: u64) -> u32 {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.total_allocated += 1;
        if let Some(id) = self.free.pop() {
            let i = id as usize;
            self.client[i] = client;
            self.size[i] = size;
            self.sent_ns[i] = sent_ns;
            id
        } else {
            let id = self.client.len() as u32;
            self.client.push(client);
            self.size.push(size);
            self.sent_ns.push(sent_ns);
            id
        }
    }

    /// Release a row back to the free list. The caller must not use
    /// the id afterwards (debug builds poison the row).
    pub fn release(&mut self, id: u32) {
        debug_assert!((id as usize) < self.client.len());
        self.live -= 1;
        if cfg!(debug_assertions) {
            self.client[id as usize] = u32::MAX;
        }
        self.free.push(id);
    }

    /// Owning client of a live packet.
    pub fn client(&self, id: u32) -> u32 {
        self.client[id as usize]
    }

    /// Wire size of a live packet in bytes.
    pub fn size(&self, id: u32) -> u32 {
        self.size[id as usize]
    }

    /// Send timestamp of a live packet.
    pub fn sent_ns(&self, id: u32) -> u64 {
        self.sent_ns[id as usize]
    }

    /// Packets currently in flight.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of concurrent in-flight packets — the bound on
    /// the arena's row count.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Rows ever grown (allocated array length).
    pub fn rows(&self) -> usize {
        self.client.len()
    }

    /// Packets ever allocated (total traffic, not a memory bound).
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }
}

/// Shared base stations and the wired core, as static per-station load
/// factors plus commutative traffic counters.
///
/// The load factor models contention on the shared medium: a station
/// serving `p` clients inflates per-byte service time by
/// `1 + alpha·(p − 1)`. It is computed once from the *full* fleet
/// layout — never from runtime queue state — so a client's delays are
/// identical no matter which shard simulates it, and per-shard counter
/// tables merge by addition into exactly the serial table.
#[derive(Debug, Clone)]
pub struct StationTable {
    load: Vec<f64>,
    frames: Vec<u64>,
    bytes: Vec<u64>,
}

impl StationTable {
    /// Build the table for a fleet of `clients` assigned round-robin
    /// (`station_of(c) = c % stations`), with service inflation
    /// `alpha` per additional client on a station.
    pub fn for_fleet(clients: u32, stations: u32, alpha: f64) -> Self {
        assert!(stations > 0, "at least one station");
        let stations = stations as usize;
        let mut population = vec![0u64; stations];
        // Round-robin population without the O(clients) loop.
        let base = clients as u64 / stations as u64;
        let rem = (clients as u64 % stations as u64) as usize;
        for (s, p) in population.iter_mut().enumerate() {
            *p = base + u64::from(s < rem);
        }
        let load = population
            .iter()
            .map(|&p| 1.0 + alpha * (p.saturating_sub(1)) as f64)
            .collect();
        StationTable {
            load,
            frames: vec![0; stations],
            bytes: vec![0; stations],
        }
    }

    /// Number of stations.
    pub fn stations(&self) -> usize {
        self.load.len()
    }

    /// Station serving `client` (round-robin assignment).
    pub fn station_of(&self, client: u32) -> u32 {
        client % self.load.len() as u32
    }

    /// Load factor of a station (≥ 1).
    pub fn load(&self, station: u32) -> f64 {
        self.load[station as usize]
    }

    /// Service time for `size` bytes through `station` at a base
    /// per-byte cost, inflated by the station's load factor.
    pub fn service_ns(&self, station: u32, size: u32, base_ns_per_byte: f64) -> u64 {
        (size as f64 * base_ns_per_byte * self.load[station as usize]) as u64
    }

    /// Account one frame forwarded through `station`.
    pub fn record(&mut self, station: u32, size: u32) {
        self.frames[station as usize] += 1;
        self.bytes[station as usize] += size as u64;
    }

    /// Frames forwarded through a station.
    pub fn frames(&self, station: u32) -> u64 {
        self.frames[station as usize]
    }

    /// Bytes forwarded through a station.
    pub fn bytes(&self, station: u32) -> u64 {
        self.bytes[station as usize]
    }

    /// Add another shard's counters into this table (loads must match:
    /// both tables were built from the same full-fleet layout).
    pub fn merge(&mut self, other: &StationTable) {
        assert_eq!(self.load.len(), other.load.len(), "station count mismatch");
        for (a, b) in self.frames.iter_mut().zip(&other.frames) {
            *a += b;
        }
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b;
        }
    }

    /// Total frames across all stations.
    pub fn total_frames(&self) -> u64 {
        self.frames.iter().sum()
    }

    /// Total bytes across all stations.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_dispatch_in_due_seq_order_across_clients() {
        let mut sim: FleetSim<u8> = FleetSim::new();
        sim.schedule(300, 2, 0);
        sim.schedule(100, 0, 0);
        sim.schedule(100, 1, 0); // same due: schedule order breaks the tie
        let mut order = Vec::new();
        sim.run_until(1_000, &mut |ev, _| order.push((ev.due_ns, ev.client)));
        assert_eq!(order, vec![(100, 0), (100, 1), (300, 2)]);
        assert_eq!(sim.events_processed(), 3);
        assert_eq!(sim.now_ns(), 1_000);
    }

    #[test]
    fn handler_can_chain_events() {
        let mut sim: FleetSim<u32> = FleetSim::new();
        sim.schedule(10, 5, 0);
        let mut hops = 0u32;
        sim.run_until(10_000, &mut |ev, sim| {
            hops += 1;
            if ev.kind < 3 {
                sim.schedule(sim.now_ns() + 10, ev.client, ev.kind + 1);
            }
        });
        assert_eq!(hops, 4);
        assert!(sim.queue_depth() == 0);
    }

    #[test]
    fn event_budget_aborts_mid_run() {
        let mut sim: FleetSim<u8> = FleetSim::new();
        for i in 0..10u64 {
            sim.schedule(i * 100, 0, 0);
        }
        let killed = sim.run_until_limit(u64::MAX, 4, &mut |_, _| {});
        assert!(killed);
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(sim.queue_depth(), 6);
        let killed = sim.run_until_limit(u64::MAX, u64::MAX, &mut |_, _| {});
        assert!(!killed);
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn samples_land_between_events_on_the_boundary_rule() {
        let mut sim: FleetSim<u8> = FleetSim::new();
        sim.schedule(50, 0, 0);
        sim.schedule(100, 0, 0); // due exactly at a boundary
        sim.schedule(150, 0, 0);
        sim.schedule(320, 0, 0);
        let mut steps = Vec::new();
        sim.run_until_sampled(400, 100, &mut |step, sim| match step {
            FleetStep::Event(ev) => steps.push(('e', ev.due_ns, sim.events_processed())),
            FleetStep::Sample(t) => steps.push(('s', t, sim.events_processed())),
        });
        // Boundary t sits after events due < t, before events due >= t
        // (the event at exactly 100 lands after sample 100); trailing
        // boundaries up to the deadline are flushed.
        assert_eq!(
            steps,
            vec![
                ('e', 50, 1),
                ('s', 100, 1),
                ('e', 100, 2),
                ('e', 150, 3),
                ('s', 200, 3),
                ('s', 300, 3),
                ('e', 320, 4),
                ('s', 400, 4),
            ]
        );
        assert_eq!(sim.now_ns(), 400);
    }

    #[test]
    fn samples_do_not_consume_the_event_budget() {
        let mut sim: FleetSim<u8> = FleetSim::new();
        for i in 1..=6u64 {
            sim.schedule(i * 100, 0, 0);
        }
        let mut samples = 0;
        let mut events = 0;
        let killed = sim.run_until_sampled_limit(u64::MAX, 50, 4, &mut |step, _| match step {
            FleetStep::Sample(_) => samples += 1,
            FleetStep::Event(_) => events += 1,
        });
        assert!(killed);
        assert_eq!(events, 4, "kill point identical to the unsampled run");
        assert_eq!(sim.events_processed(), 4);
        assert!(samples >= 7, "boundaries up to the 4th event sampled");
    }

    #[test]
    fn zero_interval_disables_sampling() {
        let mut sim: FleetSim<u8> = FleetSim::new();
        sim.schedule(10, 0, 0);
        let mut samples = 0;
        sim.run_until_sampled(1_000, 0, &mut |step, _| {
            if matches!(step, FleetStep::Sample(_)) {
                samples += 1;
            }
        });
        assert_eq!(samples, 0);
        assert_eq!(sim.now_ns(), 1_000);
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn packet_store_recycles_rows() {
        let mut s = PacketStore::new();
        let a = s.alloc(1, 106, 10);
        let b = s.alloc(2, 542, 20);
        assert_eq!((s.client(a), s.size(b)), (1, 542));
        assert_eq!(s.live(), 2);
        s.release(a);
        let c = s.alloc(3, 106, 30);
        assert_eq!(c, a, "released row is reused");
        assert_eq!(s.rows(), 2, "arena bounded by peak live");
        assert_eq!(s.peak_live(), 2);
        assert_eq!(s.total_allocated(), 3);
        assert_eq!(s.sent_ns(c), 30);
    }

    #[test]
    fn station_loads_come_from_the_full_fleet_layout() {
        let t = StationTable::for_fleet(10, 4, 0.1);
        // 10 clients round-robin over 4 stations: populations 3,3,2,2.
        assert_eq!(t.load(0), 1.0 + 0.1 * 2.0);
        assert_eq!(t.load(2), 1.0 + 0.1 * 1.0);
        assert_eq!(t.station_of(6), 2);
        // Load factor inflates service time.
        assert_eq!(t.service_ns(2, 1000, 80.0), (1000.0 * 80.0 * 1.1) as u64);
    }

    #[test]
    fn station_tables_merge_by_addition() {
        let mut a = StationTable::for_fleet(8, 2, 0.05);
        let mut b = StationTable::for_fleet(8, 2, 0.05);
        a.record(0, 100);
        b.record(0, 50);
        b.record(1, 25);
        a.merge(&b);
        assert_eq!(a.frames(0), 2);
        assert_eq!(a.bytes(0), 150);
        assert_eq!(a.bytes(1), 25);
        assert_eq!(a.total_bytes(), 175);
        assert_eq!(a.total_frames(), 3);
    }
}
