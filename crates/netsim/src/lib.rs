//! # netsim — deterministic discrete-event network simulation engine
//!
//! This crate is the substrate on which the trace-modulation reproduction
//! runs. It provides:
//!
//! * virtual time ([`SimTime`], [`SimDuration`]) — experiments run in
//!   simulated nanoseconds, deterministically and far faster than real
//!   time;
//! * an event queue and dispatcher ([`Simulator`]) with strict
//!   `(time, sequence)` ordering, so identical seeds reproduce identical
//!   runs;
//! * the [`Node`] trait — hosts, wireless channels, and routers are nodes
//!   that exchange byte [`Frame`]s and set timers via a [`Context`];
//! * duplex [links](link::LinkParams) with serialization, propagation, and
//!   drop-tail queues;
//! * deterministic randomness ([`SimRng`]) and statistics helpers
//!   ([`stats`]).
//!
//! The design follows the paper's requirement of a *controlled and
//! repeatable* environment: all nondeterminism is seeded, and virtual time
//! removes wall-clock jitter entirely.
//!
//! ```
//! use netsim::{Simulator, SimTime, EventKind, Node, Context};
//!
//! struct Ticker(u32);
//! impl Node for Ticker {
//!     fn on_event(&mut self, ev: EventKind, ctx: &mut Context<'_>) {
//!         if let EventKind::Timer { .. } = ev {
//!             self.0 += 1;
//!             if self.0 < 3 {
//!                 ctx.schedule_in(netsim::SimDuration::from_secs(1), 0);
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let t = sim.add_node(Box::new(Ticker(0)));
//! sim.schedule_event(SimTime::ZERO, t, EventKind::Timer { token: 0 });
//! sim.run(100);
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! assert_eq!(sim.node::<Ticker>(t).0, 3);
//! ```

#![warn(missing_docs)]

mod engine;
mod event;
pub mod fleet;
pub mod link;
mod node;
mod rng;
pub mod stats;
mod time;
pub mod wheel;

pub use engine::Simulator;
pub use event::{EventKind, Frame, NodeId, PortId};
pub use link::{LinkId, LinkParams, LinkStats};
pub use node::{Context, FrameHook, Node};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use wheel::{CalendarQueue, WheelItem, WheelStats};
