//! Statistics helpers shared by experiments: running summaries, time
//! series with range reduction (the paper's per-checkpoint min/max bars),
//! and simple histograms (Figure 5).

use crate::time::SimTime;

/// Online mean / standard deviation / extrema (Welford's algorithm),
/// with optional sample retention for exact percentiles.
///
/// [`new`](Summary::new) keeps no samples — O(1) memory, the mode every
/// pre-existing caller gets. [`keeping_samples`](Summary::keeping_samples)
/// (and [`of`](Summary::of)) additionally retain each observation so
/// [`percentile`](Summary::percentile) / [`p50`](Summary::p50) /
/// [`p95`](Summary::p95) / [`p99`](Summary::p99) are exact.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    samples: Option<Vec<f64>>,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: None,
        }
    }

    /// Empty summary that retains every observation, enabling exact
    /// percentile queries at the cost of O(n) memory.
    pub fn keeping_samples() -> Self {
        Summary {
            samples: Some(Vec::new()),
            ..Summary::new()
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if let Some(s) = &mut self.samples {
            s.push(x);
        }
    }

    /// Build a summary from a slice (samples are retained, so
    /// percentiles are available).
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Summary::keeping_samples();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// True when observations are retained for percentile queries.
    pub fn retains_samples(&self) -> bool {
        self.samples.is_some()
    }

    /// The retained observations, in insertion order (`None` unless
    /// built with [`keeping_samples`](Summary::keeping_samples) or
    /// [`of`](Summary::of)).
    pub fn samples(&self) -> Option<&[f64]> {
        self.samples.as_deref()
    }

    /// Exact percentile (`p` in 0–100) with linear interpolation
    /// between closest ranks. `None` when empty or when samples were
    /// not retained.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let s = self.samples.as_ref()?;
        if s.is_empty() {
            return None;
        }
        let mut sorted = s.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
    }

    /// Median (0 when empty or samples not retained).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0).unwrap_or(0.0)
    }

    /// 95th percentile (0 when empty or samples not retained).
    pub fn p95(&self) -> f64 {
        self.percentile(95.0).unwrap_or(0.0)
    }

    /// 99th percentile (0 when empty or samples not retained).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0).unwrap_or(0.0)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator; 0 for fewer than two
    /// observations). This matches the parenthesized figures in the
    /// paper's tables.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A `(time, value)` series with helpers for bucketing into normalized
/// intervals — used to combine multiple trials of a scenario onto a common
/// checkpoint axis, as in Figures 2–4.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Empty series.
    pub fn new() -> Self {
        Series { points: Vec::new() }
    }

    /// Append an observation; times must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "series must be time-ordered");
        }
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Split the series into `buckets` equal spans of *normalized* time
    /// (position along the trace, 0..1) and summarize each — this is the
    /// paper's normalization of inter-checkpoint intervals across trials.
    /// Empty buckets yield empty summaries.
    pub fn normalized_buckets(&self, buckets: usize) -> Vec<Summary> {
        let mut out = vec![Summary::new(); buckets];
        if self.points.is_empty() || buckets == 0 {
            return out;
        }
        let t0 = self.points[0].0.as_nanos();
        let t1 = self.points[self.points.len() - 1].0.as_nanos();
        let span = (t1 - t0).max(1);
        for &(t, v) in &self.points {
            let frac = (t.as_nanos() - t0) as f64 / span as f64;
            let idx = ((frac * buckets as f64) as usize).min(buckets - 1);
            out[idx].add(v);
        }
        out
    }
}

/// Fixed-width histogram over `[lo, hi)`; out-of-range values clamp into
/// the first/last bin. Used for the Chatterbox distributions (Figure 5).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins across `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = if x < self.lo {
            0
        } else {
            (((x - self.lo) / w) as usize).min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate percentile (`p` in 0–100) from the bin counts, with
    /// linear interpolation inside the containing bin. `None` when no
    /// observations have been recorded. Accuracy is bounded by the bin
    /// width; use [`Summary::percentile`] when exactness matters.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (p / 100.0).clamp(0.0, 1.0) * self.total as f64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut seen = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = seen + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - seen) / c as f64
                };
                return Some(self.lo + w * (i as f64 + frac.clamp(0.0, 1.0)));
            }
            seen = next;
        }
        Some(self.hi)
    }

    /// `(bin_center, fraction_of_total)` pairs for display.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + w * (i as f64 + 0.5);
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let e = Summary::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.stddev(), 0.0);
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn summary_percentiles_exact_with_samples() {
        let s = Summary::of(&(1..=100).map(f64::from).collect::<Vec<_>>());
        assert!((s.p50() - 50.5).abs() < 1e-12);
        assert!((s.p95() - 95.05).abs() < 1e-9);
        assert!((s.p99() - 99.01).abs() < 1e-9);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.samples().map(<[f64]>::len), Some(100));
    }

    #[test]
    fn summary_without_samples_has_no_percentiles() {
        let mut s = Summary::new();
        s.add(5.0);
        assert!(!s.retains_samples());
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.p95(), 0.0);
        assert_eq!(Summary::keeping_samples().percentile(50.0), None);
    }

    #[test]
    fn summary_streaming_moments_unaffected_by_retention() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let with = Summary::of(&xs);
        let mut without = Summary::new();
        for &x in &xs {
            without.add(x);
        }
        assert_eq!(with.mean().to_bits(), without.mean().to_bits());
        assert_eq!(with.stddev().to_bits(), without.stddev().to_bits());
        assert_eq!(with.min().to_bits(), without.min().to_bits());
        assert_eq!(with.max().to_bits(), without.max().to_bits());
    }

    #[test]
    fn histogram_percentile_interpolates() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.add(i as f64 + 0.5);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((45.0..=55.0).contains(&p50), "p50 {p50}");
        let p95 = h.percentile(95.0).unwrap();
        assert!((90.0..=100.0).contains(&p95), "p95 {p95}");
        assert_eq!(Histogram::new(0.0, 1.0, 4).percentile(50.0), None);
    }

    #[test]
    fn series_bucketing_normalizes_time() {
        let mut s = Series::new();
        for i in 0..100u64 {
            s.push(SimTime::from_millis(i * 10), i as f64);
        }
        let buckets = s.normalized_buckets(4);
        assert_eq!(buckets.len(), 4);
        // First bucket covers roughly values 0..25.
        assert!(buckets[0].max() <= 25.0);
        assert!(buckets[3].min() >= 74.0);
        let n: u64 = buckets.iter().map(|b| b.count()).sum();
        assert_eq!(n, 100);
    }

    #[test]
    fn series_bucketing_edge_cases() {
        let s = Series::new();
        assert_eq!(s.normalized_buckets(3).len(), 3);
        let mut one = Series::new();
        one.push(SimTime::ZERO, 1.0);
        let b = one.normalized_buckets(2);
        assert_eq!(b[0].count(), 1);
    }

    #[test]
    fn histogram_clamps_and_normalizes() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.5, 3.0, 9.9, 42.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.bins()[0], 2); // -1.0 clamped, 0.5
        assert_eq!(h.bins()[4], 2); // 9.9, 42.0 clamped
        let norm = h.normalized();
        let total: f64 = norm.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(norm[0].0, 1.0); // center of first bin
    }
}
