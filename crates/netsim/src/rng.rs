//! Deterministic random number generation for simulations.
//!
//! Every source of randomness in an experiment flows through a [`SimRng`]
//! seeded from the experiment's trial number, so identical seeds reproduce
//! identical packet-level behaviour — the property the paper calls
//! "controlled and repeatable".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with the handful of distributions the simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream, keyed by `salt`.
    ///
    /// Used to give each host / channel / workload its own stream so adding
    /// one consumer does not perturb another's sequence.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed_from_u64(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform u64.
    pub fn u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; 1-u avoids ln(0).
        let u: f64 = self.f64();
        -mean * (1.0 - u).ln()
    }

    /// Normally distributed value (Box–Muller), mean `mu`, std dev `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return mu;
        }
        let u1: f64 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2: f64 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mu + sigma * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        for _ in 0..10 {
            assert_eq!(fa.u64(), fb.u64());
        }
        let mut other = SimRng::seed_from_u64(7).fork(2);
        // Different salt should (overwhelmingly) give a different stream.
        let same = (0..10).all(|_| {
            let x = SimRng::seed_from_u64(7).fork(1).u64();
            x == other.u64()
        });
        assert!(!same);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exp_mean_reasonable() {
        let mut r = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.1, "observed {observed}");
        assert_eq!(r.exp(0.0), 0.0);
    }

    #[test]
    fn normal_moments_reasonable() {
        let mut r = SimRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
        assert_eq!(r.normal(1.0, 0.0), 1.0);
    }

    #[test]
    fn empty_ranges_return_lo() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.range_f64(2.0, 2.0), 2.0);
        assert_eq!(r.range_u64(9, 9), 9);
        assert_eq!(r.range_u64(9, 3), 9);
    }
}
