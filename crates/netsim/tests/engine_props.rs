//! Property tests for the discrete-event engine: deterministic replay,
//! causal event ordering, and link conservation/FIFO.

use netsim::{
    Context, EventKind, Frame, LinkParams, Node, NodeId, PortId, SimDuration, SimTime, Simulator,
};
use proptest::prelude::*;

/// Records every event it sees, with timestamps; can also echo frames.
struct Recorder {
    log: Vec<(u64, String)>,
}

impl Node for Recorder {
    fn on_event(&mut self, ev: EventKind, ctx: &mut Context<'_>) {
        let desc = match &ev {
            EventKind::Deliver { port, frame } => format!("deliver p{} len{}", port.0, frame.len()),
            EventKind::Timer { token } => format!("timer {token}"),
            EventKind::Message { tag, .. } => format!("msg {tag}"),
        };
        self.log.push((ctx.now().as_nanos(), desc));
    }
}

fn arb_events() -> impl Strategy<Value = Vec<(u64, u8, u64)>> {
    // (time_us, kind, token)
    proptest::collection::vec((0u64..1_000_000, 0u8..2, any::<u64>()), 1..64)
}

proptest! {
    /// The same schedule replays identically, and event timestamps are
    /// non-decreasing regardless of insertion order.
    #[test]
    fn deterministic_and_ordered(events in arb_events()) {
        let run = || {
            let mut sim = Simulator::new(42);
            let n = sim.add_node(Box::new(Recorder { log: Vec::new() }));
            for &(t_us, kind, token) in &events {
                let ev = if kind == 0 {
                    EventKind::Timer { token }
                } else {
                    EventKind::Message { from: NodeId(0), tag: token, data: vec![] }
                };
                sim.schedule_event(SimTime::from_micros(t_us), n, ev);
            }
            sim.run(10_000);
            sim.node::<Recorder>(n).log.clone()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "replay diverged");
        prop_assert_eq!(a.len(), events.len());
        prop_assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "time went backwards");
    }

    /// A drop-tail link delivers frames in FIFO order, never invents or
    /// duplicates frames, and drops only when the queue bound binds.
    #[test]
    fn link_fifo_and_conservation(
        sizes in proptest::collection::vec(46usize..1514, 1..60),
        gaps_us in proptest::collection::vec(0u64..2_000, 1..60),
        queue in 1usize..32,
        bw_mbps in 1u64..100,
    ) {
        struct Sender {
            to_send: Vec<usize>,
            idx: usize,
            gaps: Vec<u64>,
        }
        impl Node for Sender {
            fn on_event(&mut self, ev: EventKind, ctx: &mut Context<'_>) {
                if matches!(ev, EventKind::Timer { .. })
                    && self.idx < self.to_send.len() {
                        let size = self.to_send[self.idx];
                        ctx.send(PortId(0), Frame::new(vec![0u8; size], ctx.now()));
                        self.idx += 1;
                        let gap = self.gaps[self.idx % self.gaps.len()];
                        if self.idx < self.to_send.len() {
                            ctx.schedule_in(SimDuration::from_micros(gap), 0);
                        }
                    }
            }
        }

        let n = sizes.len();
        let mut sim = Simulator::new(5);
        let tx = sim.add_node(Box::new(Sender {
            to_send: sizes.clone(),
            idx: 0,
            gaps: gaps_us.clone(),
        }));
        let rx = sim.add_node(Box::new(Recorder { log: Vec::new() }));
        sim.connect_sym(
            tx,
            PortId(0),
            rx,
            PortId(0),
            LinkParams::new(bw_mbps * 1_000_000, SimDuration::from_micros(10), queue),
        );
        sim.schedule_event(SimTime::ZERO, tx, EventKind::Timer { token: 0 });
        sim.run(1_000_000);

        let log = &sim.node::<Recorder>(rx).log;
        prop_assert!(log.len() <= n, "link invented frames");
        // Delivered frames appear as a subsequence of the sent sizes.
        let mut it = sizes.iter();
        for (_, desc) in log {
            let len: usize = desc
                .rsplit("len")
                .next()
                .and_then(|s| s.parse().ok())
                .expect("recorder format");
            prop_assert!(
                it.any(|&s| s == len),
                "delivery order is not a subsequence of send order"
            );
        }
        // No drops expected when the queue bound can never bind.
        if queue >= n {
            prop_assert_eq!(log.len(), n, "dropped despite ample queue");
        }
    }
}
