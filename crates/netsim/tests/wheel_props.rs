//! Property tests pitting [`CalendarQueue`] against the reference
//! binary-heap scheduler: both must yield the exact same `(due, seq)`
//! delivery sequence for arbitrary push/drain/pop interleavings —
//! including clock jumps far past the wheel horizon, stalls (repeated
//! drains at a frozen clock), and drains at `u64::MAX`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netsim::{CalendarQueue, WheelItem};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Item {
    due: u64,
    seq: u64,
}

impl WheelItem for Item {
    fn due_ns(&self) -> u64 {
        self.due
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Reference scheduler: a plain min-heap on `(due, seq)`.
#[derive(Default)]
struct HeapRef {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl HeapRef {
    fn push(&mut self, it: Item) {
        self.heap.push(Reverse((it.due, it.seq)));
    }
    fn drain_due(&mut self, now: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(&Reverse(k)) = self.heap.peek() {
            if k.0 > now {
                break;
            }
            self.heap.pop();
            out.push(k);
        }
        out
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse(k)| k)
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push a batch of items due `delta_ns` after the current clock,
    /// fanned out over `spread_ns`.
    Push {
        count: u8,
        delta_ns: u64,
        spread_ns: u64,
    },
    /// Advance the clock by `gap_ns` (0 = stall) and drain everything
    /// due.
    Drain { gap_ns: u64 },
    /// Pop up to `n` single items without moving the clock.
    Pop { n: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let tick = 1u64 << 20; // QUEUE_TICK_NS
    prop_oneof![
        // In-window, far-overflow, and straddling pushes.
        (1u8..8, 0u64..tick * 64, 0u64..tick * 8).prop_map(|(count, delta_ns, spread_ns)| {
            Op::Push {
                count,
                delta_ns,
                spread_ns,
            }
        }),
        (1u8..4, tick * 4000..tick * 1_000_000, 0u64..tick * 100_000).prop_map(
            |(count, delta_ns, spread_ns)| Op::Push {
                count,
                delta_ns,
                spread_ns,
            }
        ),
        // Stalls, tick-scale steps, and clock jumps past the horizon.
        prop_oneof![Just(0u64), 1u64..tick * 2, tick * 4096..tick * 2_000_000,]
            .prop_map(|gap_ns| Op::Drain { gap_ns }),
        (1u8..6).prop_map(|n| Op::Pop { n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The calendar queue and the reference heap deliver identical
    /// `(due, seq)` sequences at identical drain instants.
    #[test]
    fn wheel_matches_heap_for_arbitrary_schedules(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed_due in 0u64..u64::MAX / 2,
        // Narrow fleet-client wheels through the 4096-slot default: the
        // slot count trades horizon for footprint but must never change
        // delivery order.
        slots in prop_oneof![Just(64usize), Just(256), Just(4096)],
    ) {
        let tick = 1u64 << 20;
        let mut wheel: CalendarQueue<Item> = CalendarQueue::with_slots(tick, slots);
        let mut heap = HeapRef::default();
        let mut now = seed_due;
        let mut seq = 0u64;
        for op in &ops {
            match *op {
                Op::Push { count, delta_ns, spread_ns } => {
                    for i in 0..count as u64 {
                        let due = now
                            .saturating_add(delta_ns)
                            .saturating_add(i * (spread_ns / count as u64));
                        let it = Item { due, seq };
                        seq += 1;
                        wheel.push(it);
                        heap.push(it);
                    }
                }
                Op::Drain { gap_ns } => {
                    now = now.saturating_add(gap_ns);
                    let mut got = Vec::new();
                    wheel.drain_due_into(now, &mut got);
                    let got: Vec<_> = got.iter().map(|it| (it.due, it.seq)).collect();
                    prop_assert_eq!(got, heap.drain_due(now));
                }
                Op::Pop { n } => {
                    for _ in 0..n {
                        prop_assert_eq!(wheel.next_due_ns(), heap.heap.peek().map(|r| r.0 .0));
                        prop_assert_eq!(wheel.pop_next().map(|it| (it.due, it.seq)), heap.pop());
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.heap.len());
        }
        // Final total drain must empty both in the same order.
        let mut got = Vec::new();
        wheel.drain_due_into(u64::MAX, &mut got);
        let got: Vec<_> = got.iter().map(|it| (it.due, it.seq)).collect();
        prop_assert_eq!(got, heap.drain_due(u64::MAX));
        prop_assert!(wheel.is_empty());
    }
}
