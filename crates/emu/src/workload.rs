//! Benchmark installation and completion polling, shared by the live and
//! modulated experiment paths.

use crate::testbed::{Testbed, SERVER_IP};
use netsim::{SimDuration, SimTime};
use netstack::{AppId, Host};
use workloads::{
    AndrewBenchmark, AndrewConfig, FtpClient, FtpDirection, FtpServer, NfsServer, Phase, WebClient,
    WebServer,
};

/// Which benchmark to run (the three of §4.2, FTP split by direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// The World-Wide-Web trace replay.
    Web,
    /// FTP: laptop uploads 10 MB.
    FtpSend,
    /// FTP: laptop downloads 10 MB.
    FtpRecv,
    /// The Andrew benchmark on NFS.
    Andrew,
}

impl Benchmark {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Web => "Web",
            Benchmark::FtpSend => "FTP send",
            Benchmark::FtpRecv => "FTP recv",
            Benchmark::Andrew => "Andrew",
        }
    }

    /// Hard wall on simulated benchmark time.
    pub fn deadline(&self) -> SimDuration {
        match self {
            Benchmark::Web => SimDuration::from_secs(1800),
            Benchmark::FtpSend | Benchmark::FtpRecv => SimDuration::from_secs(1800),
            Benchmark::Andrew => SimDuration::from_secs(2400),
        }
    }
}

/// The FTP transfer size (§4.2: "a single 10MB file").
pub const FTP_SIZE: usize = 10_000_000;
/// Fixed seed for the Web reference trace: the benchmark input is the
/// same across every trial and scenario (only the network varies).
pub const WEB_TRACE_SEED: u64 = 0x7EB;

/// Handle to an installed benchmark's client application.
pub struct Installed {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Client app on the laptop.
    pub client: AppId,
}

/// Install a benchmark's apps on the two hosts. Called from the testbed
/// `setup` closure.
pub fn install(benchmark: Benchmark, laptop: &mut Host, server: &mut Host) -> Installed {
    let client = match benchmark {
        Benchmark::Web => {
            server.add_app(Box::new(WebServer::new(WEB_TRACE_SEED)));
            let trace = workloads::search_task_trace(5, 48, WEB_TRACE_SEED);
            laptop.add_app(Box::new(WebClient::new(SERVER_IP, trace)))
        }
        Benchmark::FtpSend => {
            server.add_app(Box::new(FtpServer::new()));
            laptop.add_app(Box::new(FtpClient::new(
                SERVER_IP,
                FtpDirection::Send,
                FTP_SIZE,
            )))
        }
        Benchmark::FtpRecv => {
            server.add_app(Box::new(FtpServer::new()));
            laptop.add_app(Box::new(FtpClient::new(
                SERVER_IP,
                FtpDirection::Recv,
                FTP_SIZE,
            )))
        }
        Benchmark::Andrew => {
            server.add_app(Box::new(NfsServer::new()));
            laptop.add_app(Box::new(AndrewBenchmark::new(
                SERVER_IP,
                AndrewConfig::default(),
            )))
        }
    };
    Installed { benchmark, client }
}

/// The outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Total elapsed seconds (None if the deadline was hit).
    pub elapsed: Option<f64>,
    /// Per-phase seconds (Andrew only).
    pub phases: Vec<(Phase, f64)>,
}

impl RunResult {
    /// Elapsed time, panicking on a failed run (experiment harness use).
    pub fn secs(&self) -> f64 {
        self.elapsed.expect("benchmark run hit its deadline")
    }
}

/// Has the installed benchmark's client finished? (Polled between
/// lockstep slices by both the batch and live experiment drivers.)
pub fn is_done(tb: &Testbed, inst: &Installed) -> bool {
    let host = tb.laptop_host();
    match inst.benchmark {
        Benchmark::Web => host.app::<WebClient>(inst.client).is_done(),
        Benchmark::FtpSend | Benchmark::FtpRecv => host.app::<FtpClient>(inst.client).is_done(),
        Benchmark::Andrew => host.app::<AndrewBenchmark>(inst.client).finished,
    }
}

/// Run the testbed until the benchmark completes (or its deadline), then
/// extract the result.
pub fn run_to_completion(tb: &mut Testbed, inst: &Installed) -> RunResult {
    tb.start();
    let deadline = SimTime::ZERO + inst.benchmark.deadline();
    let slice = SimDuration::from_secs(1);
    let mut now = SimTime::ZERO;
    while now < deadline {
        now = (now + slice).min(deadline);
        tb.sim.run_until(now);
        if is_done(tb, inst) {
            break;
        }
    }
    extract(tb, inst)
}

/// Read the benchmark's final result off the testbed.
pub fn extract(tb: &Testbed, inst: &Installed) -> RunResult {
    let host = tb.laptop_host();
    match inst.benchmark {
        Benchmark::Web => {
            let c = host.app::<WebClient>(inst.client);
            RunResult {
                benchmark: inst.benchmark,
                elapsed: c.elapsed().map(|d| d.as_secs_f64()),
                phases: Vec::new(),
            }
        }
        Benchmark::FtpSend | Benchmark::FtpRecv => {
            let c = host.app::<FtpClient>(inst.client);
            RunResult {
                benchmark: inst.benchmark,
                elapsed: c.elapsed().map(|d| d.as_secs_f64()),
                phases: Vec::new(),
            }
        }
        Benchmark::Andrew => {
            let c = host.app::<AndrewBenchmark>(inst.client);
            RunResult {
                benchmark: inst.benchmark,
                elapsed: c.total.map(|d| d.as_secs_f64()),
                phases: c.results.iter().map(|r| (r.phase, r.secs())).collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{build_ethernet, Hardware};

    #[test]
    fn web_benchmark_on_ethernet_near_paper_baseline() {
        // Paper Figure 6, Ethernet row: 140.3 s (σ 3.07).
        let (mut tb, inst) =
            build_ethernet(3, Hardware::default(), |l, s| install(Benchmark::Web, l, s));
        let r = run_to_completion(&mut tb, &inst);
        let secs = r.secs();
        assert!((120.0..160.0).contains(&secs), "{secs}");
    }

    #[test]
    fn andrew_benchmark_reports_phases() {
        let (mut tb, inst) = build_ethernet(4, Hardware::default(), |l, s| {
            install(Benchmark::Andrew, l, s)
        });
        let r = run_to_completion(&mut tb, &inst);
        assert_eq!(r.phases.len(), 5);
        // Paper Figure 8, Ethernet row total: 124 s (σ 1.63).
        let secs = r.secs();
        assert!((110.0..140.0).contains(&secs), "{secs}");
    }
}
