//! Plain-text rendering of experiment results: the paper-style tables
//! (mean with standard deviation in parentheses) and ASCII range plots
//! for the scenario figures.

use crate::experiment::Comparison;
use crate::figures::{CheckpointSeries, ScenarioFigure};
use crate::plan::PlanMetrics;
use netsim::stats::{Histogram, Summary};

/// `"123.45 (6.78)"` — the paper's cell format.
pub fn cell(s: &Summary) -> String {
    format!("{:.2} ({:.2})", s.mean(), s.stddev())
}

/// Render an aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{:<width$}",
                c,
                width = widths[i.min(widths.len() - 1)]
            ));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render one comparison as a table row: scenario, real, modulated,
/// agreement marker.
pub fn comparison_row(c: &Comparison) -> Vec<String> {
    vec![
        c.scenario.clone(),
        cell(&c.real),
        cell(&c.modulated),
        format!(
            "{:.2}σ{}",
            c.sigma_ratio(),
            if c.within_one_sigma() { " ✓" } else { "" }
        ),
    ]
}

/// ASCII range plot of a checkpoint series (the paper's vertical-bar
/// plots): one line per checkpoint, `min──mean──max` scaled to `width`.
pub fn range_plot(title: &str, series: &CheckpointSeries, unit: &str, width: usize) -> String {
    let mut out = format!("{title} [{unit}]\n");
    let hi = series
        .buckets
        .iter()
        .map(Summary::max)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for (label, b) in series.labels.iter().zip(&series.buckets) {
        if b.count() == 0 {
            out.push_str(&format!("  {label:>4} | (no data)\n"));
            continue;
        }
        let pos = |v: f64| ((v / hi) * (width as f64 - 1.0)).round() as usize;
        let (lo_i, mean_i, hi_i) = (pos(b.min()), pos(b.mean()), pos(b.max()));
        let mut bar: Vec<char> = vec![' '; width];
        for slot in bar.iter_mut().take(hi_i + 1).skip(lo_i) {
            *slot = '─';
        }
        bar[lo_i] = '├';
        bar[hi_i] = '┤';
        bar[mean_i] = '●';
        out.push_str(&format!(
            "  {label:>4} |{} {:.2}..{:.2}\n",
            bar.into_iter().collect::<String>(),
            b.min(),
            b.max()
        ));
    }
    out
}

/// ASCII histogram (Figure 5's distributions).
pub fn histogram_plot(title: &str, h: &Histogram, unit: &str, width: usize) -> String {
    let mut out = format!("{title} [{unit}]\n");
    let norm = h.normalized();
    let peak = norm
        .iter()
        .map(|&(_, f)| f)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for (center, frac) in norm {
        if frac == 0.0 {
            continue;
        }
        let n = ((frac / peak) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {center:>8.1} |{} {:.1}%\n",
            "█".repeat(n.max(1)),
            frac * 100.0
        ));
    }
    out
}

/// One-paragraph execution summary for a finished plan: cells, failed
/// runs, wall clock, and the wall-vs-virtual and parallel speedups.
pub fn plan_metrics_text(m: &PlanMetrics) -> String {
    format!(
        "[plan] {} cells on {} worker{}: {:.1}s wall ({:.1}s summed across cells, \
         {:.2}x parallel speedup), {:.0}s virtual time ({:.1}x faster than real time), \
         {} failed run{}\n",
        m.cells,
        m.workers,
        if m.workers == 1 { "" } else { "s" },
        m.wall_secs,
        m.cell_wall_secs,
        m.parallel_speedup(),
        m.virtual_secs,
        m.virtual_speedup(),
        m.failed_runs,
        if m.failed_runs == 1 { "" } else { "s" },
    )
}

/// Render a whole scenario figure (Figures 2–5).
pub fn scenario_figure_text(fig: &ScenarioFigure) -> String {
    let mut out = format!(
        "=== Scenario '{}' ({} trials) ===\n",
        fig.scenario, fig.trials
    );
    match &fig.histograms {
        Some((sig, lat, bw, loss)) => {
            out.push_str(&histogram_plot("Signal level", sig, "WaveLAN units", 40));
            out.push_str(&histogram_plot("Latency", lat, "ms", 40));
            out.push_str(&histogram_plot("Bandwidth", bw, "kb/s", 40));
            out.push_str(&histogram_plot("Loss rate", loss, "%", 40));
        }
        None => {
            out.push_str(&range_plot(
                "Signal level",
                &fig.signal,
                "WaveLAN units",
                48,
            ));
            out.push_str(&range_plot("Latency", &fig.latency_ms, "ms", 48));
            out.push_str(&range_plot("Bandwidth", &fig.bandwidth_kbps, "kb/s", 48));
            out.push_str(&range_plot("Loss rate", &fig.loss_pct, "%", 48));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_format_matches_paper() {
        let s = Summary::of(&[160.0, 162.0, 158.0, 164.0]);
        assert_eq!(cell(&s), "161.00 (2.58)");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["Scenario", "Real (s)", "Modulated (s)"],
            &[
                vec![
                    "Wean".into(),
                    "161.47 (7.82)".into(),
                    "160.04 (2.60)".into(),
                ],
                vec![
                    "Porter".into(),
                    "159.83 (5.07)".into(),
                    "150.65 (5.83)".into(),
                ],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Scenario"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Real" column starts at the same offset.
        let off = lines[0].find("Real").unwrap();
        assert_eq!(&lines[2][off..off + 6], "161.47");
    }

    #[test]
    fn range_plot_renders_bars() {
        let series = CheckpointSeries {
            labels: vec!["x0", "x1"],
            buckets: vec![Summary::of(&[1.0, 5.0, 3.0]), Summary::new()],
        };
        let p = range_plot("Latency", &series, "ms", 20);
        assert!(p.contains("x0"));
        assert!(p.contains('●'));
        assert!(p.contains("(no data)"));
    }

    #[test]
    fn histogram_plot_renders() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [1.0, 1.2, 1.4, 7.0] {
            h.add(x);
        }
        let p = histogram_plot("Signal", &h, "units", 20);
        assert!(p.contains('█'));
        assert!(p.contains("75.0%"));
    }
}
