//! Deterministic parallel execution of the validation matrix.
//!
//! The paper's evaluation is a matrix of independent cells: every
//! (scenario, benchmark, kind, trial) combination — live wireless runs,
//! collect→distill→modulate runs, and Ethernet baselines — draws its
//! seeds from [`crate::runs`]'s `seed_for` and builds its own
//! [`netsim::Simulator`], so no cell shares mutable state with any
//! other. A [`TrialPlan`] enumerates the cells up front, executes them
//! on a fixed-size pool of scoped worker threads, and reassembles the
//! outputs **in plan order**, which makes every derived
//! [`Comparison`] / [`Summary`] byte-identical to the serial path no
//! matter how many workers run or how cells interleave.
//!
//! [`Comparison`]: crate::experiment::Comparison

use crate::chaos::{chaos_live_run, ChaosOutcome};
use crate::runs::{
    collect_trace, ethernet_run, live_modulated_run, live_run, modulated_run, LiveModOutcome,
    RunConfig,
};
use crate::workload::{Benchmark, RunResult};
use distill::{distill_with_report, DistillConfig, DistillReport};
use faultkit::FaultPlan;
use netsim::stats::Summary;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use tracekit::Trace;
use wavelan::Scenario;

/// How to execute a plan: worker count and progress reporting.
#[derive(Debug, Clone, Copy)]
pub struct Exec {
    /// Worker threads (1 = run serially on the calling thread).
    pub workers: usize,
    /// Emit per-cell progress lines on stderr.
    pub progress: bool,
}

impl Exec {
    /// Serial execution — the escape hatch, and the reference the
    /// parallel path must match byte-for-byte.
    pub fn serial() -> Self {
        Exec {
            workers: 1,
            progress: false,
        }
    }

    /// A fixed-size pool of `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        Exec {
            workers: workers.max(1),
            progress: false,
        }
    }

    /// Pool sized from the `EMU_JOBS` environment variable, falling
    /// back to the machine's available parallelism.
    pub fn from_env() -> Self {
        let workers = std::env::var("EMU_JOBS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Exec {
            workers: workers.max(1),
            progress: true,
        }
    }

    /// Same execution with progress lines switched on or off.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }
}

/// The work one cell performs.
pub enum CellKind {
    /// Benchmark over the live simulated-wireless scenario.
    Live {
        /// Scenario to traverse.
        scenario: Scenario,
        /// Benchmark to run.
        benchmark: Benchmark,
    },
    /// The full modulation pipeline: collect a fresh trace of the
    /// scenario, distill it, and run the benchmark modulated.
    Modulated {
        /// Scenario to collect.
        scenario: Scenario,
        /// Benchmark to run modulated.
        benchmark: Benchmark,
        /// Distillation parameters (the default matches the paper).
        distill: DistillConfig,
    },
    /// Benchmark on the bare modulation Ethernet (reference rows).
    Ethernet {
        /// Benchmark to run.
        benchmark: Benchmark,
    },
    /// Collection + distillation only (the scenario figures).
    Collect {
        /// Scenario to collect.
        scenario: Scenario,
        /// Distillation parameters.
        distill: DistillConfig,
    },
    /// The streaming pipeline end to end: collect, distill, and
    /// modulate concurrently ([`live_modulated_run`]).
    LiveModulated {
        /// Scenario to collect while modulating.
        scenario: Scenario,
        /// Benchmark to run on the concurrently modulated Ethernet.
        benchmark: Benchmark,
        /// Distillation parameters for the incremental distiller.
        distill: DistillConfig,
    },
    /// The streaming pipeline under deterministic fault injection
    /// ([`chaos_live_run`]). `kill_worker` plan entries target the
    /// cell's *plan index*, so results are identical at any worker
    /// count.
    Chaos {
        /// Scenario to collect while modulating.
        scenario: Scenario,
        /// Benchmark to run on the concurrently modulated Ethernet.
        benchmark: Benchmark,
        /// Distillation parameters for the incremental distiller.
        distill: DistillConfig,
        /// Fault RNG seed (combined with the plan, fully determines
        /// every injection).
        seed: u64,
        /// The faults to inject.
        plan: FaultPlan,
    },
    /// One shard of a fleet run: the clients in the shard's range run
    /// under a single event engine ([`FleetShard::run`](crate::fleet::FleetShard::run)). Kills target
    /// the shard's plan index, exactly like [`CellKind::Chaos`].
    Fleet(crate::fleet::FleetShard),
    /// Arbitrary work for bespoke experiments (ablations): receives
    /// (trial, config), returns any run results produced.
    Custom(CustomCell),
}

/// Closure type for [`CellKind::Custom`] cells.
pub type CustomCell = Box<dyn Fn(u32, &RunConfig) -> Vec<RunResult> + Send + Sync>;

/// One independently executable unit of the matrix.
pub struct TrialCell {
    /// Label shown in progress lines and per-cell metrics.
    pub label: String,
    /// Trial number (feeds the deterministic seeding).
    pub trial: u32,
    /// Run configuration for this cell.
    pub cfg: RunConfig,
    /// What to execute.
    pub kind: CellKind,
}

/// What a cell produced.
pub enum CellOutput {
    /// A single benchmark run (live / ethernet).
    Run(RunResult),
    /// A modulated run together with the distillation that drove it.
    RunWithReport(RunResult, DistillReport),
    /// A collected trace and its distillation (figure cells).
    Collected(Trace, DistillReport),
    /// A live streaming-pipeline run with its diagnostics (boxed: the
    /// run manifest makes this by far the largest variant).
    LiveModulated(Box<LiveModOutcome>),
    /// A chaos run: the pipeline outcome plus its fault ledger.
    Chaos(Box<ChaosOutcome>),
    /// One fleet shard's manifests and counters (boxed: a shard can
    /// carry thousands of per-client manifests).
    Fleet(Box<crate::fleet::FleetShardOutcome>),
    /// Results of a custom cell.
    Runs(Vec<RunResult>),
}

impl CellOutput {
    fn run_results(&self) -> &[RunResult] {
        match self {
            CellOutput::Run(r) | CellOutput::RunWithReport(r, _) => std::slice::from_ref(r),
            CellOutput::LiveModulated(o) => std::slice::from_ref(&o.result),
            CellOutput::Chaos(o) => std::slice::from_ref(&o.outcome.result),
            CellOutput::Collected(..) | CellOutput::Fleet(..) => &[],
            CellOutput::Runs(rs) => rs,
        }
    }
}

/// Timing record for one executed cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's label.
    pub label: String,
    /// Wall-clock seconds spent executing the cell.
    pub wall_secs: f64,
    /// Virtual (simulated) seconds the cell covered.
    pub virtual_secs: f64,
    /// Benchmark runs in this cell that hit their deadline.
    pub failed: u32,
}

/// Aggregate execution metrics for a whole plan.
#[derive(Debug, Clone)]
pub struct PlanMetrics {
    /// Cells executed.
    pub cells: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Benchmark runs that hit their deadline without completing.
    pub failed_runs: u32,
    /// End-to-end wall-clock seconds for the plan.
    pub wall_secs: f64,
    /// Sum of per-cell wall-clock seconds (≈ serial wall time).
    pub cell_wall_secs: f64,
    /// Total virtual seconds simulated across all cells.
    pub virtual_secs: f64,
    /// Per-cell timing records, in plan order.
    pub per_cell: Vec<CellReport>,
}

impl PlanMetrics {
    /// Virtual seconds simulated per wall-clock second.
    pub fn virtual_speedup(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.virtual_secs / self.wall_secs
        } else {
            0.0
        }
    }

    /// Parallel speedup: summed cell time over end-to-end wall time
    /// (what a serial execution of the same plan would roughly take,
    /// divided by what this execution took).
    pub fn parallel_speedup(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cell_wall_secs / self.wall_secs
        } else {
            0.0
        }
    }

    /// Fraction of available worker-seconds spent executing cells:
    /// `cell_wall_secs / (workers × wall_secs)`, clamped to 1. A value
    /// near 1 means the pool was busy end to end; low values indicate
    /// a straggler cell or an over-provisioned pool.
    pub fn worker_utilization(&self) -> f64 {
        let capacity = self.workers as f64 * self.wall_secs;
        if capacity > 0.0 {
            (self.cell_wall_secs / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Cells executed per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cells as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// An ordered list of cells plus the machinery to run them.
#[derive(Default)]
pub struct TrialPlan {
    cells: Vec<TrialCell>,
}

impl TrialPlan {
    /// An empty plan.
    pub fn new() -> Self {
        TrialPlan::default()
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are queued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Queue one cell.
    pub fn push(&mut self, cell: TrialCell) {
        self.cells.push(cell);
    }

    /// Queue the live + modulated cells of one comparison: `trials`
    /// live runs and `trials` collect→distill→modulate runs, the same
    /// cells [`crate::experiment::compare`] runs serially.
    pub fn push_comparison(
        &mut self,
        scenario: &Scenario,
        benchmark: Benchmark,
        trials: u32,
        cfg: &RunConfig,
    ) {
        for trial in 1..=trials {
            self.push(TrialCell {
                label: format!("{}/{}/live#{trial}", scenario.name, benchmark.name()),
                trial,
                cfg: *cfg,
                kind: CellKind::Live {
                    scenario: scenario.clone(),
                    benchmark,
                },
            });
            self.push(TrialCell {
                label: format!("{}/{}/mod#{trial}", scenario.name, benchmark.name()),
                trial,
                cfg: *cfg,
                kind: CellKind::Modulated {
                    scenario: scenario.clone(),
                    benchmark,
                    distill: DistillConfig::default(),
                },
            });
        }
    }

    /// Queue the Ethernet reference cells for one benchmark.
    pub fn push_ethernet(&mut self, benchmark: Benchmark, trials: u32, cfg: &RunConfig) {
        for trial in 1..=trials {
            self.push(TrialCell {
                label: format!("ethernet/{}#{trial}", benchmark.name()),
                trial,
                cfg: *cfg,
                kind: CellKind::Ethernet { benchmark },
            });
        }
    }

    /// Queue collection-only cells for one scenario (figure data).
    pub fn push_collection(&mut self, scenario: &Scenario, trials: u32, cfg: &RunConfig) {
        for trial in 1..=trials {
            self.push(TrialCell {
                label: format!("{}/collect#{trial}", scenario.name),
                trial,
                cfg: *cfg,
                kind: CellKind::Collect {
                    scenario: scenario.clone(),
                    distill: DistillConfig::default(),
                },
            });
        }
    }

    /// Execute every cell and reassemble the outputs in plan order.
    ///
    /// With `exec.workers == 1` the cells run on the calling thread in
    /// plan order. With more workers, a fixed pool of scoped threads
    /// claims cells from a shared cursor; outputs land in per-cell
    /// slots, so assembly order — and therefore every derived summary —
    /// is independent of scheduling.
    pub fn run(self, exec: &Exec) -> PlanResults {
        let n = self.cells.len();
        let started = Instant::now();
        let mut outputs: Vec<Option<(CellOutput, CellReport)>> = Vec::new();

        if exec.workers <= 1 || n <= 1 {
            for (i, cell) in self.cells.iter().enumerate() {
                let out = execute_cell(cell, i);
                if exec.progress {
                    progress_line(i + 1, n, &out.1);
                }
                outputs.push(Some(out));
            }
        } else {
            let slots: Vec<Mutex<Option<(CellOutput, CellReport)>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let cells = &self.cells;
            std::thread::scope(|scope| {
                for _ in 0..exec.workers.min(n) {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = execute_cell(&cells[i], i);
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if exec.progress {
                            progress_line(finished, n, &out.1);
                        }
                        *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                    });
                }
            });
            outputs = slots
                .into_iter()
                .map(|s| s.into_inner().unwrap_or_else(|p| p.into_inner()))
                .collect();
        }

        let wall_secs = started.elapsed().as_secs_f64();
        let mut per_cell = Vec::with_capacity(n);
        let mut finished = Vec::with_capacity(n);
        for out in outputs {
            let (output, report) = out.expect("every cell executes exactly once");
            per_cell.push(report);
            finished.push(output);
        }
        let metrics = PlanMetrics {
            cells: n,
            workers: exec.workers,
            failed_runs: per_cell.iter().map(|c| c.failed).sum(),
            wall_secs,
            cell_wall_secs: per_cell.iter().map(|c| c.wall_secs).sum(),
            virtual_secs: per_cell.iter().map(|c| c.virtual_secs).sum(),
            per_cell,
        };
        PlanResults {
            cells: self.cells,
            outputs: finished,
            metrics,
        }
    }
}

fn progress_line(done: usize, total: usize, report: &CellReport) {
    eprintln!(
        "[plan {done:>3}/{total}] {:<28} {:>6.1}s wall  {:>7.1}s virtual{}",
        report.label,
        report.wall_secs,
        report.virtual_secs,
        if report.failed > 0 { "  FAILED" } else { "" }
    );
}

fn virtual_secs_of(result: &RunResult) -> f64 {
    result
        .elapsed
        .unwrap_or_else(|| result.benchmark.deadline().as_secs_f64())
}

fn execute_cell(cell: &TrialCell, cell_index: usize) -> (CellOutput, CellReport) {
    let started = Instant::now();
    let (output, virtual_secs) = match &cell.kind {
        CellKind::Live {
            scenario,
            benchmark,
        } => {
            let r = live_run(scenario, cell.trial, *benchmark, &cell.cfg);
            let v = virtual_secs_of(&r);
            (CellOutput::Run(r), v)
        }
        CellKind::Modulated {
            scenario,
            benchmark,
            distill,
        } => {
            let trace = collect_trace(scenario, cell.trial, &cell.cfg);
            let report = distill_with_report(&trace, distill);
            let r = modulated_run(&report.replay, cell.trial, *benchmark, &cell.cfg);
            let v = scenario.duration.as_secs_f64() + virtual_secs_of(&r);
            (CellOutput::RunWithReport(r, report), v)
        }
        CellKind::Ethernet { benchmark } => {
            let r = ethernet_run(cell.trial, *benchmark, &cell.cfg);
            let v = virtual_secs_of(&r);
            (CellOutput::Run(r), v)
        }
        CellKind::Collect { scenario, distill } => {
            let trace = collect_trace(scenario, cell.trial, &cell.cfg);
            let report = distill_with_report(&trace, distill);
            let v = scenario.duration.as_secs_f64();
            (CellOutput::Collected(trace, report), v)
        }
        CellKind::LiveModulated {
            scenario,
            benchmark,
            distill,
        } => {
            let o = live_modulated_run(scenario, cell.trial, *benchmark, distill, &cell.cfg);
            // Both simulations advance in lockstep over the same span.
            let v = o.stats.collection_secs.max(virtual_secs_of(&o.result));
            (CellOutput::LiveModulated(Box::new(o)), v)
        }
        CellKind::Chaos {
            scenario,
            benchmark,
            distill,
            seed,
            plan,
        } => {
            let o = chaos_live_run(
                scenario, cell.trial, *benchmark, distill, &cell.cfg, *seed, plan, cell_index,
            );
            let v = o
                .outcome
                .stats
                .collection_secs
                .max(virtual_secs_of(&o.outcome.result));
            (CellOutput::Chaos(Box::new(o)), v)
        }
        CellKind::Fleet(shard) => {
            let o = shard.run(cell_index);
            let v = o.virtual_secs;
            (CellOutput::Fleet(Box::new(o)), v)
        }
        CellKind::Custom(work) => {
            let rs = work(cell.trial, &cell.cfg);
            let v = rs.iter().map(virtual_secs_of).sum();
            (CellOutput::Runs(rs), v)
        }
    };
    let failed = output
        .run_results()
        .iter()
        .filter(|r| r.elapsed.is_none())
        .count() as u32;
    let report = CellReport {
        label: cell.label.clone(),
        wall_secs: started.elapsed().as_secs_f64(),
        virtual_secs,
        failed,
    };
    (output, report)
}

/// Executed plan: cells, their outputs in plan order, and metrics.
pub struct PlanResults {
    cells: Vec<TrialCell>,
    outputs: Vec<CellOutput>,
    /// Execution metrics.
    pub metrics: PlanMetrics,
}

impl PlanResults {
    /// Iterate (cell, output) pairs in plan order.
    pub fn iter(&self) -> impl Iterator<Item = (&TrialCell, &CellOutput)> {
        self.cells.iter().zip(&self.outputs)
    }

    /// Fleet shard outcomes, in plan order (= ascending client range,
    /// the order [`crate::fleet::fleet_run`] merges them in).
    pub fn fleet_outcomes(&self) -> Vec<&crate::fleet::FleetShardOutcome> {
        self.outputs
            .iter()
            .filter_map(|o| match o {
                CellOutput::Fleet(s) => Some(s.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// Live run results for (scenario, benchmark), in plan order.
    pub fn live_runs(&self, scenario: &str, benchmark: Benchmark) -> Vec<&RunResult> {
        self.iter()
            .filter_map(|(c, o)| match (&c.kind, o) {
                (
                    CellKind::Live {
                        scenario: s,
                        benchmark: b,
                    },
                    CellOutput::Run(r),
                ) if s.name == scenario && *b == benchmark => Some(r),
                _ => None,
            })
            .collect()
    }

    /// Modulated run results for (scenario, benchmark), in plan order.
    pub fn modulated_runs(&self, scenario: &str, benchmark: Benchmark) -> Vec<&RunResult> {
        self.iter()
            .filter_map(|(c, o)| match (&c.kind, o) {
                (
                    CellKind::Modulated {
                        scenario: s,
                        benchmark: b,
                        ..
                    },
                    CellOutput::RunWithReport(r, _),
                ) if s.name == scenario && *b == benchmark => Some(r),
                _ => None,
            })
            .collect()
    }

    /// Live streaming-pipeline outcomes for (scenario, benchmark), in
    /// plan order.
    pub fn live_modulated(&self, scenario: &str, benchmark: Benchmark) -> Vec<&LiveModOutcome> {
        self.iter()
            .filter_map(|(c, o)| match (&c.kind, o) {
                (
                    CellKind::LiveModulated {
                        scenario: s,
                        benchmark: b,
                        ..
                    },
                    CellOutput::LiveModulated(out),
                ) if s.name == scenario && *b == benchmark => Some(&**out),
                _ => None,
            })
            .collect()
    }

    /// Ethernet baseline summary for one benchmark, identical to the
    /// serial [`crate::experiment::ethernet_baseline`].
    pub fn ethernet_baseline(&self, benchmark: Benchmark) -> Summary {
        let mut s = Summary::new();
        for (c, o) in self.iter() {
            if let (CellKind::Ethernet { benchmark: b }, CellOutput::Run(r)) = (&c.kind, o) {
                if *b == benchmark {
                    s.add(r.secs());
                }
            }
        }
        s
    }

    /// Ethernet run results for one benchmark, in plan order.
    pub fn ethernet_runs(&self, benchmark: Benchmark) -> Vec<&RunResult> {
        self.iter()
            .filter_map(|(c, o)| match (&c.kind, o) {
                (CellKind::Ethernet { benchmark: b }, CellOutput::Run(r)) if *b == benchmark => {
                    Some(r)
                }
                _ => None,
            })
            .collect()
    }

    /// Collected (trace, report) pairs for one scenario, in plan order.
    pub fn collected(&self, scenario: &str) -> Vec<(&Trace, &DistillReport)> {
        self.iter()
            .filter_map(|(c, o)| match (&c.kind, o) {
                (CellKind::Collect { scenario: s, .. }, CellOutput::Collected(t, r))
                    if s.name == scenario =>
                {
                    Some((t, r))
                }
                _ => None,
            })
            .collect()
    }

    /// Chaos outcomes for (scenario, benchmark), in plan order.
    pub fn chaos(&self, scenario: &str, benchmark: Benchmark) -> Vec<&ChaosOutcome> {
        self.iter()
            .filter_map(|(c, o)| match (&c.kind, o) {
                (
                    CellKind::Chaos {
                        scenario: s,
                        benchmark: b,
                        ..
                    },
                    CellOutput::Chaos(out),
                ) if s.name == scenario && *b == benchmark => Some(&**out),
                _ => None,
            })
            .collect()
    }

    /// All (cell, output) pairs whose label starts with `prefix`, in
    /// plan order — for bespoke experiments that need to separate cells
    /// the typed accessors would conflate (e.g. per-clock sweeps over
    /// the same scenario and benchmark).
    pub fn labeled(&self, prefix: &str) -> Vec<(&TrialCell, &CellOutput)> {
        self.iter()
            .filter(|(c, _)| c.label.starts_with(prefix))
            .collect()
    }

    /// Outputs of custom cells with the given label prefix, plan order.
    pub fn custom_runs(&self, label_prefix: &str) -> Vec<&[RunResult]> {
        self.iter()
            .filter_map(|(c, o)| match (&c.kind, o) {
                (CellKind::Custom(_), CellOutput::Runs(rs))
                    if c.label.starts_with(label_prefix) =>
                {
                    Some(rs.as_slice())
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The planner's whole contract rests on every piece of a cell being
    // movable to a worker thread.
    #[test]
    fn simulation_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<netsim::Simulator>();
        assert_send::<crate::testbed::Testbed>();
        assert_send::<TrialCell>();
        assert_send::<CellOutput>();
        assert_send::<Scenario>();
        assert_send::<RunConfig>();
    }

    #[test]
    fn outputs_reassemble_in_plan_order() {
        // Custom no-op cells that record their identity; whatever the
        // worker interleaving, outputs must come back in plan order.
        let mut plan = TrialPlan::new();
        for i in 0..16u32 {
            plan.push(TrialCell {
                label: format!("cell#{i}"),
                trial: i,
                cfg: RunConfig::default(),
                kind: CellKind::Custom(Box::new(move |trial, _cfg| {
                    // Stagger finish order.
                    std::thread::sleep(std::time::Duration::from_millis(u64::from(
                        (16 - trial) % 7,
                    )));
                    vec![RunResult {
                        benchmark: Benchmark::Web,
                        elapsed: Some(f64::from(trial)),
                        phases: Vec::new(),
                    }]
                })),
            });
        }
        let results = plan.run(&Exec::with_workers(8));
        let seen: Vec<f64> = results
            .custom_runs("cell#")
            .iter()
            .map(|rs| rs[0].elapsed.unwrap())
            .collect();
        assert_eq!(seen, (0..16).map(f64::from).collect::<Vec<_>>());
        assert_eq!(results.metrics.cells, 16);
        assert_eq!(results.metrics.failed_runs, 0);
        assert!(results.metrics.wall_secs > 0.0);
    }
}
