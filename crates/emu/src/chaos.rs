//! Chaos runs: the streaming pipeline under deterministic fault
//! injection.
//!
//! [`chaos_live_run`] is [`live_modulated_run`](crate::live_modulated_run)
//! with a [`faultkit::FaultInjector`] threaded through every hook: the
//! collection ring capacity, the record path (corruption, truncation,
//! clock jumps — via the injector's real encode→decode round trip), the
//! tuple path (drops), the feed (stalls), and the worker itself
//! (kill/restart). Every fault is derived from `(seed, plan)` and
//! keyed off virtual time or record indices, so a chaos run is exactly
//! as reproducible as a clean one: same inputs, byte-identical
//! [`RunManifest`](obs::RunManifest) and fault-event log, at any worker
//! count.

use crate::runs::{live_modulated_run_inner, LiveModOutcome, RunConfig};
use crate::workload::Benchmark;
use distill::DistillConfig;
use faultkit::{FaultCounters, FaultEvent, FaultInjector, FaultPlan};
use wavelan::Scenario;

/// Everything a chaos run produces: the ordinary pipeline outcome plus
/// the fault ledger.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The pipeline outcome — benchmark result, streaming diagnostics,
    /// manifest (with `fault.*` counters), and flight recorder.
    pub outcome: LiveModOutcome,
    /// Every fault injected, in virtual-time order.
    pub faults: Vec<FaultEvent>,
    /// Final injection and degradation tallies; `injected_total()`
    /// always equals `faults.len()`.
    pub counters: FaultCounters,
}

/// Run the live streaming pipeline under `plan`, faults seeded from
/// `seed`.
///
/// `cell_index` is this run's position in its trial plan (0 when run
/// standalone): `kill_worker(idx, ..)` plan entries target plan cells,
/// not pool workers, so the same plan produces the same kills — and the
/// same manifests — regardless of how many workers execute the plan.
///
/// A kill is executed as the paper's operator would see it: the cell
/// runs until the victim has processed `at_record` records, the partial
/// run is discarded, and the cell restarts from its plan entry. Since
/// cells are pure functions of their seeds, the restarted run is
/// bitwise identical to an uninterrupted one except for the
/// `worker_kills` tally and its fault event.
#[allow(clippy::too_many_arguments)] // one parameter per pipeline input; a config struct would be pure ceremony
pub fn chaos_live_run(
    scenario: &Scenario,
    trial: u32,
    benchmark: Benchmark,
    dcfg: &DistillConfig,
    cfg: &RunConfig,
    seed: u64,
    plan: &FaultPlan,
    cell_index: usize,
) -> ChaosOutcome {
    let span_ns = (scenario.duration.as_secs_f64() * 1e9) as u64;
    let mut injector = FaultInjector::new(seed, plan, span_ns);

    if let Some((idx, at_record)) = injector.kill() {
        if idx == cell_index {
            // First pass with a throwaway injector, aborted at the kill
            // point; its only purpose is to establish the virtual time
            // the kill lands at.
            let mut probe = FaultInjector::new(seed, plan, span_ns);
            if let Err(killed_at_ns) = live_modulated_run_inner(
                scenario,
                trial,
                benchmark,
                dcfg,
                cfg,
                Some(&mut probe),
                Some(at_record),
            ) {
                // Restart protocol: fresh injector, kill pre-registered,
                // then the definitive (uninterrupted) run.
                injector.note_worker_kill(killed_at_ns);
            }
            // If the probe completed, collection never reached
            // `at_record` records: the kill does not fire.
        }
    }

    let outcome = live_modulated_run_inner(
        scenario,
        trial,
        benchmark,
        dcfg,
        cfg,
        Some(&mut injector),
        None,
    )
    .unwrap_or_else(|_| unreachable!("definitive run has no abort point"));
    ChaosOutcome {
        counters: *injector.counters(),
        faults: injector.into_events(),
        outcome,
    }
}
