//! # emu — trace modulation, end to end
//!
//! The top-level library tying the reproduction together. It implements
//! the paper's three-phase methodology as runnable operations on
//! simulated testbeds:
//!
//! 1. **Collection** ([`collect_trace`]) — an instrumented laptop
//!    traverses a [`wavelan::Scenario`] running the ping workload while
//!    the device-layer collector records packets and signal samples;
//! 2. **Distillation** ([`collect_and_distill`]) — the collected trace
//!    is reduced to a replay trace of ⟨d, F, Vb, Vr, L⟩ tuples;
//! 3. **Modulation** ([`modulated_run`]) — unmodified benchmarks run on
//!    an isolated Ethernet whose laptop kernel delays/drops every packet
//!    per the replay trace.
//!
//! [`experiment::compare`] runs the paper's validation: N live trials
//! vs N modulated trials, with the "within the sum of the standard
//! deviations" criterion. [`figures::scenario_figure`] regenerates the
//! scenario characterization figures.
//!
//! Every cell of that validation matrix is an independent simulation
//! seeded from (scenario, trial, purpose), so [`plan::TrialPlan`] can
//! execute the whole matrix on a pool of worker threads
//! ([`plan::Exec`]) and reassemble outputs in plan order — the derived
//! tables are byte-identical to the serial path at any worker count.
//!
//! ```no_run
//! use emu::{collect_and_distill, modulated_run, RunConfig, Benchmark};
//! use wavelan::Scenario;
//!
//! let cfg = RunConfig::default();
//! let report = collect_and_distill(&Scenario::wean(), 1, &cfg);
//! let result = modulated_run(&report.replay, 1, Benchmark::FtpRecv, &cfg);
//! println!("modulated FTP fetch: {:.1}s", result.secs());
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod experiment;
pub mod figures;
pub mod fleet;
pub mod hooks;
pub mod plan;
pub mod report;
pub mod runs;
pub mod testbed;
pub mod workload;

pub use chaos::{chaos_live_run, ChaosOutcome};
pub use experiment::{compare, compare_with, comparison_from_plan, ethernet_baseline, Comparison};
pub use figures::{scenario_figure, scenario_figure_with, CheckpointSeries, ScenarioFigure};
pub use fleet::{
    fault_stamps, fleet_alerts, fleet_run, fleet_run_chaos, FleetOutcome, FleetPlan, FleetShard,
    FleetShardOutcome,
};
pub use hooks::FlightFrameHook;
pub use plan::{
    CellKind, CellOutput, CellReport, Exec, PlanMetrics, PlanResults, TrialCell, TrialPlan,
};
pub use runs::{
    collect_and_distill, collect_trace, collect_trace_two_sided, ethernet_run, live_modulated_run,
    live_run, measure_compensation, modulated_run, modulated_run_asymmetric, LiveModOutcome,
    LiveModStats, RunConfig,
};
pub use testbed::{build_ethernet, build_wireless, Hardware, Testbed, LAPTOP_IP, SERVER_IP};
pub use workload::{install, run_to_completion, Benchmark, Installed, RunResult, FTP_SIZE};
