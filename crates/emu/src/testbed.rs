//! Testbed construction: the two physical setups of §5.1.
//!
//! * **Live / collection testbed** — the ThinkPad laptop reaches the
//!   server through the WaveLAN wireless channel (scenario-driven),
//!   whose wired side joins a 10 Mb/s campus Ethernet segment.
//! * **Modulation testbed** — the same two machines on an isolated
//!   10 Mb/s Ethernet, with the modulation layer on the laptop.
//!
//! Host CPU costs model the paper's hardware: an IBM ThinkPad 701c
//! (75 MHz 486) and an Intel Pentium 90 server — the reason the paper's
//! Ethernet FTP baseline runs at ~4 Mb/s rather than wire speed.

use netsim::{LinkParams, NodeId, SimDuration, SimTime, Simulator};
use netstack::{start_host, Host, HostConfig, NIC_PORT};
use packet::MacAddr;
use std::net::Ipv4Addr;
use wavelan::WirelessChannel;

/// The laptop's address.
pub const LAPTOP_IP: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 1);
/// The server's address.
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 2);

/// Hardware parameters of the two machines.
#[derive(Debug, Clone, Copy)]
pub struct Hardware {
    /// Laptop per-frame CPU cost (75 MHz 486 ThinkPad).
    pub laptop_cpu: SimDuration,
    /// Server per-frame CPU cost (Pentium 90).
    pub server_cpu: SimDuration,
}

impl Default for Hardware {
    fn default() -> Self {
        Hardware {
            laptop_cpu: SimDuration::from_micros(2650),
            server_cpu: SimDuration::from_micros(350),
        }
    }
}

/// A constructed testbed.
pub struct Testbed {
    /// The simulator (seeded per trial).
    pub sim: Simulator,
    /// The mobile/modulated host node.
    pub laptop: NodeId,
    /// The server node.
    pub server: NodeId,
    /// The wireless channel node, when present.
    pub channel: Option<NodeId>,
}

impl Testbed {
    /// Start both hosts' applications (server first, laptop 10 ms later
    /// so listeners are up).
    pub fn start(&mut self) {
        start_host(&mut self.sim, self.server, SimTime::ZERO);
        start_host(&mut self.sim, self.laptop, SimTime::from_millis(10));
    }

    /// Borrow the laptop host.
    pub fn laptop_host(&self) -> &Host {
        self.sim.node(self.laptop)
    }

    /// Borrow the server host.
    pub fn server_host(&self) -> &Host {
        self.sim.node(self.server)
    }
}

fn host_configs(hw: Hardware) -> (HostConfig, HostConfig) {
    let laptop = HostConfig::new("thinkpad", LAPTOP_IP, MacAddr::local(1))
        .with_cpu(hw.laptop_cpu)
        .with_arp(SERVER_IP, MacAddr::local(2));
    let server = HostConfig::new("server", SERVER_IP, MacAddr::local(2))
        .with_cpu(hw.server_cpu)
        .with_arp(LAPTOP_IP, MacAddr::local(1));
    (laptop, server)
}

/// Build the live/collection testbed around a prepared wireless channel.
/// `setup` installs applications (and optionally a tracer) on the laptop
/// and server hosts before they join the simulation.
pub fn build_wireless<T>(
    seed: u64,
    hw: Hardware,
    channel: WirelessChannel,
    setup: impl FnOnce(&mut Host, &mut Host) -> T,
) -> (Testbed, T) {
    let (lc, sc) = host_configs(hw);
    let mut laptop = Host::new(lc);
    let mut server = Host::new(sc);
    let out = setup(&mut laptop, &mut server);
    let mut sim = Simulator::new(seed);
    let nl = sim.add_node(Box::new(laptop));
    let ns = sim.add_node(Box::new(server));
    // Laptop attaches to the channel's mobile port via an instant link
    // (the channel owns all wireless delay); the channel's wired side
    // reaches the server over the campus 10 Mb/s Ethernet.
    let ch = channel.install_with_wired(
        &mut sim,
        (nl, NIC_PORT),
        (ns, NIC_PORT),
        LinkParams::ethernet_10mbps(),
    );
    (
        Testbed {
            sim,
            laptop: nl,
            server: ns,
            channel: Some(ch),
        },
        out,
    )
}

/// Build the isolated-Ethernet modulation testbed.
pub fn build_ethernet<T>(
    seed: u64,
    hw: Hardware,
    setup: impl FnOnce(&mut Host, &mut Host) -> T,
) -> (Testbed, T) {
    let (lc, sc) = host_configs(hw);
    let mut laptop = Host::new(lc);
    let mut server = Host::new(sc);
    let out = setup(&mut laptop, &mut server);
    let mut sim = Simulator::new(seed);
    let nl = sim.add_node(Box::new(laptop));
    let ns = sim.add_node(Box::new(server));
    sim.connect_sym(nl, NIC_PORT, ns, NIC_PORT, LinkParams::ethernet_10mbps());
    (
        Testbed {
            sim,
            laptop: nl,
            server: ns,
            channel: None,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimRng;
    use wavelan::Scenario;

    #[test]
    fn ethernet_testbed_carries_traffic() {
        use workloads::{FtpClient, FtpDirection, FtpServer};
        let (mut tb, app) = build_ethernet(1, Hardware::default(), |laptop, server| {
            server.add_app(Box::new(FtpServer::new()));
            laptop.add_app(Box::new(FtpClient::new(
                SERVER_IP,
                FtpDirection::Send,
                500_000,
            )))
        });
        tb.start();
        tb.sim.run_until(SimTime::from_secs(30));
        let c: &workloads::FtpClient = tb.laptop_host().app(app);
        assert!(c.is_done());
        // 500 KB at the CPU-limited ~4.4 Mb/s ≈ 0.9–1.5 s.
        let secs = c.elapsed().unwrap().as_secs_f64();
        assert!((0.8..3.0).contains(&secs), "{secs}");
    }

    #[test]
    fn wireless_testbed_is_slower_than_ethernet() {
        use workloads::{FtpClient, FtpDirection, FtpServer};
        let mut trial_rng = SimRng::seed_from_u64(7);
        let channel = Scenario::porter().channel(&mut trial_rng);
        let (mut tb, app) = build_wireless(1, Hardware::default(), channel, |laptop, server| {
            server.add_app(Box::new(FtpServer::new()));
            laptop.add_app(Box::new(FtpClient::new(
                SERVER_IP,
                FtpDirection::Send,
                500_000,
            )))
        });
        tb.start();
        tb.sim.run_until(SimTime::from_secs(120));
        let c: &workloads::FtpClient = tb.laptop_host().app(app);
        assert!(c.is_done());
        let secs = c.elapsed().unwrap().as_secs_f64();
        // 500 KB over ~1.5 Mb/s WaveLAN ≥ 2.6 s, plus losses.
        assert!(secs > 2.4, "{secs}");
    }

    #[test]
    fn hardware_baseline_ftp_rate_matches_paper_scale() {
        use workloads::{FtpClient, FtpDirection, FtpServer};
        // The paper's Ethernet row: 10 MB send ≈ 20.5 s, recv ≈ 18.8 s.
        for dir in [FtpDirection::Send, FtpDirection::Recv] {
            let (mut tb, app) = build_ethernet(2, Hardware::default(), |laptop, server| {
                server.add_app(Box::new(FtpServer::new()));
                laptop.add_app(Box::new(FtpClient::new(SERVER_IP, dir, 10_000_000)))
            });
            tb.start();
            tb.sim.run_until(SimTime::from_secs(120));
            let c: &workloads::FtpClient = tb.laptop_host().app(app);
            assert!(c.is_done(), "{dir:?}");
            let secs = c.elapsed().unwrap().as_secs_f64();
            assert!((15.0..26.0).contains(&secs), "{dir:?}: {secs}");
        }
    }
}
