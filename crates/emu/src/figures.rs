//! Data generation for the scenario figures (Figures 2–5): observed
//! signal level plus distilled latency / bandwidth / loss, either as
//! per-checkpoint ranges across trials (moving scenarios) or histograms
//! (stationary Chatterbox).

use crate::plan::{Exec, TrialPlan};
use crate::runs::RunConfig;
use distill::DistillReport;
use netsim::stats::{Histogram, Series, Summary};
use netsim::SimTime;
use tracekit::Trace;
use wavelan::Scenario;

/// Per-checkpoint ranges for one plotted quantity: one `Summary` per
/// checkpoint combining all trials (min/max = the vertical bars).
#[derive(Debug)]
pub struct CheckpointSeries {
    /// Checkpoint labels (X axis).
    pub labels: Vec<&'static str>,
    /// One summary per checkpoint.
    pub buckets: Vec<Summary>,
}

/// Everything a scenario figure shows.
#[derive(Debug)]
pub struct ScenarioFigure {
    /// Scenario name.
    pub scenario: String,
    /// Trials combined.
    pub trials: u32,
    /// Observed signal level (device records).
    pub signal: CheckpointSeries,
    /// Distilled one-way latency, milliseconds.
    pub latency_ms: CheckpointSeries,
    /// Distilled bottleneck bandwidth, kb/s.
    pub bandwidth_kbps: CheckpointSeries,
    /// Distilled loss rate, percent.
    pub loss_pct: CheckpointSeries,
    /// Histograms for the stationary case: (signal, latency ms,
    /// bandwidth kb/s, loss %).
    pub histograms: Option<(Histogram, Histogram, Histogram, Histogram)>,
}

fn merge_bucketed(all: &mut Vec<Summary>, series: &Series, buckets: usize) {
    if all.is_empty() {
        *all = vec![Summary::new(); buckets];
    }
    for (i, b) in series.normalized_buckets(buckets).iter().enumerate() {
        if b.count() > 0 {
            all[i].add(b.min());
            if b.max() > b.min() {
                all[i].add(b.max());
            }
            all[i].add(b.mean());
        }
    }
}

/// Collect `trials` traces of `scenario` on the given execution,
/// distill each, and combine into the figure's per-checkpoint ranges
/// (and histograms when stationary). Traces merge in trial order, so
/// the figure is identical however many workers collect them.
pub fn scenario_figure_with(
    scenario: &Scenario,
    trials: u32,
    cfg: &RunConfig,
    exec: &Exec,
) -> ScenarioFigure {
    let mut plan = TrialPlan::new();
    plan.push_collection(scenario, trials, cfg);
    let results = plan.run(exec);
    figure_from_collected(scenario, trials, &results.collected(scenario.name))
}

/// Serial [`scenario_figure_with`].
pub fn scenario_figure(scenario: &Scenario, trials: u32, cfg: &RunConfig) -> ScenarioFigure {
    scenario_figure_with(scenario, trials, cfg, &Exec::serial())
}

/// Combine already-collected (trace, distillation) pairs — one per
/// trial, in trial order — into the figure.
pub fn figure_from_collected(
    scenario: &Scenario,
    trials: u32,
    collected: &[(&Trace, &DistillReport)],
) -> ScenarioFigure {
    let labels = scenario.labels();
    let buckets = labels.len();
    let mut signal = Vec::new();
    let mut latency = Vec::new();
    let mut bandwidth = Vec::new();
    let mut loss = Vec::new();
    let mut hist = (
        Histogram::new(0.0, 30.0, 15),
        Histogram::new(0.0, 100.0, 20),
        Histogram::new(0.0, 2000.0, 20),
        Histogram::new(0.0, 30.0, 15),
    );

    for &(trace, report) in collected {
        // Signal series from device records.
        let mut sig = Series::new();
        for d in trace.device_samples() {
            sig.push(SimTime::from_nanos(d.timestamp_ns), d.signal as f64);
        }
        merge_bucketed(&mut signal, &sig, buckets);

        // Parameter series from the replay trace tuples.
        let mut lat = Series::new();
        let mut bw = Series::new();
        let mut lo = Series::new();
        let mut t = 0u64;
        for q in &report.replay.tuples {
            let at = SimTime::from_nanos(t);
            lat.push(at, q.latency_ns as f64 / 1e6);
            let kbps = if q.vb_ns_per_byte > 0.0 {
                8e6 / q.vb_ns_per_byte
            } else {
                2000.0
            };
            bw.push(at, kbps);
            lo.push(at, q.loss * 100.0);
            t += q.duration_ns;
        }
        merge_bucketed(&mut latency, &lat, buckets);
        merge_bucketed(&mut bandwidth, &bw, buckets);
        merge_bucketed(&mut loss, &lo, buckets);

        if scenario.stationary {
            for v in sig.values() {
                hist.0.add(v);
            }
            for v in lat.values() {
                hist.1.add(v);
            }
            for v in bw.values() {
                hist.2.add(v);
            }
            for v in lo.values() {
                hist.3.add(v);
            }
        }
    }

    ScenarioFigure {
        scenario: scenario.name.to_string(),
        trials,
        signal: CheckpointSeries {
            labels: labels.clone(),
            buckets: signal,
        },
        latency_ms: CheckpointSeries {
            labels: labels.clone(),
            buckets: latency,
        },
        bandwidth_kbps: CheckpointSeries {
            labels: labels.clone(),
            buckets: bandwidth,
        },
        loss_pct: CheckpointSeries {
            labels,
            buckets: loss,
        },
        histograms: scenario.stationary.then_some(hist),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    #[test]
    fn porter_figure_has_expected_shape() {
        let mut sc = Scenario::porter();
        sc.duration = SimDuration::from_secs(60);
        let fig = scenario_figure(&sc, 2, &RunConfig::default());
        assert_eq!(fig.signal.labels.len(), 7);
        assert_eq!(fig.signal.buckets.len(), 7);
        assert!(fig.histograms.is_none());
        // The patio (x3) has better signal than the end of Porter (x6).
        let x3 = fig.signal.buckets[3].mean();
        let x6 = fig.signal.buckets[6].mean();
        assert!(x3 > x6, "x3 {x3} vs x6 {x6}");
        // Bandwidth sits in WaveLAN territory.
        let bw = fig.bandwidth_kbps.buckets[3].mean();
        assert!((800.0..2000.0).contains(&bw), "bw {bw}");
    }

    #[test]
    fn chatterbox_figure_builds_histograms() {
        let mut sc = Scenario::chatterbox();
        sc.duration = SimDuration::from_secs(40);
        let fig = scenario_figure(&sc, 1, &RunConfig::default());
        let (sig, lat, bw, loss) = fig.histograms.expect("stationary → histograms");
        assert!(sig.total() > 0);
        assert!(lat.total() > 0);
        assert!(bw.total() > 0);
        assert!(loss.total() > 0);
        // Signal concentrates high (paper: "consistently high, ~18").
        let norm = sig.normalized();
        let high_mass: f64 = norm
            .iter()
            .filter(|&&(c, _)| c > 12.0)
            .map(|&(_, f)| f)
            .sum();
        assert!(high_mass > 0.7, "high-signal mass {high_mass}");
    }
}
