//! Flight-recorder adapters for the simulator's passive frame hook.
//!
//! [`netsim`] cannot depend on [`obs`] (obs depends on netsim for
//! virtual time), so the bridge lives here: a [`FrameHook`] that stamps
//! a `Netsim`-stage transit span for every frame a link accepts and an
//! instant for every tail-drop. The hook has no access to scheduling or
//! RNG state, so recording cannot perturb the simulation.

use netsim::{FrameHook, NodeId, SimTime};
use obs::flight::{frame_key, FlightHandle, Stage};

/// Frame hook feeding one simulator's link activity into the shared
/// flight recorder, labelled with the network it watches (`wl` for the
/// wireless collection testbed, `eth` for the modulation Ethernet).
pub struct FlightFrameHook {
    flight: FlightHandle,
    net: &'static str,
}

impl FlightFrameHook {
    /// Hook recording into `flight`, labelling spans with `net`.
    pub fn new(flight: FlightHandle, net: &'static str) -> Self {
        FlightFrameHook { flight, net }
    }
}

impl FrameHook for FlightFrameHook {
    fn on_transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: &[u8],
        sent: SimTime,
        arrival: SimTime,
    ) {
        self.flight.span(
            Stage::Netsim,
            "transit",
            Some(frame_key(bytes)),
            None,
            sent.as_nanos(),
            arrival.as_nanos(),
            format!("{} n{} -> n{} {}B", self.net, from.0, to.0, bytes.len()),
        );
    }

    fn on_link_drop(&mut self, from: NodeId, to: NodeId, bytes: &[u8], now: SimTime) {
        self.flight.instant(
            Stage::Netsim,
            "link-drop",
            Some(frame_key(bytes)),
            None,
            now.as_nanos(),
            format!(
                "{} n{} -> n{} {}B tail-drop",
                self.net,
                from.0,
                to.0,
                bytes.len()
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_records_netsim_span() {
        let fl = FlightHandle::new(16);
        let mut hook = FlightFrameHook::new(fl.clone(), "wl");
        hook.on_transit(
            NodeId(0),
            NodeId(1),
            &[1, 2, 3],
            SimTime::from_nanos(10),
            SimTime::from_nanos(30),
        );
        hook.on_link_drop(NodeId(1), NodeId(0), &[4, 5], SimTime::from_nanos(40));
        fl.with(|r| {
            let recs: Vec<_> = r.records().cloned().collect();
            assert_eq!(recs.len(), 2);
            assert_eq!(recs[0].stage, Stage::Netsim);
            assert_eq!(recs[0].begin_ns, 10);
            assert_eq!(recs[0].end_ns, 30);
            assert!(recs[0].detail.contains("wl n0 -> n1 3B"));
            assert!(!recs[1].is_span());
            assert!(recs[1].detail.contains("tail-drop"));
        });
    }
}
