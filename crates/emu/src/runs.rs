//! The three phases of the methodology as runnable operations:
//! collection (§3.1), live benchmark runs (§5.1's "real" columns), and
//! modulated runs (§3.3 + §5.1's "modulated" columns), plus the one-time
//! compensation measurement of the modulating network.

use crate::hooks::FlightFrameHook;
use crate::testbed::{build_ethernet, build_wireless, Hardware, SERVER_IP};
use crate::workload::{extract, install, is_done, run_to_completion, Benchmark, RunResult};
use distill::{distill_with_report, DistillConfig, DistillReport, DistillStats, Distiller};
use faultkit::{ChaosSink, FaultInjector};
use modulate::{Modulator, TickClock, TupleBuffer, TupleFeed};
use netsim::{SimDuration, SimRng, SimTime};
use obs::flight::FlightHandle;
use obs::{MetricsRegistry, RunManifest, RunnerSection};
use tracekit::{CollectionDaemon, Collector, PseudoDevice, ReplayTrace, Trace};
use wavelan::{Scenario, WirelessChannel};
use workloads::{PingConfig, PingWorkload};

/// Everything configurable about an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Host hardware model.
    pub hw: Hardware,
    /// Modulation scheduling clock.
    pub clock: TickClock,
    /// Apply inbound delay compensation with this measured Vb (ns/byte);
    /// `None` disables compensation.
    pub compensation: Option<f64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            hw: Hardware::default(),
            clock: TickClock::netbsd(),
            compensation: None,
        }
    }
}

/// Derive the deterministic seed for (scenario, trial, purpose).
fn seed_for(scenario: &str, trial: u32, purpose: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ purpose;
    for b in scenario.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (trial as u64) << 32
}

/// **Collection phase**: traverse `scenario` (trial `trial`) with the
/// instrumented laptop running the ping workload; return the collected
/// trace.
pub fn collect_trace(scenario: &Scenario, trial: u32, cfg: &RunConfig) -> Trace {
    let mut trial_rng = SimRng::seed_from_u64(seed_for(scenario.name, trial, 1));
    let channel = scenario.channel(&mut trial_rng);
    let meter = channel.meter();
    let dev = PseudoDevice::new(65_536);

    let scenario_secs = scenario.duration.as_secs_f64() as u64;
    let (mut tb, (_ping, daemon)) = build_wireless(
        seed_for(scenario.name, trial, 2),
        cfg.hw,
        channel,
        |laptop, _server| {
            let collector = Collector::new(dev.clone())
                .with_signal_source(Box::new(move || meter.lock().quantized()));
            laptop.set_tracer(Box::new(collector));
            let mut ping_cfg = PingConfig::paper(SERVER_IP);
            ping_cfg.duration = SimDuration::from_secs(scenario_secs);
            let ping = laptop.add_app(Box::new(PingWorkload::new(ping_cfg)));
            let daemon = laptop.add_app(Box::new(CollectionDaemon::new(
                dev.clone(),
                "thinkpad",
                "scenario",
                trial,
            )));
            (ping, daemon)
        },
    );
    tb.start();
    tb.sim.run_until(SimTime::from_secs(scenario_secs + 5));
    let now_ns = tb.sim.now().as_nanos();
    let host: &mut netstack::Host = tb.sim.node_mut(tb.laptop);
    let mut trace = host.app_mut::<CollectionDaemon>(daemon).finish(now_ns);
    trace.scenario = scenario.name.to_string();
    trace
}

/// Collection + distillation in one step.
pub fn collect_and_distill(scenario: &Scenario, trial: u32, cfg: &RunConfig) -> DistillReport {
    let trace = collect_trace(scenario, trial, cfg);
    distill_with_report(&trace, &DistillConfig::default())
}

/// **Two-sided collection** (the §6 synchronized-clocks extension):
/// tracers on *both* endpoints; the simulation's global clock plays the
/// role of the synchronized clocks. Returns (mobile trace, target
/// trace).
pub fn collect_trace_two_sided(
    scenario: &Scenario,
    trial: u32,
    cfg: &RunConfig,
) -> (tracekit::Trace, tracekit::Trace) {
    let mut trial_rng = SimRng::seed_from_u64(seed_for(scenario.name, trial, 1));
    let channel = scenario.channel(&mut trial_rng);
    let meter = channel.meter();
    let dev_m = PseudoDevice::new(65_536);
    let dev_t = PseudoDevice::new(65_536);

    let scenario_secs = scenario.duration.as_secs_f64() as u64;
    let (mut tb, (daemon_m, daemon_t)) = build_wireless(
        seed_for(scenario.name, trial, 2),
        cfg.hw,
        channel,
        |laptop, server| {
            let collector = Collector::new(dev_m.clone())
                .with_signal_source(Box::new(move || meter.lock().quantized()));
            laptop.set_tracer(Box::new(collector));
            server.set_tracer(Box::new(Collector::new(dev_t.clone())));
            let mut ping_cfg = PingConfig::paper(SERVER_IP);
            ping_cfg.duration = SimDuration::from_secs(scenario_secs);
            laptop.add_app(Box::new(PingWorkload::new(ping_cfg)));
            let daemon_m = laptop.add_app(Box::new(CollectionDaemon::new(
                dev_m.clone(),
                "thinkpad",
                scenario.name,
                trial,
            )));
            let daemon_t = server.add_app(Box::new(CollectionDaemon::new(
                dev_t.clone(),
                "server",
                scenario.name,
                trial,
            )));
            (daemon_m, daemon_t)
        },
    );
    tb.start();
    tb.sim.run_until(SimTime::from_secs(scenario_secs + 5));
    let now_ns = tb.sim.now().as_nanos();
    let mobile = {
        let host: &mut netstack::Host = tb.sim.node_mut(tb.laptop);
        host.app_mut::<CollectionDaemon>(daemon_m).finish(now_ns)
    };
    let target = {
        let host: &mut netstack::Host = tb.sim.node_mut(tb.server);
        host.app_mut::<CollectionDaemon>(daemon_t).finish(now_ns)
    };
    (mobile, target)
}

/// **Live run**: execute `benchmark` over the real (simulated-wireless)
/// scenario — the paper's "Real" columns.
pub fn live_run(
    scenario: &Scenario,
    trial: u32,
    benchmark: Benchmark,
    cfg: &RunConfig,
) -> RunResult {
    let mut trial_rng = SimRng::seed_from_u64(seed_for(scenario.name, trial, 3));
    let channel = scenario.channel(&mut trial_rng);
    let (mut tb, inst) = build_wireless(
        seed_for(scenario.name, trial, 4),
        cfg.hw,
        channel,
        |laptop, server| install(benchmark, laptop, server),
    );
    run_to_completion(&mut tb, &inst)
}

/// **Modulated run**: execute `benchmark` on the isolated Ethernet with
/// the modulation layer playing back `replay` — the paper's "Modulated"
/// columns.
pub fn modulated_run(
    replay: &ReplayTrace,
    trial: u32,
    benchmark: Benchmark,
    cfg: &RunConfig,
) -> RunResult {
    let mut modulator = Modulator::from_replay(replay.clone()).with_clock(cfg.clock);
    if let Some(vb) = cfg.compensation {
        modulator = modulator.with_compensation(vb);
    }
    let (mut tb, inst) = build_ethernet(
        seed_for(&replay.source, trial, 5),
        cfg.hw,
        |laptop, server| {
            laptop.set_shim(Box::new(modulator));
            install(benchmark, laptop, server)
        },
    );
    run_to_completion(&mut tb, &inst)
}

/// Diagnostics from a [`live_modulated_run`]'s streaming pipeline.
#[derive(Debug, Clone)]
pub struct LiveModStats {
    /// Tuples the incremental distiller pushed into the feed.
    pub tuples_fed: u64,
    /// Tuples the modulator consumed from the kernel buffer.
    pub tuples_consumed: u64,
    /// Virtual time (s) when the modulator first consumed a tuple;
    /// `Some(t)` with `t <` [`collection_secs`](Self::collection_secs)
    /// demonstrates modulation starting while collection still runs.
    pub first_consumption_secs: Option<f64>,
    /// Virtual seconds the collection phase ran (trace span + drain).
    pub collection_secs: f64,
    /// High-water mark of the user-space feed backlog.
    pub peak_backlog: usize,
    /// Statistics from the incremental distillation.
    pub distill: DistillStats,
}

/// Benchmark result plus pipeline diagnostics from a live run.
#[derive(Debug, Clone)]
pub struct LiveModOutcome {
    /// The benchmark outcome on the modulated Ethernet.
    pub result: RunResult,
    /// Streaming-pipeline diagnostics.
    pub stats: LiveModStats,
    /// Observability manifest: deterministic metrics from every
    /// pipeline stage, the modulation fidelity self-check, and a
    /// wall-clock runner section.
    pub manifest: RunManifest,
    /// Causal flight recorder holding per-packet lifecycle events from
    /// every pipeline stage; export with
    /// [`to_chrome_trace`](obs::flight::FlightHandle::to_chrome_trace)
    /// or query with [`obs::flight::FlightRecorder::journey`].
    pub flight: FlightHandle,
}

/// **Live modulated run**: collection, distillation, and modulation
/// running *concurrently* — the streaming pipeline end to end. The
/// collection testbed is built exactly like [`collect_trace`] (same
/// seed purposes, same apps), but instead of waiting for the full
/// trace, records are stolen from the collection daemon between
/// lockstep slices and pushed through an incremental
/// [`Distiller`] whose tuples flow — via a [`TupleFeed`] and the
/// bounded kernel [`TupleBuffer`] — straight into a
/// [`Modulator`] shimmed under the benchmark on the modulation
/// Ethernet. The two simulations advance in 500 ms lockstep, so the
/// benchmark experiences network quality distilled moments earlier.
pub fn live_modulated_run(
    scenario: &Scenario,
    trial: u32,
    benchmark: Benchmark,
    dcfg: &DistillConfig,
    cfg: &RunConfig,
) -> LiveModOutcome {
    match live_modulated_run_inner(scenario, trial, benchmark, dcfg, cfg, None, None) {
        Ok(outcome) => outcome,
        Err(_) => unreachable!("no abort point configured"),
    }
}

/// The chaos-aware core of [`live_modulated_run`]. With `injector:
/// None` this is byte-for-byte the clean pipeline; with an injector the
/// fault hooks activate (ring-cap override, record corruption/
/// truncation/clock-jump via the injector's decode chain, tuple drops,
/// feed stalls). `abort_at_record` simulates a worker kill: once that
/// many records have been stolen from the collection daemon the run
/// aborts, returning `Err(virtual_time_ns)` so the plan runner can
/// restart the cell.
pub(crate) fn live_modulated_run_inner(
    scenario: &Scenario,
    trial: u32,
    benchmark: Benchmark,
    dcfg: &DistillConfig,
    cfg: &RunConfig,
    mut injector: Option<&mut FaultInjector>,
    abort_at_record: Option<u64>,
) -> Result<LiveModOutcome, u64> {
    // Collection side — identical construction to `collect_trace`,
    // plus a flight recorder threaded through every stage. Recording is
    // passive (no scheduling or RNG access), so the benchmark outcome
    // and manifests are bit-identical with or without it.
    let flight = FlightHandle::new(65_536);
    let mut trial_rng = SimRng::seed_from_u64(seed_for(scenario.name, trial, 1));
    let mut channel = scenario.channel(&mut trial_rng);
    channel.set_flight(flight.clone());
    let meter = channel.meter();
    let mut ring_cap = 65_536;
    if let Some(inj) = injector.as_deref_mut() {
        if let Some(cap) = inj.oom_ring_cap() {
            ring_cap = cap;
            inj.note_oom_ring();
        }
    }
    let dev = PseudoDevice::new(ring_cap);
    let scenario_secs = scenario.duration.as_secs_f64() as u64;
    let flight_collect = flight.clone();
    let (mut wl, (_ping, daemon)) = build_wireless(
        seed_for(scenario.name, trial, 2),
        cfg.hw,
        channel,
        |laptop, _server| {
            let collector = Collector::new(dev.clone())
                .with_signal_source(Box::new(move || meter.lock().quantized()))
                .with_flight(flight_collect);
            laptop.set_tracer(Box::new(collector));
            let mut ping_cfg = PingConfig::paper(SERVER_IP);
            ping_cfg.duration = SimDuration::from_secs(scenario_secs);
            let ping = laptop.add_app(Box::new(PingWorkload::new(ping_cfg)));
            let daemon = laptop.add_app(Box::new(CollectionDaemon::new(
                dev.clone(),
                "thinkpad",
                scenario.name,
                trial,
            )));
            (ping, daemon)
        },
    );

    // Modulation side — the modulator reads the same kernel buffer the
    // feed writes into; no replay file in between.
    let buf = TupleBuffer::new(64);
    let mut feed = TupleFeed::new(buf.clone());
    let mut modulator = Modulator::from_buffer(buf.clone())
        .with_clock(cfg.clock)
        .with_flight(flight.clone());
    if let Some(vb) = cfg.compensation {
        modulator = modulator.with_compensation(vb);
    }
    let (mut eth, inst) = build_ethernet(
        seed_for(scenario.name, trial, 9),
        cfg.hw,
        |laptop, server| {
            laptop.set_shim(Box::new(modulator));
            install(benchmark, laptop, server)
        },
    );
    wl.sim
        .set_frame_hook(Box::new(FlightFrameHook::new(flight.clone(), "wl")));
    eth.sim
        .set_frame_hook(Box::new(FlightFrameHook::new(flight.clone(), "eth")));

    let wall_start = std::time::Instant::now();
    let mut distiller = Some(Distiller::new(dcfg).with_flight(flight.clone()));
    let collect_end = SimTime::from_secs(scenario_secs + 5);
    let deadline = SimTime::ZERO + benchmark.deadline();
    let slice = SimDuration::from_millis(500);

    wl.start();
    eth.start();

    let mut now = SimTime::ZERO;
    let mut first_consumption_secs = None;
    let mut records_processed: u64 = 0;
    let mut finished_stats: Option<DistillStats> = None;
    loop {
        now = (now + slice).min(deadline);
        if let Some(inj) = injector.as_deref_mut() {
            inj.set_now(now.as_nanos());
        }

        // Advance collection (while it lasts) and stream the fresh
        // records through the distiller into the feed.
        if let Some(d) = distiller.as_mut() {
            let wl_now = now.min(collect_end);
            wl.sim.run_until(wl_now);
            let host: &mut netstack::Host = wl.sim.node_mut(wl.laptop);
            let app = host.app_mut::<CollectionDaemon>(daemon);
            let fresh = if wl_now >= collect_end {
                app.finish(wl_now.as_nanos()).records
            } else {
                std::mem::take(&mut app.trace.records)
            };
            records_processed += fresh.len() as u64;
            match injector.as_deref_mut() {
                Some(inj) => {
                    // Faulted path: records detour through the
                    // injector's encode→corrupt→decode→quarantine
                    // chain, and tuples through the dropping sink.
                    let survivors = inj.process_records(&fresh);
                    let mut sink = ChaosSink::new(&mut feed, inj);
                    for rec in &survivors {
                        d.push_record(rec, &mut sink);
                    }
                }
                None => {
                    for rec in &fresh {
                        d.push_record(rec, &mut feed);
                    }
                }
            }
            if wl_now >= collect_end {
                if let Some(d) = distiller.take() {
                    finished_stats = Some(match injector.as_deref_mut() {
                        Some(inj) => {
                            inj.finish_records();
                            let mut sink = ChaosSink::new(&mut feed, inj);
                            d.finish(&mut sink)
                        }
                        None => d.finish(&mut feed),
                    });
                    // Collection is over: an empty buffer from here on
                    // means end-of-trace, not starvation.
                    feed.close();
                }
            }
        }
        if let Some(at) = abort_at_record {
            if records_processed >= at {
                return Err(now.as_nanos());
            }
        }
        let stalled = injector
            .as_deref_mut()
            .is_some_and(|inj| inj.stall_feed_active());
        feed.set_paused(stalled);
        feed.pump();

        // Advance the modulated benchmark over the same span.
        eth.sim.run_until(now);
        let consumed = feed.fed() - feed.backlog() as u64 - buf.len() as u64;
        if consumed > 0 && first_consumption_secs.is_none() {
            first_consumption_secs = Some(now.as_secs_f64());
        }
        if is_done(&eth, &inst) || now >= deadline {
            break;
        }
    }

    // The benchmark may finish before collection does; flush the
    // distiller so its stats cover everything pushed so far.
    let distill = finished_stats
        .or_else(|| {
            distiller.take().map(|d| {
                let stats = match injector.as_deref_mut() {
                    Some(inj) => {
                        inj.finish_records();
                        let mut sink = ChaosSink::new(&mut feed, inj);
                        d.finish(&mut sink)
                    }
                    None => d.finish(&mut feed),
                };
                // Close the buffer directly (no pump): nothing consumes
                // after the loop, and pumping here would perturb the
                // buffer counters relative to the established baseline.
                buf.close();
                stats
            })
        })
        .unwrap_or_default();
    let tuples_fed = feed.fed();
    let tuples_consumed = tuples_fed - feed.backlog() as u64 - buf.len() as u64;

    // Assemble the run manifest. Everything below `metrics`/`fidelity`
    // derives from virtual-time simulation state only; wall-clock
    // readings go exclusively into the runner section.
    let mut manifest = RunManifest::new(scenario.name, benchmark.name(), trial);
    let (family, params) = scenario.model_info();
    manifest.set_model(&family, &params);
    let mut m = MetricsRegistry::new();
    m.set_counter("netsim.collect.events", wl.sim.events_processed());
    m.set_counter(
        "netsim.collect.peak_queue_depth",
        wl.sim.peak_queue_depth() as u64,
    );
    m.set_counter("netsim.modulate.events", eth.sim.events_processed());
    m.set_counter(
        "netsim.modulate.peak_queue_depth",
        eth.sim.peak_queue_depth() as u64,
    );
    // Calendar-queue health for both event cores: all virtual-time
    // deterministic, so they are part of the cross-worker byte-identity
    // surface like every other counter here.
    for (prefix, qs) in [
        ("netsim.collect", wl.sim.queue_stats()),
        ("netsim.modulate", eth.sim.queue_stats()),
    ] {
        m.set_counter(&format!("{prefix}.wheel_pushes"), qs.pushes);
        m.set_counter(&format!("{prefix}.wheel_overflow"), qs.overflow_pushes);
        m.set_counter(&format!("{prefix}.wheel_buckets"), qs.buckets_opened);
        m.set_counter(
            &format!("{prefix}.wheel_whole_drains"),
            qs.buckets_drained_whole,
        );
    }
    if let Some(ch) = wl.channel {
        let cs = wl.sim.node::<WirelessChannel>(ch).stats();
        m.set_counter("wavelan.up_frames", cs.up_frames);
        m.set_counter("wavelan.down_frames", cs.down_frames);
        m.set_counter("wavelan.dropped", cs.dropped);
        m.set_counter("wavelan.cross_frames", cs.cross_frames);
        m.set_counter("wavelan.rate_changes", cs.rate_changes);
        m.set_counter("wavelan.handoffs", cs.handoffs);
    }
    m.set_counter("distill.solved", distill.solved as u64);
    m.set_counter("distill.corrected", distill.corrected as u64);
    m.set_counter("distill.triplets", distill.triplets as u64);
    m.set_counter("distill.probes_sent", distill.probes_sent as u64);
    m.set_counter("distill.replies_seen", distill.replies_seen as u64);
    m.set_counter("distill.tuples", distill.tuples as u64);
    m.set_counter("distill.late_records", distill.late_records as u64);
    m.set_counter("distill.groups_retired", distill.groups_retired as u64);
    m.set_gauge("distill.peak_open_groups", distill.peak_open_groups as f64);
    m.set_gauge(
        "distill.peak_window_entries",
        distill.peak_window_entries as f64,
    );
    {
        let modulator: &Modulator = eth.laptop_host().shim();
        let ms = modulator.stats();
        m.set_counter("modulate.offered", ms.offered);
        m.set_counter("modulate.immediate", ms.immediate);
        m.set_counter("modulate.held", ms.held);
        m.set_counter("modulate.dropped", ms.dropped);
        m.set_counter("modulate.unmodulated", ms.unmodulated);
        m.set_gauge("modulate.held_now", modulator.held_count() as f64);
        let ss = modulator.sched_stats();
        m.set_counter("modulate.sched.pushes", ss.pushes);
        m.set_counter("modulate.sched.whole_drains", ss.buckets_drained_whole);
        m.set_gauge("modulate.sched.peak_held", ss.peak_len as f64);
        manifest.fidelity = modulator.fidelity();
    }
    m.set_counter("modulate.buffer_written", buf.total_written());
    m.set_counter("modulate.buffer_popped", buf.total_popped());
    m.set_counter("modulate.buffer_rejected", buf.rejected());
    m.set_gauge("modulate.buffer_capacity", buf.capacity() as f64);
    m.set_gauge(
        "modulate.buffer_peak_occupancy",
        buf.peak_occupancy() as f64,
    );
    m.set_counter("modulate.feed_fed", tuples_fed);
    m.set_gauge("modulate.feed_peak_backlog", feed.peak_backlog() as f64);
    flight.with(|r| {
        m.set_counter("obs.flight.recorded", r.pushed());
        m.set_counter("obs.flight.evicted", r.evicted());
        m.set_counter("obs.flight.packets", r.packets());
        m.set_counter("obs.flight.dropped_open", r.dropped_open());
    });
    m.set_counter("emu.records_processed", records_processed);
    m.set_gauge(
        "emu.collection_virtual_secs",
        collect_end.min(now).as_secs_f64(),
    );
    if let Some(inj) = injector.as_deref() {
        // Chaos runs only: injected-fault tallies (one counter per
        // fault kind) plus the degradation side-channels. Absent
        // entirely on clean runs so baselines stay unchanged.
        let c = inj.counters();
        m.set_counter("fault.injected_total", c.injected_total());
        m.set_counter("fault.corrupt_chunks", c.corrupt_chunks);
        m.set_counter("fault.truncations", c.truncations);
        m.set_counter("fault.dropped_tuples", c.dropped_tuples);
        m.set_counter("fault.stalls", c.stalls);
        m.set_counter("fault.clock_jumps", c.clock_jumps);
        m.set_counter("fault.worker_kills", c.worker_kills);
        m.set_counter("fault.oom_rings", c.oom_rings);
        m.set_counter("fault.truncated_records", c.truncated_records);
        m.set_counter("fault.quarantined_records", c.quarantined_records);
        m.set_counter("fault.quarantined_bytes", c.quarantined_bytes);
        m.set_counter("fault.rejected_timestamps", c.rejected_timestamps);
    }
    manifest.metrics = m;

    let wall_secs = wall_start.elapsed().as_secs_f64();
    manifest.runner = Some(RunnerSection {
        wall_secs,
        workers: 1,
        records_per_sec: if wall_secs > 0.0 {
            records_processed as f64 / wall_secs
        } else {
            0.0
        },
        worker_utilization: 1.0,
    });

    Ok(LiveModOutcome {
        result: extract(&eth, &inst),
        stats: LiveModStats {
            tuples_fed,
            tuples_consumed,
            first_consumption_secs,
            collection_secs: collect_end.min(now).as_secs_f64(),
            peak_backlog: feed.peak_backlog(),
            distill,
        },
        manifest,
        flight,
    })
}

/// **Asymmetric modulated run** (the §6 extension): per-direction
/// replay traces drive outbound and inbound traffic independently; no
/// symmetry assumption, no compensation.
pub fn modulated_run_asymmetric(
    up: &tracekit::ReplayTrace,
    down: &tracekit::ReplayTrace,
    trial: u32,
    benchmark: Benchmark,
    cfg: &RunConfig,
) -> RunResult {
    let modulator = Modulator::from_asymmetric(up.clone(), down.clone()).with_clock(cfg.clock);
    let (mut tb, inst) =
        build_ethernet(seed_for(&up.source, trial, 8), cfg.hw, |laptop, server| {
            laptop.set_shim(Box::new(modulator));
            install(benchmark, laptop, server)
        });
    run_to_completion(&mut tb, &inst)
}

/// **Ethernet baseline**: the benchmark on the bare modulation testbed
/// (the tables' final rows).
pub fn ethernet_run(trial: u32, benchmark: Benchmark, cfg: &RunConfig) -> RunResult {
    let (mut tb, inst) =
        build_ethernet(seed_for("ethernet", trial, 6), cfg.hw, |laptop, server| {
            install(benchmark, laptop, server)
        });
    run_to_completion(&mut tb, &inst)
}

/// **Compensation measurement** (§3.3): run the ping workload + tracer
/// over the bare modulation Ethernet, distill, and return the long-term
/// mean bottleneck per-byte cost (ns/byte). Independent of any traced
/// network; needs to be done only once per testbed.
pub fn measure_compensation(cfg: &RunConfig) -> f64 {
    let dev = PseudoDevice::new(65_536);
    let (mut tb, daemon) = build_ethernet(seed_for("comp", 0, 7), cfg.hw, |laptop, _server| {
        laptop.set_tracer(Box::new(Collector::new(dev.clone())));
        let mut ping_cfg = PingConfig::paper(SERVER_IP);
        ping_cfg.duration = SimDuration::from_secs(60);
        laptop.add_app(Box::new(PingWorkload::new(ping_cfg)));
        laptop.add_app(Box::new(CollectionDaemon::new(
            dev.clone(),
            "thinkpad",
            "ethernet",
            0,
        )))
    });
    tb.start();
    tb.sim.run_until(SimTime::from_secs(66));
    let now_ns = tb.sim.now().as_nanos();
    let host: &mut netstack::Host = tb.sim.node_mut(tb.laptop);
    let trace = host.app_mut::<CollectionDaemon>(daemon).finish(now_ns);
    let report = distill_with_report(&trace, &DistillConfig::default());
    modulate::compensation_from_replay(&report.replay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_produces_probe_records_and_signal_samples() {
        let mut sc = Scenario::porter();
        sc.duration = SimDuration::from_secs(30);
        let trace = collect_trace(&sc, 1, &RunConfig::default());
        assert_eq!(trace.scenario, "porter");
        let echoes = trace
            .packets()
            .filter(|p| matches!(p.proto, tracekit::ProtoInfo::IcmpEcho { .. }))
            .count();
        assert!((28..=92).contains(&echoes), "echo records: {echoes}");
        let dev = trace.device_samples().count();
        assert!(dev > 100, "device samples: {dev}");
        // Signal levels must reflect the scenario (nonzero most of run).
        let nonzero = trace.device_samples().filter(|d| d.signal > 0).count();
        assert!(nonzero > dev / 2);
    }

    #[test]
    fn distilled_parameters_near_channel_ground_truth() {
        // A constant-conditions scenario distills back to its own
        // parameters — the end-to-end version of the solver test.
        let mut sc = Scenario::chatterbox();
        sc.cross = None; // no contention: clean recovery check
        sc.duration = SimDuration::from_secs(60);
        sc.checkpoints = vec![
            wavelan::Checkpoint {
                label: "c",
                signal: (18.0, 18.0),
                latency_ms: (3.0, 3.0),
                bw_kbps: (1500.0, 1500.0),
                loss: (0.0, 0.0),
            };
            2
        ];
        let report = collect_and_distill(&sc, 1, &RunConfig::default());
        assert!(report.triplets >= 50, "triplets {}", report.triplets);
        let replay = &report.replay;
        assert!(replay.is_valid());
        // One-way latency ≈ 3 ms (+ MAC overhead ~0.3 ms + queueing).
        let lat_ms = replay.mean_latency().as_millis_f64();
        assert!((2.5..6.5).contains(&lat_ms), "latency {lat_ms} ms");
        // Bottleneck bandwidth ≈ 1.5 Mb/s → Vb ≈ 5333 ns/B (±40%).
        let vb = replay.mean_vb();
        assert!((3200.0..7500.0).contains(&vb), "vb {vb}");
        assert!(replay.mean_loss() < 0.05, "loss {}", replay.mean_loss());
    }

    #[test]
    fn compensation_near_ethernet_per_byte_cost() {
        let vb = measure_compensation(&RunConfig::default());
        // 10 Mb/s Ethernet → 800 ns/B; host CPU pacing adds apparent
        // per-byte cost, so accept a broad band around it.
        assert!((400.0..2500.0).contains(&vb), "vb {vb}");
    }
}
