//! Fleet orchestration: N mobile clients, one virtual-time engine per
//! shard, byte-identical output at any shard count.
//!
//! A [`FleetPlan`] describes a fleet — N clients all walking one
//! scenario, each with its *own* synthesized channel (per-client seeds
//! drive [`Scenario::model`], so the fleet is N distinct realizations
//! of the scenario's quality envelope, not N copies of one curve).
//! Plans built from a [`ScenarioPack`] ([`FleetPlan::from_pack`]) go
//! further: clients split across the pack's weighted mix of registry
//! model specs — a mixed-radio fleet where some clients ride a LEO
//! constellation while others walk an ERRANT cellular profile.
//! [`fleet_run`] shards the clients into contiguous ranges, runs one
//! [`FleetSim`] engine per shard as a [`TrialPlan`] cell (reusing the
//! plan-order reassembly machinery, so shard outputs merge
//! deterministically no matter how workers interleave), and
//! concatenates the per-client [`RunManifest`]s in client order.
//!
//! **Shard invariance.** A client's entire simulation depends only on
//! plan parameters and its own client index: its channel and traffic
//! RNG streams are seeded per client, its modulator is private, and the
//! shared infrastructure it traverses — base stations and the wired
//! core — is a [`StationTable`] of *static* load factors computed from
//! the full fleet layout rather than runtime queue state. Cross-client
//! coupling is therefore commutative (station counters sum), and the
//! merged output is byte-identical at 1, 2, or 8 shards. The
//! determinism proptest in `tests/fleet_determinism.rs` holds the
//! runner to exactly that.
//!
//! **Traffic model.** Each client probes like the paper's collection
//! daemon: alternating 106- and 542-byte pings on a fixed cadence
//! (phase-staggered per client). The probe passes the client's
//! modulation layer outbound (trace-driven delay/loss), crosses its
//! base station and the wired core to a server, and the echo returns
//! through the station and the modulation layer inbound; the completed
//! round trip lands in a per-client RTT histogram.

use crate::plan::{CellKind, Exec, TrialCell, TrialPlan};
use crate::runs::RunConfig;
use faultkit::{FaultCounters, FaultEvent, FaultInjector, FaultPlan};
use modulate::{Modulator, TickClock};
use netsim::fleet::{FleetSim, FleetStep, PacketStore, StationTable};
use netsim::{SimDuration, SimRng, SimTime};
use netstack::{Direction, LinkShim, ShimRelease, ShimVerdict};
use obs::fleet::FleetReport;
use obs::telemetry::{FleetTelemetry, SampleInputs, ShardTelemetry, TelemetryConfig};
use obs::{FidelityThresholds, Hist, Profiler, RunManifest, RunnerSection};
use tracekit::{QualityTuple, ReplayTrace};
use wavelan::{ChannelModel, Registry, Scenario, ScenarioPack};

/// Small probe wire size (the paper's short ping).
const PROBE_SMALL: u32 = 106;
/// Large probe wire size (the paper's long ping).
const PROBE_LARGE: u32 = 542;
/// One-way wired-core latency between a base station and the server.
const WIRED_ONEWAY_NS: u64 = 250_000;
/// Base per-byte service cost through a station's wired uplink
/// (100 Mb/s ⇒ 80 ns/byte), inflated by the station's load factor.
const CORE_NS_PER_BYTE: f64 = 80.0;
/// Server per-request turnaround (Pentium 90, cf. the testbed).
const SERVER_CPU_NS: u64 = 350_000;
/// Per-byte service inflation per additional client on a station.
const STATION_ALPHA: f64 = 0.02;
/// Cadence at which each client's channel model is sampled into replay
/// tuples (the distiller's interval scale).
const TUPLE_CADENCE_NS: u64 = 2_000_000_000;
/// Virtual grace past the scenario end for in-flight drains.
const DRAIN_GRACE_NS: u64 = 10_000_000_000;

/// Seed-purpose tags (disjoint from `runs::seed_for` purposes 1–9).
const PURPOSE_CHANNEL: u64 = 0x21;
const PURPOSE_TRAFFIC: u64 = 0x22;
const PURPOSE_PHASE: u64 = 0x23;

/// FNV-style per-client seed derivation: one independent stream per
/// `(fleet seed, client, purpose)`, stable across shard layouts.
fn client_seed(fleet_seed: u64, client: u32, purpose: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ purpose;
    h = h.wrapping_mul(0x100_0000_01b3);
    h ^= fleet_seed;
    h = h.wrapping_mul(0x100_0000_01b3);
    h ^= u64::from(client) << 1 | 1;
    h.wrapping_mul(0x100_0000_01b3)
}

/// Description of a fleet run.
#[derive(Clone)]
pub struct FleetPlan {
    /// Scenario every client walks (each with its own realization).
    pub scenario: Scenario,
    /// Number of clients.
    pub clients: u32,
    /// Fleet seed; per-client streams derive from it.
    pub seed: u64,
    /// Shard count (contiguous client ranges, one engine each).
    pub shards: usize,
    /// Scheduling clock for every client's modulator.
    pub clock: TickClock,
    /// Per-client modulation-wheel width (narrow by default: 64 slots
    /// × the 10 ms tick still covers 640 ms of holds at ~1.5 KiB per
    /// client instead of ~96 KiB; see `netsim::wheel::SLOTS`).
    pub wheel_slots: usize,
    /// Base-station count (clients attach round-robin).
    pub stations: u32,
    /// Probe cadence per client.
    pub probe_interval: SimDuration,
    /// Override the scenario duration (tests and benches shorten it).
    pub duration: Option<SimDuration>,
    /// Telemetry-plane configuration; `None` (default) runs with the
    /// plane off and zero sampling work in the engine loop.
    pub telemetry: Option<TelemetryConfig>,
    /// Run the scoped self-profiler (wall-clock spans over the shard
    /// hot paths; opt-in because it reads `Instant` per event).
    pub profile: bool,
    /// Scenario pack behind this plan, when one was loaded: clients
    /// draw their channel spec from the pack's weighted mix
    /// ([`ScenarioPack::spec_for_client`]) instead of all walking the
    /// scenario's single model — a mixed-radio fleet.
    pub pack: Option<ScenarioPack>,
}

impl FleetPlan {
    /// A fleet of `clients` walking `scenario` with the defaults: one
    /// shard, NetBSD 10 ms clock, 64-slot per-client wheels, one
    /// station per 32 clients, 1 s probe cadence.
    pub fn new(scenario: Scenario, clients: u32) -> Self {
        assert!(clients > 0, "a fleet needs at least one client");
        FleetPlan {
            scenario,
            clients,
            seed: 7,
            shards: 1,
            clock: TickClock::netbsd(),
            wheel_slots: 64,
            stations: (clients / 32).max(1),
            probe_interval: SimDuration::from_secs(1),
            duration: None,
            telemetry: None,
            profile: false,
            pack: None,
        }
    }

    /// A fleet built from a scenario pack: clients split across the
    /// pack's weighted model mix, all other knobs at [`FleetPlan::new`]
    /// defaults. The pack must already be validated (see
    /// [`wavelan::load_pack`]).
    pub fn from_pack(pack: ScenarioPack, clients: u32) -> Self {
        let mut plan = FleetPlan::new(pack.scenario(), clients);
        plan.pack = Some(pack);
        plan
    }

    /// Set the fleet seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Override the scenario duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Set the probe cadence.
    pub fn with_probe_interval(mut self, interval: SimDuration) -> Self {
        assert!(interval.as_nanos() > 0, "probe interval must be positive");
        self.probe_interval = interval;
        self
    }

    /// Enable the telemetry plane under `cfg`.
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Enable the scoped self-profiler.
    pub fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Effective duration (override or the scenario's).
    pub fn duration(&self) -> SimDuration {
        self.duration.unwrap_or(self.scenario.duration)
    }

    /// The channel model family + canonical params governing `client`
    /// — the pack's per-client spec for mixed fleets, otherwise the
    /// scenario's own model identity. Pure function of the client
    /// index, so attribution is shard-invariant.
    pub fn model_info_for(&self, client: u32) -> (String, String) {
        match &self.pack {
            Some(pack) => pack.spec_for_client(client).info(),
            None => self.scenario.model_info(),
        }
    }

    /// Contiguous near-equal client ranges, one per shard. Contiguity
    /// is what lets the merged manifest list be a plain concatenation
    /// in plan order.
    pub fn shard_ranges(&self) -> Vec<(u32, u32)> {
        let shards = self.shards.min(self.clients as usize).max(1) as u32;
        let base = self.clients / shards;
        let rem = self.clients % shards;
        let mut ranges = Vec::with_capacity(shards as usize);
        let mut lo = 0;
        for s in 0..shards {
            let hi = lo + base + u64::from(s < rem) as u32;
            ranges.push((lo, hi));
            lo = hi;
        }
        ranges
    }
}

/// Build one client's channel model. Plans carrying a scenario pack
/// route through the registry with the client's spec from the weighted
/// mix; plain plans use the scenario's own model. Either way the model
/// is a generic [`ChannelModel`] — nothing here assumes WaveLAN.
fn client_model(plan: &FleetPlan, client: u32, rng: &mut SimRng) -> Box<dyn ChannelModel> {
    match &plan.pack {
        Some(pack) => Registry::builtin()
            .build(pack.spec_for_client(client), plan.duration(), rng)
            .expect("pack specs are validated at load time"),
        None => plan.scenario.model(rng),
    }
}

/// Synthesize one client's replay trace: its own realization of its
/// channel model, sampled on the tuple cadence. This is the per-client
/// diversity that makes a fleet meaningful — each client draws a
/// distinct realization (and, under a pack, possibly a distinct model
/// family) from its seed.
fn client_replay(plan: &FleetPlan, client: u32) -> ReplayTrace {
    let mut rng = SimRng::seed_from_u64(client_seed(plan.seed, client, PURPOSE_CHANNEL));
    let mut model = client_model(plan, client, &mut rng);
    let duration_ns = plan.duration().as_nanos();
    let mut replay = ReplayTrace::new(&format!("fleet/{}/{client}", plan.scenario.name));
    let mut t = 0u64;
    while t < duration_ns {
        let c = model.sample(SimTime::from_nanos(t), &mut rng);
        replay.tuples.push(QualityTuple {
            duration_ns: TUPLE_CADENCE_NS,
            latency_ns: c.latency.as_nanos(),
            vb_ns_per_byte: 8e9 / c.bandwidth_bps.max(1) as f64,
            vr_ns_per_byte: 0.0,
            loss: c.loss,
        });
        t += TUPLE_CADENCE_NS;
    }
    replay
}

/// Fleet event payload.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The client emits its next probe.
    Probe,
    /// Service the client's modulation queue (scheduled at its
    /// earliest due release).
    ModWake,
    /// The server's echo arrives back at the client's inbound shim.
    Return {
        /// Packet-store row of the probe being echoed.
        packet: u32,
    },
}

/// Per-client simulation state.
struct ClientState {
    m: Modulator,
    rng: SimRng,
    /// Earliest scheduled `ModWake`, `u64::MAX` when none; dedups the
    /// wake events (the modulator's `next_wakeup` moves as packets
    /// arrive).
    next_wake_ns: u64,
    small_next: bool,
    station: u32,
    probes_sent: u64,
    completed: u64,
    lost: u64,
    rtt_ms: Hist,
}

/// One shard of a fleet: the clients in `[lo, hi)` plus the fault
/// configuration, packaged as a [`TrialPlan`] cell payload.
pub struct FleetShard {
    plan: FleetPlan,
    lo: u32,
    hi: u32,
    fault: Option<(u64, FaultPlan)>,
}

/// Everything one shard produced.
#[derive(Debug)]
pub struct FleetShardOutcome {
    /// First client index of the shard (merge-order check).
    pub first_client: u32,
    /// Per-client manifests, in client order.
    pub manifests: Vec<RunManifest>,
    /// This shard's station traffic counters (summed into the fleet
    /// table on merge).
    pub stations: StationTable,
    /// Events the shard engine dispatched (layout-invariant in sum).
    pub events_processed: u64,
    /// Engine queue high-water mark (diagnostic; depends on how
    /// clients interleave, so never part of deterministic output).
    pub peak_queue_depth: usize,
    /// Packet-arena rows grown (diagnostic, layout-dependent).
    pub packet_rows: usize,
    /// Peak concurrent in-flight packets (diagnostic).
    pub peak_packets_live: usize,
    /// Virtual seconds the shard covered.
    pub virtual_secs: f64,
    /// Faults injected while running this shard.
    pub faults: Vec<FaultEvent>,
    /// Fault tallies for this shard.
    pub counters: FaultCounters,
    /// This shard's telemetry ring and worst-client tracker, when the
    /// plan enables the plane (merged fleet-wide in plan order).
    pub telemetry: Option<ShardTelemetry>,
    /// This shard's self-profile, when the plan enables it
    /// (wall-clock; merged by summation, never deterministic).
    pub profile: Option<Profiler>,
}

impl FleetShard {
    /// Execute the shard. `cell_index` is this shard's position in its
    /// trial plan: `kill_worker(idx, at_event)` faults target cell
    /// indices (exactly like [`chaos_live_run`](crate::chaos_live_run)),
    /// so kills land on the same shard at any worker count. A killed
    /// shard runs a probe pass aborted at the kill point, notes the
    /// kill, and restarts; since shards are pure functions of the plan,
    /// the definitive rerun is bitwise identical to an uninterrupted
    /// one, preserving merge order.
    pub fn run(&self, cell_index: usize) -> FleetShardOutcome {
        let Some((seed, fplan)) = &self.fault else {
            return run_shard(&self.plan, self.lo, self.hi, None)
                .unwrap_or_else(|_| unreachable!("unkilled run has no abort point"));
        };
        let span_ns = self.plan.duration().as_nanos() + DRAIN_GRACE_NS;
        let mut injector = FaultInjector::new(*seed, fplan, span_ns);
        if let Some((idx, at_event)) = injector.kill() {
            if idx == cell_index {
                // Probe pass: find the virtual time the kill lands at.
                // If the shard finishes under `at_event` events the kill
                // never fires.
                if let Err(killed_at_ns) = run_shard(&self.plan, self.lo, self.hi, Some(at_event)) {
                    injector.note_worker_kill(killed_at_ns);
                }
            }
        }
        let mut out = run_shard(&self.plan, self.lo, self.hi, None)
            .unwrap_or_else(|_| unreachable!("definitive run has no abort point"));
        out.counters = *injector.counters();
        out.faults = injector.into_events();
        out
    }
}

/// Reinterpret a frame's leading bytes as its packet-store row. Frames
/// cycle through a shard-local pool; only these four bytes are ever
/// read, so stale tail bytes cannot influence anything.
fn packet_of(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("probe frames are ≥ 4 B"))
}

/// Pull a frame from the pool (or allocate), size it, stamp the packet
/// id into the leading bytes.
fn frame_for(pool: &mut Vec<Vec<u8>>, packet: u32, size: u32) -> Vec<u8> {
    let mut f = pool.pop().unwrap_or_default();
    f.resize(size as usize, 0);
    f[..4].copy_from_slice(&packet.to_le_bytes());
    f
}

/// Schedule the server echo for an uplinked probe: station service
/// (load-inflated) out and back, the wired core both ways, and the
/// server turnaround.
#[allow(clippy::too_many_arguments)] // one parameter per physical hop input; a struct would be pure ceremony
fn uplink(
    sim: &mut FleetSim<Ev>,
    stations: &mut StationTable,
    station: u32,
    client: u32,
    packet: u32,
    size: u32,
    bytes: Vec<u8>,
    pool: &mut Vec<Vec<u8>>,
    now_ns: u64,
) {
    stations.record(station, size);
    let core = 2 * stations.service_ns(station, size, CORE_NS_PER_BYTE)
        + 2 * WIRED_ONEWAY_NS
        + SERVER_CPU_NS;
    sim.schedule(now_ns + core, client, Ev::Return { packet });
    pool.push(bytes);
}

/// Account a completed round trip and free the packet row.
fn complete(cl: &mut ClientState, store: &mut PacketStore, packet: u32, now_ns: u64) {
    let rtt_ms = (now_ns - store.sent_ns(packet)) as f64 / 1e6;
    cl.rtt_ms.observe(rtt_ms);
    cl.completed += 1;
    store.release(packet);
}

/// Re-arm the client's `ModWake` if its modulator's earliest due
/// release moved earlier than the armed wake.
fn update_wake(sim: &mut FleetSim<Ev>, cl: &mut ClientState, client: u32) {
    if let Some(w) = cl.m.next_wakeup() {
        let w_ns = w.as_nanos();
        if w_ns < cl.next_wake_ns {
            cl.next_wake_ns = w_ns;
            sim.schedule(w_ns, client, Ev::ModWake);
        }
    }
}

/// Run one shard's clients to completion. `kill_after` aborts the run
/// after that many dispatched events and returns `Err(virtual ns)` —
/// the chaos probe pass.
///
/// When the plan enables telemetry, the engine delivers sample
/// boundaries on the configured virtual interval and this function
/// reads the shard's cumulative state at each one (an O(clients) scan
/// of cheap integer accessors — nothing on the per-event path).
/// Telemetry is skipped during chaos probe passes: their output is
/// discarded, and samples never count against the kill budget, so the
/// definitive rerun's bytes are unchanged.
fn run_shard(
    plan: &FleetPlan,
    lo: u32,
    hi: u32,
    kill_after: Option<u64>,
) -> Result<FleetShardOutcome, u64> {
    let duration_ns = plan.duration().as_nanos();
    let end_ns = duration_ns + DRAIN_GRACE_NS;
    let interval_ns = plan.probe_interval.as_nanos();
    let mut stations = StationTable::for_fleet(plan.clients, plan.stations, STATION_ALPHA);
    let mut store = PacketStore::new();
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut scratch: Vec<ShimRelease> = Vec::new();
    let mut sim: FleetSim<Ev> = FleetSim::new();
    let mut prof = if plan.profile {
        let mut p = Profiler::new();
        p.enter("shard");
        p.enter("setup");
        Some(p)
    } else {
        None
    };
    let mut telemetry = if kill_after.is_none() {
        plan.telemetry.map(ShardTelemetry::new)
    } else {
        None
    };
    let sample_interval = telemetry.as_ref().map_or(0, |t| t.interval_ns());

    let mut clients: Vec<ClientState> = Vec::with_capacity((hi - lo) as usize);
    for c in lo..hi {
        let mut m = Modulator::from_replay(client_replay(plan, c))
            .with_clock(plan.clock)
            .with_wheel_slots(plan.wheel_slots);
        m.begin(SimTime::ZERO);
        let phase = client_seed(plan.seed, c, PURPOSE_PHASE) % interval_ns;
        sim.schedule(phase, c, Ev::Probe);
        clients.push(ClientState {
            m,
            rng: SimRng::seed_from_u64(client_seed(plan.seed, c, PURPOSE_TRAFFIC)),
            next_wake_ns: u64::MAX,
            small_next: true,
            station: stations.station_of(c),
            probes_sent: 0,
            completed: 0,
            lost: 0,
            rtt_ms: Hist::new(0.0, 2_000.0, 200),
        });
    }

    if let Some(p) = prof.as_mut() {
        p.exit("setup");
        p.enter("run");
    }
    let killed = {
        let mut handler = |step: FleetStep<Ev>, sim: &mut FleetSim<Ev>| {
            let ev = match step {
                FleetStep::Sample(t_ns) => {
                    let tel = telemetry
                        .as_mut()
                        .expect("samples only fire with telemetry enabled");
                    let mut inp = SampleInputs {
                        events: sim.events_processed(),
                        queue_depth: sim.queue_depth() as u64,
                        packets_live: store.live() as u64,
                        station_frames: stations.total_frames(),
                        ..SampleInputs::default()
                    };
                    for cl in clients.iter() {
                        inp.mod_held += cl.m.held_count() as u64;
                        inp.probes_sent += cl.probes_sent;
                        inp.rtts_completed += cl.completed;
                        inp.packets_lost += cl.lost;
                        let (released, err_ns) = cl.m.error_accum();
                        inp.released += released;
                        inp.abs_delay_error_ns += err_ns;
                        inp.degraded_clients += u64::from(cl.m.is_degraded());
                    }
                    tel.sample(t_ns, inp);
                    return;
                }
                FleetStep::Event(ev) => ev,
            };
            let span = match ev.kind {
                Ev::Probe => "probe",
                Ev::ModWake => "mod_wake",
                Ev::Return { .. } => "return",
            };
            if let Some(p) = prof.as_mut() {
                p.enter(span);
            }
            let cl = &mut clients[(ev.client - lo) as usize];
            let now_ns = ev.due_ns;
            let now = SimTime::from_nanos(now_ns);
            match ev.kind {
                Ev::Probe => {
                    let size = if cl.small_next {
                        PROBE_SMALL
                    } else {
                        PROBE_LARGE
                    };
                    cl.small_next = !cl.small_next;
                    cl.probes_sent += 1;
                    let packet = store.alloc(ev.client, size, now_ns);
                    let frame = frame_for(&mut pool, packet, size);
                    match cl.m.offer(Direction::Outbound, frame, now, &mut cl.rng) {
                        ShimVerdict::Pass(bytes) => uplink(
                            sim,
                            &mut stations,
                            cl.station,
                            ev.client,
                            packet,
                            size,
                            bytes,
                            &mut pool,
                            now_ns,
                        ),
                        ShimVerdict::Hold => {}
                        ShimVerdict::Drop => {
                            cl.lost += 1;
                            store.release(packet);
                        }
                    }
                    if now_ns + interval_ns <= duration_ns {
                        sim.schedule(now_ns + interval_ns, ev.client, Ev::Probe);
                    }
                    update_wake(sim, cl, ev.client);
                }
                Ev::ModWake => {
                    // A stale wake (a newer one is armed) falls through
                    // without touching the modulator.
                    if cl.next_wake_ns == now_ns {
                        cl.next_wake_ns = u64::MAX;
                        cl.m.collect_due_into(now, &mut cl.rng, &mut scratch);
                        for rel in scratch.drain(..) {
                            let packet = packet_of(&rel.bytes);
                            match rel.dir {
                                Direction::Outbound => {
                                    let size = store.size(packet);
                                    uplink(
                                        sim,
                                        &mut stations,
                                        cl.station,
                                        ev.client,
                                        packet,
                                        size,
                                        rel.bytes,
                                        &mut pool,
                                        now_ns,
                                    );
                                }
                                Direction::Inbound => {
                                    complete(cl, &mut store, packet, now_ns);
                                    pool.push(rel.bytes);
                                }
                            }
                        }
                        update_wake(sim, cl, ev.client);
                    }
                }
                Ev::Return { packet } => {
                    let size = store.size(packet);
                    stations.record(cl.station, size);
                    let frame = frame_for(&mut pool, packet, size);
                    match cl.m.offer(Direction::Inbound, frame, now, &mut cl.rng) {
                        ShimVerdict::Pass(bytes) => {
                            complete(cl, &mut store, packet, now_ns);
                            pool.push(bytes);
                        }
                        ShimVerdict::Hold => {}
                        ShimVerdict::Drop => {
                            cl.lost += 1;
                            store.release(packet);
                        }
                    }
                    update_wake(sim, cl, ev.client);
                }
            }
            if let Some(p) = prof.as_mut() {
                p.exit(span);
            }
        };
        match kill_after {
            Some(limit) => {
                sim.run_until_sampled_limit(end_ns, sample_interval, limit, &mut handler)
            }
            None => {
                sim.run_until_sampled(end_ns, sample_interval, &mut handler);
                false
            }
        }
    };
    if killed {
        return Err(sim.now_ns());
    }
    if let Some(p) = prof.as_mut() {
        p.add_virtual(sim.now_ns());
        p.exit("run");
        p.enter("finalize");
    }

    let manifests = clients
        .iter()
        .zip(lo..hi)
        .map(|(cl, c)| {
            let mut man = RunManifest::new(plan.scenario.name, "fleet-probe", c);
            let (family, params) = plan.model_info_for(c);
            man.set_model(&family, &params);
            man.fidelity = cl.m.fidelity();
            let mm = &mut man.metrics;
            mm.set_counter("fleet.probes_sent", cl.probes_sent);
            mm.set_counter("fleet.rtts_completed", cl.completed);
            mm.set_counter("fleet.packets_lost", cl.lost);
            mm.set_counter("fleet.station", u64::from(cl.station));
            mm.set_hist("fleet.rtt_ms", cl.rtt_ms.snapshot());
            let s = cl.m.stats();
            mm.set_counter("modulate.offered", s.offered);
            mm.set_counter("modulate.immediate", s.immediate);
            mm.set_counter("modulate.held", s.held);
            mm.set_counter("modulate.dropped", s.dropped);
            mm.set_counter("modulate.unmodulated", s.unmodulated);
            let w = cl.m.sched_stats();
            mm.set_counter("modulate.sched.pushes", w.pushes);
            mm.set_counter("modulate.sched.overflow_pushes", w.overflow_pushes);
            mm.set_counter("modulate.sched.buckets_opened", w.buckets_opened);
            mm.set_counter(
                "modulate.sched.buckets_drained_whole",
                w.buckets_drained_whole,
            );
            man
        })
        .collect();

    if let Some(tel) = telemetry.as_mut() {
        // Per-client p95 RTT is a pure function of the client's own
        // history, so the shard-local trackers merge into an exact,
        // layout-invariant fleet-wide top K (each client lives in
        // exactly one shard).
        for (cl, c) in clients.iter().zip(lo..hi) {
            if cl.completed > 0 {
                let p95_us = (cl.rtt_ms.summary().p95() * 1_000.0).round() as u64;
                tel.note_client_p95(c, p95_us);
            }
        }
    }
    if let Some(p) = prof.as_mut() {
        p.exit("finalize");
        p.exit("shard");
    }

    Ok(FleetShardOutcome {
        first_client: lo,
        manifests,
        stations,
        events_processed: sim.events_processed(),
        peak_queue_depth: sim.peak_queue_depth(),
        packet_rows: store.rows(),
        peak_packets_live: store.peak_live(),
        virtual_secs: end_ns as f64 / 1e9,
        faults: Vec::new(),
        counters: FaultCounters::default(),
        telemetry,
        profile: prof,
    })
}

/// Everything a fleet run produces.
pub struct FleetOutcome {
    /// Per-client manifests in client order (the concatenation of the
    /// shard outputs in plan order).
    pub manifests: Vec<RunManifest>,
    /// The aggregate fidelity report (with a wall-clock runner
    /// section; strip via
    /// [`deterministic_json`](obs::fleet::FleetReport::deterministic_json)).
    pub report: FleetReport,
    /// Merged station traffic (per-shard tables summed).
    pub stations: StationTable,
    /// Faults injected, in plan order.
    pub faults: Vec<FaultEvent>,
    /// Summed fault tallies across shards.
    pub counters: FaultCounters,
    /// Largest shard-engine queue high-water mark (diagnostic).
    pub peak_queue_depth: usize,
    /// Summed packet-arena peaks across shards (diagnostic bound on
    /// in-flight packet memory).
    pub peak_packets_live: usize,
    /// Merged shard self-profiles, when the plan enabled profiling
    /// (wall-clock — diagnostic only, like the runner section).
    pub profile: Option<Profiler>,
}

/// Run a fleet: shard the clients, execute one engine per shard on the
/// plan's worker pool, merge in plan order.
pub fn fleet_run(plan: &FleetPlan, exec: &Exec) -> FleetOutcome {
    fleet_run_inner(plan, exec, None)
}

/// Convert injected-fault events into the alert engine's stamps (the
/// `obs` crate sits below `faultkit`, so the types cannot be shared).
pub fn fault_stamps(faults: &[FaultEvent]) -> Vec<obs::FaultStamp> {
    faults
        .iter()
        .map(|f| obs::FaultStamp {
            t_virtual_ns: f.t_virtual_ns,
            fault: f.fault.clone(),
            info: f.info.clone(),
        })
        .collect()
}

/// Evaluate an alert rule set over a finished fleet run: the run's
/// telemetry series, its aggregate report, and its injected-fault
/// timestamps (for suppression windows) feed [`obs::alerts`], with an
/// optional `baseline` report serving delta-vs-baseline predicates.
/// Evaluation is post-hoc and pure — nothing touches the engine hot
/// path, and the resulting report is byte-identical at any shard or
/// worker count (proptested in `tests/fleet_determinism.rs`).
pub fn fleet_alerts(
    out: &FleetOutcome,
    rules: &obs::RuleSet,
    baseline: Option<&FleetReport>,
) -> Result<obs::AlertReport, String> {
    let stamps = fault_stamps(&out.faults);
    let series = out
        .report
        .telemetry
        .as_ref()
        .map_or(&[][..], |t| t.series.as_slice());
    obs::evaluate_alerts(
        rules,
        &obs::AlertInputs {
            series,
            report: Some(&out.report),
            baseline,
            faults: &stamps,
        },
    )
}

/// [`fleet_run`] under deterministic fault injection: `kill_worker`
/// entries in `fault_plan` target shard cell indices, and a killed
/// shard restarts without perturbing merge order or output bytes.
pub fn fleet_run_chaos(
    plan: &FleetPlan,
    exec: &Exec,
    fault_seed: u64,
    fault_plan: &FaultPlan,
) -> FleetOutcome {
    fleet_run_inner(plan, exec, Some((fault_seed, fault_plan.clone())))
}

fn fleet_run_inner(plan: &FleetPlan, exec: &Exec, fault: Option<(u64, FaultPlan)>) -> FleetOutcome {
    let mut tp = TrialPlan::new();
    for (i, (lo, hi)) in plan.shard_ranges().into_iter().enumerate() {
        tp.push(TrialCell {
            label: format!("fleet/{}/shard{i}", plan.scenario.name),
            trial: i as u32,
            cfg: RunConfig::default(),
            kind: CellKind::Fleet(FleetShard {
                plan: plan.clone(),
                lo,
                hi,
                fault: fault.clone(),
            }),
        });
    }
    let results = tp.run(exec);

    let mut manifests: Vec<RunManifest> = Vec::with_capacity(plan.clients as usize);
    let mut stations = StationTable::for_fleet(plan.clients, plan.stations, STATION_ALPHA);
    let mut faults = Vec::new();
    let mut counters = FaultCounters::default();
    let mut events = 0u64;
    let mut peak_queue_depth = 0usize;
    let mut peak_packets_live = 0usize;
    let mut shard_telemetry: Vec<&ShardTelemetry> = Vec::new();
    let mut profile: Option<Profiler> = None;
    for shard in results.fleet_outcomes() {
        debug_assert_eq!(
            shard.first_client,
            manifests.len() as u32,
            "shards merge in client order"
        );
        manifests.extend(shard.manifests.iter().cloned());
        stations.merge(&shard.stations);
        faults.extend(shard.faults.iter().cloned());
        add_counters(&mut counters, &shard.counters);
        events += shard.events_processed;
        peak_queue_depth = peak_queue_depth.max(shard.peak_queue_depth);
        peak_packets_live += shard.peak_packets_live;
        if let Some(tel) = &shard.telemetry {
            shard_telemetry.push(tel);
        }
        if let Some(p) = &shard.profile {
            profile.get_or_insert_with(Profiler::new).merge(p);
        }
    }

    let mut report = FleetReport::from_manifests(
        plan.scenario.name,
        &manifests,
        &FidelityThresholds::default(),
    );
    if let Some(cfg) = &plan.telemetry {
        // Shard rings merge in plan order; station hot spots come from
        // the *merged* station table (stations span shards, so exact
        // fleet-wide counts are the only layout-invariant source).
        let mut tel = FleetTelemetry::merge(shard_telemetry.iter().copied());
        tel.set_hot_stations(
            cfg.top_k,
            (0..stations.stations() as u32).map(|s| (s, stations.frames(s))),
        );
        report.telemetry = Some(tel);
    }
    report.metrics.set_counter("fleet.engine_events", events);
    report
        .metrics
        .set_counter("fleet.stations", u64::from(plan.stations));
    report
        .metrics
        .set_counter("fleet.station_frames", stations.total_frames());
    report
        .metrics
        .set_counter("fleet.station_bytes", stations.total_bytes());
    let wall = results.metrics.wall_secs;
    report.runner = Some(RunnerSection {
        wall_secs: wall,
        workers: exec.workers,
        records_per_sec: if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        },
        worker_utilization: results.metrics.worker_utilization(),
    });

    FleetOutcome {
        manifests,
        report,
        stations,
        faults,
        counters,
        peak_queue_depth,
        peak_packets_live,
        profile,
    }
}

fn add_counters(a: &mut FaultCounters, b: &FaultCounters) {
    a.corrupt_chunks += b.corrupt_chunks;
    a.truncations += b.truncations;
    a.dropped_tuples += b.dropped_tuples;
    a.stalls += b.stalls;
    a.clock_jumps += b.clock_jumps;
    a.worker_kills += b.worker_kills;
    a.oom_rings += b.oom_rings;
    a.truncated_records += b.truncated_records;
    a.quarantined_records += b.quarantined_records;
    a.quarantined_bytes += b.quarantined_bytes;
    a.rejected_timestamps += b.rejected_timestamps;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan(clients: u32) -> FleetPlan {
        FleetPlan::new(Scenario::porter(), clients)
            .with_duration(SimDuration::from_secs(3))
            .with_probe_interval(SimDuration::from_millis(500))
    }

    #[test]
    fn clients_get_distinct_channels() {
        let plan = tiny_plan(3);
        let a = client_replay(&plan, 0);
        let b = client_replay(&plan, 1);
        assert_eq!(a.tuples.len(), b.tuples.len());
        assert_ne!(
            a.tuples[0].latency_ns, b.tuples[0].latency_ns,
            "per-client channel realizations must differ"
        );
    }

    #[test]
    fn shard_ranges_are_contiguous_and_cover() {
        let plan = tiny_plan(10).with_shards(3);
        let r = plan.shard_ranges();
        assert_eq!(r, vec![(0, 4), (4, 7), (7, 10)]);
        // More shards than clients degrades gracefully.
        let r = tiny_plan(2).with_shards(8).shard_ranges();
        assert_eq!(r, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn small_fleet_completes_round_trips() {
        let plan = tiny_plan(4);
        let out = fleet_run(&plan, &Exec::serial());
        assert_eq!(out.manifests.len(), 4);
        assert_eq!(out.report.clients, 4);
        let completed: u64 = out
            .manifests
            .iter()
            .map(|m| m.metrics.counter("fleet.rtts_completed").unwrap_or(0))
            .sum();
        assert!(completed > 0, "probes must complete round trips");
        assert!(out.stations.total_frames() > 0);
        assert!(out.peak_packets_live > 0);
        // Aggregate gate: a healthy tiny fleet passes default thresholds.
        let violations = out.report.check(&FidelityThresholds::default());
        assert!(violations.is_empty(), "fleet gate failed: {violations:?}");
    }

    #[test]
    fn telemetry_samples_and_outliers_populate() {
        let plan = tiny_plan(4).with_telemetry(TelemetryConfig::default());
        let out = fleet_run(&plan, &Exec::serial());
        let tel = out.report.telemetry.as_ref().expect("telemetry enabled");
        // 3 s scenario + 10 s drain grace ⇒ 13 one-second boundaries.
        assert_eq!(tel.series.len(), 13);
        assert_eq!(tel.interval_ns, 1_000_000_000);
        let probes: u64 = tel.series.iter().map(|r| r.probes_sent).sum();
        let manifest_probes: u64 = out
            .manifests
            .iter()
            .map(|m| m.metrics.counter("fleet.probes_sent").unwrap_or(0))
            .sum();
        assert_eq!(probes, manifest_probes, "series deltas sum to run totals");
        assert!(tel.series.iter().any(|r| r.released > 0));
        assert!(!tel.worst_clients.is_empty());
        assert!(!tel.hot_stations.is_empty());
        assert_eq!(
            tel.hot_stations.iter().map(|e| e.weight).sum::<u64>(),
            out.stations.total_frames(),
            "one station ⇒ top-K holds all frames"
        );
        assert!(out.profile.is_none(), "profiler stays off unless asked");
    }

    #[test]
    fn telemetry_leaves_manifests_unchanged() {
        let plain = fleet_run(&tiny_plan(3), &Exec::serial());
        let with_tel = fleet_run(
            &tiny_plan(3).with_telemetry(TelemetryConfig::default()),
            &Exec::serial(),
        );
        let a: Vec<String> = plain
            .manifests
            .iter()
            .map(RunManifest::deterministic_json)
            .collect();
        let b: Vec<String> = with_tel
            .manifests
            .iter()
            .map(RunManifest::deterministic_json)
            .collect();
        assert_eq!(a, b, "telemetry must not perturb the simulation");
    }

    #[test]
    fn profiler_covers_the_hot_paths() {
        let plan = tiny_plan(2).with_profile(true);
        let out = fleet_run(&plan, &Exec::serial());
        let prof = out.profile.expect("profiling enabled");
        let stacks: Vec<&str> = prof.entries().map(|(k, _)| k).collect();
        assert!(stacks.contains(&"shard;run;probe"), "{stacks:?}");
        assert!(stacks.contains(&"shard;run;return"), "{stacks:?}");
        assert!(stacks.contains(&"shard;setup"), "{stacks:?}");
        let collapsed = prof.render_collapsed();
        assert!(collapsed.contains("shard;run;probe "));
    }

    #[test]
    fn pack_fleet_mixes_models_and_stays_shard_invariant() {
        let toml = "name = \"mix\"\nduration_secs = 3\n\n[[model]]\nfamily = \"leo\"\nshare = 3\n\n[[model]]\nfamily = \"errant\"\noperator = \"op2\"\nrat = \"4g\"\n";
        let pack = ScenarioPack::from_toml(toml).unwrap();
        pack.validate(Registry::builtin()).unwrap();
        let plan = FleetPlan::from_pack(pack, 8).with_probe_interval(SimDuration::from_millis(500));
        let serial = fleet_run(&plan, &Exec::serial());
        assert_eq!(serial.report.scenario, "mix");
        // Shares 3:1 over client % 4 ⇒ 6 LEO clients, 2 ERRANT.
        assert_eq!(serial.report.models.len(), 2);
        assert_eq!(serial.report.models[0].family, "leo");
        assert_eq!(serial.report.models[0].clients, 6);
        assert_eq!(serial.report.models[1].family, "errant");
        assert_eq!(serial.report.models[1].clients, 2);
        assert_eq!(
            serial.report.metrics.counter("fleet.model_clients.leo"),
            Some(6)
        );
        // Per-client manifests carry the model attribution.
        assert_eq!(serial.manifests[3].model.as_ref().unwrap().family, "errant");
        assert!(serial.manifests[3]
            .model
            .as_ref()
            .unwrap()
            .params
            .contains("operator=op2"));
        // Mixed fleets keep the byte-identity guarantee.
        let sharded = fleet_run(&plan.clone().with_shards(4), &Exec::with_workers(2));
        let a: Vec<String> = serial
            .manifests
            .iter()
            .map(RunManifest::deterministic_json)
            .collect();
        let b: Vec<String> = sharded
            .manifests
            .iter()
            .map(RunManifest::deterministic_json)
            .collect();
        assert_eq!(a, b, "pack fleet must match serial bytes at 4 shards");
        assert_eq!(
            serial.report.deterministic_json(),
            sharded.report.deterministic_json()
        );
    }

    #[test]
    fn manifests_identical_across_shard_counts() {
        let serial = fleet_run(&tiny_plan(5), &Exec::serial());
        for shards in [2usize, 4] {
            let sharded = fleet_run(&tiny_plan(5).with_shards(shards), &Exec::with_workers(2));
            let a: Vec<String> = serial
                .manifests
                .iter()
                .map(RunManifest::deterministic_json)
                .collect();
            let b: Vec<String> = sharded
                .manifests
                .iter()
                .map(RunManifest::deterministic_json)
                .collect();
            assert_eq!(a, b, "{shards} shards must match serial bytes");
            assert_eq!(
                serial.report.deterministic_json(),
                sharded.report.deterministic_json()
            );
        }
    }
}
