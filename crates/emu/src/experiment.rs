//! The paper's validation experiment (§5.1): for each benchmark on each
//! scenario, run N live trials and N collect→distill→modulate trials
//! (interleaved in the paper; independent seeds here), and compare the
//! means — "the difference between the means of real and modulated
//! elapsed times [should be] less than the sum of their standard
//! deviations".

use crate::plan::{Exec, PlanResults, TrialPlan};
use crate::runs::RunConfig;
use crate::workload::{Benchmark, RunResult};
use netsim::stats::Summary;
use wavelan::Scenario;
use workloads::Phase;

/// Real-vs-modulated comparison for one benchmark on one scenario.
#[derive(Debug)]
pub struct Comparison {
    /// Scenario name.
    pub scenario: String,
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Elapsed-time summary over live trials.
    pub real: Summary,
    /// Elapsed-time summary over modulated trials.
    pub modulated: Summary,
    /// Per-phase summaries (Andrew only): (phase, real, modulated).
    pub phases: Vec<(Phase, Summary, Summary)>,
    /// Raw per-trial results, live then modulated.
    pub real_runs: Vec<RunResult>,
    /// Raw modulated results.
    pub modulated_runs: Vec<RunResult>,
    /// Runs that hit their deadline without completing (excluded from
    /// the summaries, like a botched trial in the paper's Porter web
    /// row).
    pub failed_runs: u32,
}

impl Comparison {
    /// The paper's agreement criterion: |mean_real − mean_mod| ≤
    /// σ_real + σ_mod.
    pub fn within_one_sigma(&self) -> bool {
        let diff = (self.real.mean() - self.modulated.mean()).abs();
        diff <= self.real.stddev() + self.modulated.stddev()
    }

    /// Divergence in units of the summed standard deviations (the paper
    /// reports e.g. "off by 1.56 times the sum of the standard
    /// deviations").
    pub fn sigma_ratio(&self) -> f64 {
        let denom = self.real.stddev() + self.modulated.stddev();
        if denom == 0.0 {
            return 0.0;
        }
        (self.real.mean() - self.modulated.mean()).abs() / denom
    }
}

fn summarize_phases(runs: &[RunResult]) -> Vec<(Phase, Summary)> {
    Phase::ALL
        .iter()
        .map(|&p| {
            let mut s = Summary::new();
            for r in runs {
                if let Some(&(_, secs)) = r.phases.iter().find(|&&(ph, _)| ph == p) {
                    s.add(secs);
                }
            }
            (p, s)
        })
        .collect()
}

/// Assemble the [`Comparison`] for (scenario, benchmark) from an
/// executed plan's outputs. Runs are consumed in plan order, so the
/// summaries accumulate in exactly the order the serial loop would
/// produce them.
pub fn comparison_from_plan(
    results: &PlanResults,
    scenario: &str,
    benchmark: Benchmark,
) -> Comparison {
    let real_runs: Vec<RunResult> = results
        .live_runs(scenario, benchmark)
        .into_iter()
        .cloned()
        .collect();
    let modulated_runs: Vec<RunResult> = results
        .modulated_runs(scenario, benchmark)
        .into_iter()
        .cloned()
        .collect();
    let mut failed_runs = 0;
    let mut real = Summary::new();
    for r in &real_runs {
        match r.elapsed {
            Some(secs) => real.add(secs),
            None => failed_runs += 1,
        }
    }
    let mut modulated = Summary::new();
    for r in &modulated_runs {
        match r.elapsed {
            Some(secs) => modulated.add(secs),
            None => failed_runs += 1,
        }
    }
    let phases = if benchmark == Benchmark::Andrew {
        let rp = summarize_phases(&real_runs);
        let mp = summarize_phases(&modulated_runs);
        rp.into_iter()
            .zip(mp)
            .map(|((p, r), (_, m))| (p, r, m))
            .collect()
    } else {
        Vec::new()
    };
    Comparison {
        scenario: scenario.to_string(),
        benchmark,
        real,
        modulated,
        phases,
        real_runs,
        modulated_runs,
        failed_runs,
    }
}

/// Run the full real-vs-modulated comparison — `trials` live runs and
/// `trials` (collect → distill → modulate) runs — on the given
/// execution (serial or a worker pool; the result is identical).
pub fn compare_with(
    scenario: &Scenario,
    benchmark: Benchmark,
    trials: u32,
    cfg: &RunConfig,
    exec: &Exec,
) -> Comparison {
    let mut plan = TrialPlan::new();
    plan.push_comparison(scenario, benchmark, trials, cfg);
    let results = plan.run(exec);
    comparison_from_plan(&results, scenario.name, benchmark)
}

/// Serial [`compare_with`] — the paper's original loop.
pub fn compare(
    scenario: &Scenario,
    benchmark: Benchmark,
    trials: u32,
    cfg: &RunConfig,
) -> Comparison {
    compare_with(scenario, benchmark, trials, cfg, &Exec::serial())
}

/// The Ethernet reference row of each table.
pub fn ethernet_baseline(benchmark: Benchmark, trials: u32, cfg: &RunConfig) -> Summary {
    let mut plan = TrialPlan::new();
    plan.push_ethernet(benchmark, trials, cfg);
    plan.run(&Exec::serial()).ethernet_baseline(benchmark)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    /// A fast end-to-end smoke of the whole methodology: shortened
    /// scenario, one trial, FTP send with a smaller file would need a
    /// different install path — use Web with a trimmed trace instead?
    /// Keep it simple: run one comparison trial of FTP on a shortened
    /// Wean and assert both sides produce plausible times.
    #[test]
    fn closed_loop_comparison_runs() {
        let mut sc = Scenario::chatterbox();
        sc.duration = SimDuration::from_secs(40);
        let cfg = RunConfig::default();
        let c = compare(&sc, Benchmark::FtpRecv, 1, &cfg);
        let real = c.real.mean();
        let modulated = c.modulated.mean();
        // 10 MB over a ~1 Mb/s contended channel: both sides should land
        // in the tens of seconds, same order of magnitude.
        assert!(real > 30.0, "real {real}");
        assert!(modulated > 30.0, "modulated {modulated}");
        let ratio = real.max(modulated) / real.min(modulated);
        assert!(ratio < 2.5, "real {real} vs modulated {modulated}");
    }

    #[test]
    fn sigma_criterion_math() {
        let mut c = Comparison {
            scenario: "s".into(),
            benchmark: Benchmark::Web,
            real: Summary::of(&[100.0, 102.0, 98.0, 104.0]),
            modulated: Summary::of(&[101.0, 99.0, 103.0, 97.0]),
            phases: Vec::new(),
            real_runs: Vec::new(),
            modulated_runs: Vec::new(),
            failed_runs: 0,
        };
        assert!(c.within_one_sigma());
        assert!(c.sigma_ratio() < 1.0);
        c.modulated = Summary::of(&[120.0, 121.0, 119.0, 120.0]);
        assert!(!c.within_one_sigma());
        assert!(c.sigma_ratio() > 1.0);
    }
}
