//! The planner's core guarantee: the parallel execution of a validation
//! matrix produces output **bit-identical** to the serial path at any
//! worker count — same means, same standard deviations, same per-phase
//! summaries, same failed-run counts, same raw per-trial results.

use distill::DistillConfig;
use emu::{
    compare, compare_with, Benchmark, CellKind, Comparison, Exec, RunConfig, TrialCell, TrialPlan,
};
use netsim::stats::Summary;
use netsim::SimDuration;
use wavelan::Scenario;

fn exact_eq(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.count(), b.count(), "{what}: count");
    assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{what}: mean");
    assert_eq!(a.stddev().to_bits(), b.stddev().to_bits(), "{what}: stddev");
    if a.count() > 0 {
        assert_eq!(a.min().to_bits(), b.min().to_bits(), "{what}: min");
        assert_eq!(a.max().to_bits(), b.max().to_bits(), "{what}: max");
    }
}

fn assert_identical(serial: &Comparison, parallel: &Comparison, workers: usize) {
    let tag = format!("{} workers", workers);
    assert_eq!(serial.scenario, parallel.scenario, "{tag}: scenario");
    assert_eq!(serial.benchmark, parallel.benchmark, "{tag}: benchmark");
    assert_eq!(serial.failed_runs, parallel.failed_runs, "{tag}: failed");
    exact_eq(&serial.real, &parallel.real, &format!("{tag}: real"));
    exact_eq(
        &serial.modulated,
        &parallel.modulated,
        &format!("{tag}: modulated"),
    );
    assert_eq!(
        serial.phases.len(),
        parallel.phases.len(),
        "{tag}: phase count"
    );
    for ((ps, rs, ms), (pp, rp, mp)) in serial.phases.iter().zip(&parallel.phases) {
        assert_eq!(ps, pp, "{tag}: phase order");
        exact_eq(rs, rp, &format!("{tag}: phase {ps:?} real"));
        exact_eq(ms, mp, &format!("{tag}: phase {ps:?} modulated"));
    }
    // Raw per-trial results must match run for run, in trial order.
    for (which, s_runs, p_runs) in [
        ("real", &serial.real_runs, &parallel.real_runs),
        (
            "modulated",
            &serial.modulated_runs,
            &parallel.modulated_runs,
        ),
    ] {
        assert_eq!(s_runs.len(), p_runs.len(), "{tag}: {which} run count");
        for (i, (s, p)) in s_runs
            .iter()
            .zip(p_runs)
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            assert_eq!(
                s.elapsed.map(f64::to_bits),
                p.elapsed.map(f64::to_bits),
                "{tag}: {which} run {i} elapsed"
            );
            assert_eq!(
                s.phases.len(),
                p.phases.len(),
                "{tag}: {which} run {i} phases"
            );
            for ((sp, ss), (pp, ps)) in s.phases.iter().zip(&p.phases) {
                assert_eq!(sp, pp, "{tag}: {which} run {i} phase order");
                assert_eq!(
                    ss.to_bits(),
                    ps.to_bits(),
                    "{tag}: {which} run {i} phase secs"
                );
            }
        }
    }
}

#[test]
fn parallel_comparison_identical_to_serial_at_any_worker_count() {
    // Short stationary scenario so three full comparisons stay fast;
    // two trials exercises multi-cell reassembly.
    let mut sc = Scenario::chatterbox();
    sc.duration = SimDuration::from_secs(30);
    let cfg = RunConfig::default();
    let trials = 2;

    let serial = compare(&sc, Benchmark::Web, trials, &cfg);
    assert!(serial.real.count() > 0, "serial baseline must produce runs");

    for workers in [1, 2, 8] {
        let parallel = compare_with(
            &sc,
            Benchmark::Web,
            trials,
            &cfg,
            &Exec::with_workers(workers),
        );
        assert_identical(&serial, &parallel, workers);
    }
}

/// The observability manifest obeys the same guarantee: every metric
/// under `metrics`/`fidelity` is keyed to virtual time, so the
/// deterministic form (wall-clock `runner` section stripped) must be
/// **byte-identical** whether the plan runs serially or on 8 workers.
#[test]
fn obs_manifest_identical_at_any_worker_count() {
    let mut sc = Scenario::chatterbox();
    sc.duration = SimDuration::from_secs(30);
    let trials = 2u32;

    let plan = || {
        let mut p = TrialPlan::new();
        for trial in 1..=trials {
            p.push(TrialCell {
                label: format!("obs-{trial}"),
                trial,
                cfg: RunConfig::default(),
                kind: CellKind::LiveModulated {
                    scenario: sc.clone(),
                    benchmark: Benchmark::Web,
                    distill: DistillConfig::default(),
                },
            });
        }
        p
    };

    let serial: Vec<String> = plan()
        .run(&Exec::serial())
        .live_modulated(sc.name, Benchmark::Web)
        .iter()
        .map(|o| o.manifest.deterministic_json())
        .collect();
    assert_eq!(serial.len(), trials as usize);
    for m in &serial {
        assert!(
            m.contains("modulate.offered"),
            "manifest must carry pipeline metrics"
        );
    }

    for workers in [2, 8] {
        let parallel: Vec<String> = plan()
            .run(&Exec::with_workers(workers))
            .live_modulated(sc.name, Benchmark::Web)
            .iter()
            .map(|o| o.manifest.deterministic_json())
            .collect();
        assert_eq!(
            serial, parallel,
            "{workers} workers: manifest bytes diverged from serial"
        );
    }
}

/// The flight recorder inherits the determinism guarantee: its
/// Perfetto/Chrome-trace export derives from virtual time only, so the
/// bytes must be identical at 1, 2, and 8 workers — and the recording
/// must resolve at least one packet's journey across all five pipeline
/// stages (the acceptance bar for causal packet tracing).
#[test]
fn flight_recorder_export_identical_at_any_worker_count() {
    let mut sc = Scenario::chatterbox();
    sc.duration = SimDuration::from_secs(45);

    let plan = || {
        let mut p = TrialPlan::new();
        p.push(TrialCell {
            label: "flight-1".to_string(),
            trial: 1,
            cfg: RunConfig::default(),
            kind: CellKind::LiveModulated {
                scenario: sc.clone(),
                benchmark: Benchmark::Web,
                distill: DistillConfig::default(),
            },
        });
        p
    };

    let export = |workers: Option<usize>| -> Vec<String> {
        let exec = match workers {
            None => Exec::serial(),
            Some(n) => Exec::with_workers(n),
        };
        plan()
            .run(&exec)
            .live_modulated(sc.name, Benchmark::Web)
            .iter()
            .map(|o| o.flight.to_chrome_trace())
            .collect()
    };

    let serial = export(None);
    assert_eq!(serial.len(), 1);
    assert!(
        serial[0].contains("\"traceEvents\":["),
        "export must be a Chrome trace"
    );
    for workers in [1, 2, 8] {
        let parallel = export(Some(workers));
        assert_eq!(
            serial, parallel,
            "{workers} workers: flight export bytes diverged from serial"
        );
    }

    // The same recording answers the causal query: some packet's
    // journey covers every stage (counting the modulation decisions
    // its distilled tuple fed).
    let outcomes = plan().run(&Exec::serial());
    let outcomes = outcomes.live_modulated(sc.name, Benchmark::Web);
    outcomes[0].flight.with(|r| {
        let id = r.best_packet().expect("packets were recorded");
        let journey = r.journey(id).expect("best packet has a journey");
        let stages: Vec<&str> = journey.stages().iter().map(|s| s.label()).collect();
        assert_eq!(
            stages,
            ["netsim", "wavelan", "collect", "distill", "modulate"],
            "journey for packet {id} must span the whole pipeline"
        );
    });
}

#[test]
fn parallel_andrew_phases_identical() {
    // Andrew exercises the per-phase summary path.
    let mut sc = Scenario::chatterbox();
    sc.duration = SimDuration::from_secs(30);
    let cfg = RunConfig::default();

    let serial = compare(&sc, Benchmark::Andrew, 1, &cfg);
    assert!(!serial.phases.is_empty(), "Andrew must report phases");
    for workers in [2, 8] {
        let parallel = compare_with(
            &sc,
            Benchmark::Andrew,
            1,
            &cfg,
            &Exec::with_workers(workers),
        );
        assert_identical(&serial, &parallel, workers);
    }
}
