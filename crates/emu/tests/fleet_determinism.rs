//! Fleet shard-invariance and chaos-restart guarantees.
//!
//! The fleet engine's core promise is that sharding is an execution
//! detail: the merged per-client manifests and the aggregate report
//! are byte-identical whether the fleet runs under one engine or many,
//! on one worker or many. The proptest drives that across arbitrary
//! client counts and fleet seeds; the chaos test kills a shard worker
//! mid-run and checks the restart protocol leaves no trace in the
//! output.

use emu::{fleet_alerts, fleet_run, fleet_run_chaos, Exec, FleetOutcome, FleetPlan};
use faultkit::FaultPlan;
use netsim::SimDuration;
use obs::{RuleSet, RunManifest, Severity, TelemetryConfig};
use proptest::prelude::*;
use wavelan::Scenario;

fn tiny_plan(clients: u32, seed: u64) -> FleetPlan {
    FleetPlan::new(Scenario::porter(), clients)
        .with_seed(seed)
        .with_duration(SimDuration::from_secs(4))
        .with_probe_interval(SimDuration::from_millis(500))
}

fn telemetry_plan(clients: u32, seed: u64) -> FleetPlan {
    tiny_plan(clients, seed).with_telemetry(TelemetryConfig::default())
}

fn manifest_bytes(out: &FleetOutcome) -> Vec<String> {
    out.manifests
        .iter()
        .map(RunManifest::deterministic_json)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial single-shard output is the reference; 2 and 8 shards on
    /// a worker pool must reproduce it bitwise, for any fleet size and
    /// seed.
    #[test]
    fn sharding_never_changes_output(
        clients in 1u32..12,
        seed in 0u64..1_000_000,
    ) {
        let reference = fleet_run(&tiny_plan(clients, seed), &Exec::serial());
        prop_assert_eq!(reference.manifests.len(), clients as usize);
        for shards in [2usize, 8] {
            let sharded = fleet_run(
                &tiny_plan(clients, seed).with_shards(shards),
                &Exec::with_workers(4),
            );
            prop_assert_eq!(
                manifest_bytes(&reference),
                manifest_bytes(&sharded),
                "{} clients seed {} at {} shards diverged",
                clients, seed, shards
            );
            prop_assert_eq!(
                reference.report.deterministic_json(),
                sharded.report.deterministic_json()
            );
            prop_assert_eq!(
                reference.stations.total_frames(),
                sharded.stations.total_frames()
            );
        }
    }

    /// The telemetry plane carries the same shard-invariance contract
    /// as the manifests: the merged series, outlier trackers, and the
    /// full deterministic report are byte-identical at 1, 2, and 8
    /// shards — and JSONL / Prometheus exports match byte for byte.
    #[test]
    fn telemetry_series_identical_across_shards(
        clients in 1u32..10,
        seed in 0u64..1_000_000,
    ) {
        let reference = fleet_run(&telemetry_plan(clients, seed), &Exec::serial());
        let ref_tel = reference.report.telemetry.as_ref().expect("telemetry on");
        prop_assert!(!ref_tel.series.is_empty());
        for shards in [2usize, 8] {
            let sharded = fleet_run(
                &telemetry_plan(clients, seed).with_shards(shards),
                &Exec::with_workers(4),
            );
            let tel = sharded.report.telemetry.as_ref().expect("telemetry on");
            prop_assert_eq!(
                ref_tel.to_jsonl(),
                tel.to_jsonl(),
                "{} clients seed {} at {} shards: series diverged",
                clients, seed, shards
            );
            prop_assert_eq!(ref_tel.to_prometheus(), tel.to_prometheus());
            prop_assert_eq!(
                reference.report.deterministic_json(),
                sharded.report.deterministic_json(),
                "deterministic report (incl. telemetry) diverged"
            );
        }
    }

    /// Turning telemetry on observes the fleet without perturbing it:
    /// per-client manifests are byte-identical either way.
    #[test]
    fn telemetry_never_perturbs_manifests(
        clients in 1u32..8,
        seed in 0u64..1_000_000,
    ) {
        let plain = fleet_run(&tiny_plan(clients, seed), &Exec::serial());
        let sampled = fleet_run(&telemetry_plan(clients, seed), &Exec::serial());
        prop_assert_eq!(manifest_bytes(&plain), manifest_bytes(&sampled));
    }

    /// The alert plane inherits shard invariance end to end: the
    /// builtin rules evaluated over serial and 2/8-shard runs of the
    /// same plan export byte-identical JSONL and markdown reports.
    #[test]
    fn alert_reports_identical_across_shards(
        clients in 1u32..10,
        seed in 0u64..1_000_000,
    ) {
        let rules = RuleSet::builtin();
        let reference = fleet_run(&telemetry_plan(clients, seed), &Exec::serial());
        let ref_alerts = fleet_alerts(&reference, &rules, None).expect("rules evaluate");
        for shards in [2usize, 8] {
            let sharded = fleet_run(
                &telemetry_plan(clients, seed).with_shards(shards),
                &Exec::with_workers(4),
            );
            let alerts = fleet_alerts(&sharded, &rules, None).expect("rules evaluate");
            prop_assert_eq!(
                ref_alerts.to_jsonl(),
                alerts.to_jsonl(),
                "{} clients seed {} at {} shards: alert JSONL diverged",
                clients, seed, shards
            );
            prop_assert_eq!(ref_alerts.render_markdown(), alerts.render_markdown());
        }
    }
}

/// A `kill_worker` fault against a fleet shard: the shard restarts and
/// reruns clean, so every output byte matches the fault-free run; the
/// only difference is the fault ledger recording the kill.
#[test]
fn killed_shard_restarts_without_breaking_merge() {
    let plan = tiny_plan(6, 99).with_shards(3);
    let clean = fleet_run(&plan, &Exec::with_workers(2));

    // Kill shard 1 (cell index 1) after 40 engine events.
    let faults = FaultPlan::new().kill_worker(1, 40);
    let chaotic = fleet_run_chaos(&plan, &Exec::with_workers(2), 7, &faults);

    assert_eq!(chaotic.counters.worker_kills, 1, "the kill must fire");
    assert_eq!(chaotic.faults.len(), 1);
    assert_eq!(
        manifest_bytes(&clean),
        manifest_bytes(&chaotic),
        "restart must reproduce the uninterrupted shard bitwise"
    );
    assert_eq!(
        clean.report.deterministic_json(),
        chaotic.report.deterministic_json()
    );
}

/// Telemetry and the chaos kill/restart protocol compose: samples do
/// not count against the probe pass's event budget, so the kill lands
/// at the same point and the definitive rerun (telemetry and all)
/// matches the fault-free run bitwise.
#[test]
fn chaos_restart_preserves_telemetry_bytes() {
    let plan = telemetry_plan(6, 99).with_shards(3);
    let clean = fleet_run(&plan, &Exec::with_workers(2));

    let faults = FaultPlan::new().kill_worker(1, 40);
    let chaotic = fleet_run_chaos(&plan, &Exec::with_workers(2), 7, &faults);

    assert_eq!(chaotic.counters.worker_kills, 1, "the kill must fire");
    assert_eq!(
        clean.report.telemetry.as_ref().unwrap().to_jsonl(),
        chaotic.report.telemetry.as_ref().unwrap().to_jsonl()
    );
    assert_eq!(
        clean.report.deterministic_json(),
        chaotic.report.deterministic_json()
    );
}

/// Chaos-aware suppression end to end: the same rule that raises an
/// active alert on a clean run is suppressed — and attributed to the
/// injected fault — on a seeded `kill_worker` run, so the alert gate
/// passes instead of flagging a false positive.
#[test]
fn chaos_alerts_are_suppressed_and_attributed() {
    let rules = RuleSet::from_toml(
        "[[rule]]\n\
         name = \"engine-activity\"\n\
         metric = \"sample.events\"\n\
         severity = \"warn\"\n\
         above = 0\n\
         suppress = [\"kill_worker\"]\n\
         suppress_window_secs = 60.0\n",
    )
    .expect("rule parses");
    let plan = telemetry_plan(6, 99).with_shards(3);

    // Clean run: the rule fires on every boundary and stays active —
    // the gate must fail.
    let clean = fleet_run(&plan, &Exec::with_workers(2));
    let clean_alerts = fleet_alerts(&clean, &rules, None).expect("rules evaluate");
    assert!(
        clean_alerts.active().count() > 0,
        "rule must fire when clean"
    );
    assert!(!clean_alerts.check(Severity::Warn).is_empty());

    // Seeded kill at the shard's first record: same telemetry bytes
    // (the restart protocol guarantees that), but now a kill_worker
    // fault stamp precedes every sample boundary, so every alert is
    // suppressed and attributed — no false positives, and the gate
    // passes. (A later kill would split the run: boundaries before the
    // fault stay active, which is the designed prefix semantics.)
    let faults = FaultPlan::new().kill_worker(1, 1);
    let chaotic = fleet_run_chaos(&plan, &Exec::with_workers(2), 7, &faults);
    assert_eq!(chaotic.counters.worker_kills, 1, "the kill must fire");
    let chaos_alerts = fleet_alerts(&chaotic, &rules, None).expect("rules evaluate");
    assert_eq!(chaos_alerts.active().count(), 0, "all alerts suppressed");
    assert!(chaos_alerts.suppressed().count() > 0);
    for a in chaos_alerts.suppressed() {
        assert!(
            a.attributed_to.starts_with("kill_worker@"),
            "attribution names the fault: {:?}",
            a.attributed_to
        );
    }
    assert!(chaos_alerts.check(Severity::Warn).is_empty(), "gate passes");
}

/// A kill aimed past the shard's event count never fires, and a kill
/// aimed at an out-of-range cell index is ignored entirely.
#[test]
fn out_of_reach_kills_are_inert() {
    let plan = tiny_plan(4, 5).with_shards(2);
    let clean = fleet_run(&plan, &Exec::serial());

    let never = FaultPlan::new().kill_worker(0, u64::MAX / 2);
    let out = fleet_run_chaos(&plan, &Exec::serial(), 3, &never);
    assert_eq!(out.counters.worker_kills, 0);
    assert_eq!(manifest_bytes(&clean), manifest_bytes(&out));

    let wrong_cell = FaultPlan::new().kill_worker(17, 10);
    let out = fleet_run_chaos(&plan, &Exec::serial(), 3, &wrong_cell);
    assert_eq!(out.counters.worker_kills, 0);
    assert_eq!(manifest_bytes(&clean), manifest_bytes(&out));
}
