//! Validation cells for the committed scenario packs (`packs/*.toml`):
//! each new model family runs the full synthetic-collection →
//! distillation → modulation pipeline under the default fidelity gates,
//! fleet runs over the packs are byte-identical at 1/2/8 shards, and
//! the exact-integer fields of each pack's fleet summary match a
//! committed golden value — a committed pack cannot drift silently.

use distill::DistillConfig;
use emu::{fleet_run, live_modulated_run, Benchmark, Exec, FleetPlan, RunConfig};
use netsim::SimDuration;
use obs::{FidelityThresholds, FleetReport, RunManifest};
use wavelan::ScenarioPack;

/// Load a committed pack fixture from the repository `packs/` dir.
fn committed_pack(file: &str) -> ScenarioPack {
    let path = format!("{}/../../packs/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    wavelan::load_pack(&path, &text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Fleet plan over a committed pack, sized for test runtime.
fn pack_fleet(file: &str, clients: u32) -> (ScenarioPack, FleetReport, Vec<RunManifest>) {
    let pack = committed_pack(file);
    let plan = FleetPlan::from_pack(pack.clone(), clients);
    let out = fleet_run(&plan, &Exec::serial());
    (pack, out.report, out.manifests)
}

#[test]
fn committed_packs_load_and_validate() {
    let leo = committed_pack("leo.toml");
    assert_eq!(leo.name, "leo");
    assert_eq!(leo.entries.len(), 2);
    assert_eq!(leo.entries[0].spec.family, "leo");
    assert_eq!(leo.entries[0].share, 7);

    let errant = committed_pack("errant-4g.toml");
    assert_eq!(errant.name, "errant-4g");
    assert_eq!(errant.entries.len(), 3);
    assert!(errant.entries.iter().all(|e| e.spec.family == "errant"));
}

/// The golden-summary check: the exact-integer fields of a pack fleet's
/// aggregate report, pinned. Floating-point aggregates (delay-error
/// percentiles) are deliberately excluded — only fields that must be
/// bit-stable across platforms are pinned.
#[derive(Debug, PartialEq)]
struct GoldenSummary {
    clients: u32,
    modulated: u64,
    released: u64,
    dropped: u64,
    failed_clients: u32,
    model_clients: Vec<(&'static str, u64)>,
}

fn summarize(r: &FleetReport) -> GoldenSummary {
    GoldenSummary {
        clients: r.clients,
        modulated: r.modulated_packets,
        released: r.released_packets,
        dropped: r.dropped_packets,
        failed_clients: r.failed_clients,
        model_clients: r
            .models
            .iter()
            .map(|u| {
                let name: &'static str = match u.family.as_str() {
                    "leo" => "leo",
                    "errant" => "errant",
                    other => panic!("unexpected family {other}"),
                };
                (name, u.clients as u64)
            })
            .collect(),
    }
}

#[test]
fn leo_pack_fleet_matches_golden_summary() {
    let (_, report, _) = pack_fleet("leo.toml", 16);
    assert_eq!(
        summarize(&report),
        GoldenSummary {
            clients: 16,
            modulated: 1908,
            released: 1891,
            dropped: 17,
            failed_clients: 0,
            model_clients: vec![("leo", 14), ("errant", 2)],
        }
    );
    let violations = report.check(&FidelityThresholds::default());
    assert!(
        violations.is_empty(),
        "leo fleet gate failed: {violations:?}"
    );
}

#[test]
fn errant_pack_fleet_matches_golden_summary() {
    let (_, report, _) = pack_fleet("errant-4g.toml", 15);
    assert_eq!(
        summarize(&report),
        GoldenSummary {
            clients: 15,
            modulated: 1791,
            released: 1773,
            dropped: 18,
            failed_clients: 0,
            // Three distinct operator param sets, 5 clients each.
            model_clients: vec![("errant", 5), ("errant", 5), ("errant", 5)],
        }
    );
    let params: Vec<&str> = report.models.iter().map(|u| u.params.as_str()).collect();
    assert_eq!(
        params,
        vec![
            "operator=op1 rat=4g",
            "operator=op2 rat=4g",
            "operator=op3 rat=4g"
        ]
    );
    let violations = report.check(&FidelityThresholds::default());
    assert!(
        violations.is_empty(),
        "errant fleet gate failed: {violations:?}"
    );
}

#[test]
fn pack_fleets_are_byte_identical_at_1_2_8_shards() {
    for file in ["leo.toml", "errant-4g.toml"] {
        let pack = committed_pack(file);
        let serial = fleet_run(&FleetPlan::from_pack(pack.clone(), 16), &Exec::serial());
        let base: Vec<String> = serial
            .manifests
            .iter()
            .map(RunManifest::deterministic_json)
            .collect();
        for shards in [2usize, 8] {
            let sharded = fleet_run(
                &FleetPlan::from_pack(pack.clone(), 16).with_shards(shards),
                &Exec::with_workers(2),
            );
            let got: Vec<String> = sharded
                .manifests
                .iter()
                .map(RunManifest::deterministic_json)
                .collect();
            assert_eq!(base, got, "{file}: {shards} shards diverged from serial");
            assert_eq!(
                serial.report.deterministic_json(),
                sharded.report.deterministic_json(),
                "{file}: aggregate report diverged at {shards} shards"
            );
        }
    }
}

/// The per-family validation cell: synthetic collection over the model,
/// streaming distillation, live modulation — gated on the default
/// fidelity thresholds, with the model identity recorded in the
/// manifest. This is the same cell the CI scenario matrix runs.
fn validation_cell(file: &str, want_family: &str) {
    let pack = committed_pack(file);
    let mut sc = pack.scenario();
    sc.duration = SimDuration::from_secs(40);
    let out = live_modulated_run(
        &sc,
        1,
        Benchmark::Web,
        &DistillConfig::default(),
        &RunConfig::default(),
    );
    let model = out.manifest.model.as_ref().expect("manifest records model");
    assert_eq!(model.family, want_family, "{file}");
    let violations = out.manifest.check(&FidelityThresholds::default());
    assert!(
        violations.is_empty(),
        "{file}: validation cell failed fidelity gate: {violations:?}"
    );
}

#[test]
fn leo_validation_cell_passes_fidelity_gate() {
    validation_cell("leo.toml", "leo");
}

#[test]
fn errant_validation_cell_passes_fidelity_gate() {
    validation_cell("errant-4g.toml", "errant");
}
