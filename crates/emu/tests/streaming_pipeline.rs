//! End-to-end streaming-pipeline validation on real collected traces:
//! the incremental path (chunked file stream → streaming distiller)
//! must be bitwise identical to the batch pipeline on every scenario,
//! and the live mode must demonstrably modulate while collection is
//! still running.

use distill::{distill_stream, distill_with_report, DistillConfig};
use emu::{collect_trace, live_modulated_run, Benchmark, RunConfig};
use netsim::SimDuration;
use tracekit::{ChunkedTraceWriter, QualityTuple, RecordStream, TraceFileStream, VecStream};
use wavelan::Scenario;

fn assert_tuples_bitwise_equal(a: &[QualityTuple], b: &[QualityTuple], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: tuple count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.duration_ns, y.duration_ns, "{what}: duration at {i}");
        assert_eq!(x.latency_ns, y.latency_ns, "{what}: latency at {i}");
        assert_eq!(
            x.vb_ns_per_byte.to_bits(),
            y.vb_ns_per_byte.to_bits(),
            "{what}: vb at {i}"
        );
        assert_eq!(
            x.vr_ns_per_byte.to_bits(),
            y.vr_ns_per_byte.to_bits(),
            "{what}: vr at {i}"
        );
        assert_eq!(x.loss.to_bits(), y.loss.to_bits(), "{what}: loss at {i}");
    }
}

/// All four paper scenarios (shortened): batch distillation vs the
/// streaming path — both in memory and through a chunked trace file —
/// must agree bitwise.
#[test]
fn streaming_distillation_matches_batch_on_all_scenarios() {
    let scenarios = [
        Scenario::porter(),
        Scenario::flagstaff(),
        Scenario::wean(),
        Scenario::chatterbox(),
    ];
    let cfg = RunConfig::default();
    let dcfg = DistillConfig::default();
    for mut sc in scenarios {
        sc.duration = SimDuration::from_secs(40);
        let name = sc.name;
        let trace = collect_trace(&sc, 1, &cfg);
        let batch = distill_with_report(&trace, &dcfg);
        assert!(
            !batch.replay.tuples.is_empty(),
            "{name}: batch produced no tuples"
        );

        // In-memory stream.
        let mut from_vec = Vec::new();
        let mut vs = VecStream::from_trace(trace.clone());
        distill_stream(&mut vs, &dcfg, &mut from_vec).unwrap();
        assert_tuples_bitwise_equal(&batch.replay.tuples, &from_vec, &format!("{name} (vec)"));

        // Through a chunked binary trace file, read back in small chunks.
        let path = std::env::temp_dir().join(format!(
            "emu-streaming-{}-{}.trace",
            std::process::id(),
            name
        ));
        let mut w = ChunkedTraceWriter::create(&path, &trace.host, name, trace.trial).unwrap();
        for r in &trace.records {
            w.push_record(r).unwrap();
        }
        let n = w.finish().unwrap();
        assert_eq!(n as usize, trace.records.len(), "{name}: record count");

        let mut from_file = Vec::new();
        let mut fs = TraceFileStream::open_chunked(&path, 4096).unwrap();
        distill_stream(&mut fs, &dcfg, &mut from_file).unwrap();
        std::fs::remove_file(&path).ok();
        assert_tuples_bitwise_equal(&batch.replay.tuples, &from_file, &format!("{name} (file)"));
    }
}

/// The chunked file stream replays the exact record sequence collected.
#[test]
fn collected_trace_survives_chunked_file_round_trip() {
    let mut sc = Scenario::porter();
    sc.duration = SimDuration::from_secs(30);
    let trace = collect_trace(&sc, 2, &RunConfig::default());

    let path = std::env::temp_dir().join(format!("emu-roundtrip-{}.trace", std::process::id()));
    let mut w =
        ChunkedTraceWriter::create(&path, &trace.host, &trace.scenario, trace.trial).unwrap();
    for r in &trace.records {
        w.push_record(r).unwrap();
    }
    w.finish().unwrap();

    let mut stream = TraceFileStream::open_chunked(&path, 512).unwrap();
    let mut back = Vec::new();
    while let Some(r) = stream.next_record().unwrap() {
        back.push(r);
    }
    std::fs::remove_file(&path).ok();
    assert_eq!(back, trace.records);
}

/// Live mode: with a small reorder horizon the distiller starts emitting
/// tuples a few seconds into collection, and the modulated benchmark
/// consumes them well before collection finishes — the pipeline runs
/// concurrently instead of phase-by-phase. Collection is kept longer
/// than the benchmark (the intended live usage — once the feed dries up,
/// the modulator stretches the final tuple indefinitely).
#[test]
fn live_run_modulates_before_collection_finishes() {
    let mut sc = Scenario::porter();
    sc.duration = SimDuration::from_secs(120);
    let dcfg = DistillConfig {
        reorder_horizon: 5,
        ..DistillConfig::default()
    };
    let out = live_modulated_run(&sc, 1, Benchmark::FtpRecv, &dcfg, &RunConfig::default());

    assert!(out.stats.tuples_fed > 0, "distiller fed no tuples");
    assert!(out.stats.tuples_consumed > 0, "modulator consumed nothing");
    let first = out
        .stats
        .first_consumption_secs
        .expect("modulator never consumed a tuple");
    assert!(
        first < out.stats.collection_secs,
        "first consumption at {first}s, but collection ran to {}s",
        out.stats.collection_secs
    );
    // The benchmark itself must complete (10 MB fetch under modulation),
    // and do so while collection is still running — full concurrency.
    let elapsed = out.result.elapsed.expect("benchmark hit its deadline");
    assert!(
        elapsed < out.stats.collection_secs,
        "fetch took {elapsed}s, collection only {}s",
        out.stats.collection_secs
    );
    // Incremental distillation stayed O(window): far fewer open groups
    // than the ~30 groups/30 s the trace contains overall.
    assert!(
        out.stats.distill.peak_open_groups <= usize::from(dcfg.reorder_horizon) + 2,
        "peak open groups {}",
        out.stats.distill.peak_open_groups
    );
}
