//! The triplet solver (§3.2.2): from the round-trip times of one ping
//! group — a small probe of size `s1` followed by two back-to-back large
//! probes of size `s2` — derive the instantaneous delay parameters
//! `F` (fixed latency), `Vb` (bottleneck per-byte cost), and `Vr`
//! (residual per-byte cost).
//!
//! Equations 5–8 of the paper:
//!
//! ```text
//! t1 = 2(F + s1·V)            V  = (t2 − t1) / (2(s2 − s1))
//! t2 = 2(F + s2·V)      ⇒     F  = t1/2 − s1·V
//! t3 = 2(F + s2·V) + s2·Vb    Vb = (t3 − t2) / s2
//!                             Vr = V − Vb
//! ```

/// One complete ping group's observations. Sizes are wire bytes; times
/// are round-trip seconds.
#[derive(Debug, Clone, Copy)]
pub struct TripletObservation {
    /// Wire size of the small probe.
    pub s1: f64,
    /// Wire size of each large probe.
    pub s2: f64,
    /// Round-trip time of the small probe.
    pub t1: f64,
    /// Round-trip time of the first large probe.
    pub t2: f64,
    /// Round-trip time of the second (queued) large probe.
    pub t3: f64,
}

/// Instantaneous delay parameters (seconds / seconds-per-byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayEstimate {
    /// One-way fixed latency `F`.
    pub f: f64,
    /// Bottleneck per-byte cost `Vb`.
    pub vb: f64,
    /// Residual per-byte cost `Vr`.
    pub vr: f64,
}

impl DelayEstimate {
    /// Total per-byte cost `V = Vb + Vr`.
    pub fn v(&self) -> f64 {
        self.vb + self.vr
    }

    /// All components non-negative and finite?
    pub fn is_physical(&self) -> bool {
        self.f.is_finite()
            && self.vb.is_finite()
            && self.vr.is_finite()
            && self.f >= 0.0
            && self.vb >= 0.0
            && self.vr >= 0.0
    }
}

/// Why a raw solve was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveIssue {
    /// Probe sizes equal or inverted: the equations are singular.
    DegenerateSizes,
    /// One or more derived parameters were negative — the packets in the
    /// group saw substantially different network conditions (§3.2.2).
    Negative,
}

/// Solve equations 5–8 exactly. Returns `Err(Negative)` when any
/// parameter comes out negative, signalling the caller to apply the
/// previous-parameters correction.
///
/// ```
/// use distill::{solve, TripletObservation};
/// // Ground truth: F = 2 ms, Vb = 4 µs/B, Vr = 1 µs/B.
/// let (f, vb, vr) = (2e-3, 4e-6, 1e-6);
/// let (s1, s2) = (106.0, 542.0);
/// let obs = TripletObservation {
///     s1, s2,
///     t1: 2.0 * (f + s1 * (vb + vr)),
///     t2: 2.0 * (f + s2 * (vb + vr)),
///     t3: 2.0 * (f + s2 * (vb + vr)) + s2 * vb,
/// };
/// let est = solve(&obs).unwrap();
/// assert!((est.f - f).abs() < 1e-12);
/// assert!((est.vb - vb).abs() < 1e-12);
/// ```
pub fn solve(obs: &TripletObservation) -> Result<DelayEstimate, SolveIssue> {
    if obs.s2 <= obs.s1 || obs.s1 <= 0.0 {
        return Err(SolveIssue::DegenerateSizes);
    }
    let v = (obs.t2 - obs.t1) / (2.0 * (obs.s2 - obs.s1));
    let f = obs.t1 / 2.0 - obs.s1 * v;
    let vb = (obs.t3 - obs.t2) / obs.s2;
    let vr = v - vb;
    let est = DelayEstimate { f, vb, vr };
    if est.is_physical() {
        Ok(est)
    } else {
        Err(SolveIssue::Negative)
    }
}

/// The paper's correction for groups whose packets saw different
/// conditions: reuse the previous `Vb`/`Vr` and fold the residual timing
/// difference into `F` ("short-term performance variation is most likely
/// due to media access delay"). The correction does not cascade: callers
/// must pass the last *solved* parameters, never a corrected result.
pub fn correct(prev: &DelayEstimate, obs: &TripletObservation) -> DelayEstimate {
    let v = prev.v();
    // Expected round-trips under the previous parameters.
    let e1 = 2.0 * (prev.f + obs.s1 * v);
    let e2 = 2.0 * (prev.f + obs.s2 * v);
    let e3 = e2 + obs.s2 * prev.vb;
    // Average the per-packet residuals, halved (round-trip → one-way),
    // and apply to F.
    let resid = ((obs.t1 - e1) + (obs.t2 - e2) + (obs.t3 - e3)) / 3.0 / 2.0;
    DelayEstimate {
        f: (prev.f + resid).max(0.0),
        vb: prev.vb,
        vr: prev.vr,
    }
}

/// Solve with fallback: exact solve, else correction from `prev`, else
/// (no previous estimate yet) component-wise clamp to zero.
pub fn solve_or_correct(
    prev: Option<&DelayEstimate>,
    obs: &TripletObservation,
) -> (DelayEstimate, bool) {
    match solve(obs) {
        Ok(est) => (est, true),
        Err(_) => match prev {
            Some(p) => (correct(p, obs), false),
            None => {
                // Bootstrap: clamp the raw (possibly negative) solution.
                let v = ((obs.t2 - obs.t1) / (2.0 * (obs.s2 - obs.s1).max(1.0))).max(0.0);
                let f = (obs.t1 / 2.0 - obs.s1 * v).max(0.0);
                let vb = ((obs.t3 - obs.t2) / obs.s2.max(1.0)).max(0.0).min(v);
                (
                    DelayEstimate {
                        f,
                        vb,
                        vr: (v - vb).max(0.0),
                    },
                    false,
                )
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a noiseless observation from known ground-truth parameters.
    fn obs_from(f: f64, vb: f64, vr: f64, s1: f64, s2: f64) -> TripletObservation {
        let v = vb + vr;
        TripletObservation {
            s1,
            s2,
            t1: 2.0 * (f + s1 * v),
            t2: 2.0 * (f + s2 * v),
            t3: 2.0 * (f + s2 * v) + s2 * vb,
        }
    }

    #[test]
    fn exact_recovery_from_noiseless_observation() {
        // WaveLAN-ish: F = 2 ms, Vb = 4 µs/B (2 Mb/s), Vr = 0.8 µs/B.
        let truth = (2e-3, 4e-6, 0.8e-6);
        let obs = obs_from(truth.0, truth.1, truth.2, 106.0, 542.0);
        let est = solve(&obs).unwrap();
        assert!((est.f - truth.0).abs() < 1e-12);
        assert!((est.vb - truth.1).abs() < 1e-12);
        assert!((est.vr - truth.2).abs() < 1e-12);
        assert!((est.v() - (truth.1 + truth.2)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sizes_rejected() {
        let mut obs = obs_from(1e-3, 1e-6, 0.0, 100.0, 500.0);
        obs.s1 = 500.0;
        assert_eq!(solve(&obs), Err(SolveIssue::DegenerateSizes));
        obs.s1 = 600.0;
        assert_eq!(solve(&obs), Err(SolveIssue::DegenerateSizes));
    }

    #[test]
    fn negative_parameters_detected() {
        // t2 < t1 (the small packet saw worse conditions): negative V.
        let obs = TripletObservation {
            s1: 100.0,
            s2: 500.0,
            t1: 10e-3,
            t2: 6e-3,
            t3: 8e-3,
        };
        assert_eq!(solve(&obs), Err(SolveIssue::Negative));
    }

    #[test]
    fn correction_keeps_previous_per_byte_costs() {
        let prev = DelayEstimate {
            f: 2e-3,
            vb: 4e-6,
            vr: 1e-6,
        };
        // Group with a media-access stall: all packets ~10 ms late.
        let mut obs = obs_from(prev.f, prev.vb, prev.vr, 106.0, 542.0);
        obs.t1 += 10e-3;
        obs.t2 += 10e-3;
        obs.t3 += 10e-3;
        let est = correct(&prev, &obs);
        assert_eq!(est.vb, prev.vb);
        assert_eq!(est.vr, prev.vr);
        // The 10 ms round-trip excess shows up as ~5 ms of one-way F.
        assert!((est.f - (prev.f + 5e-3)).abs() < 1e-9, "f = {}", est.f);
    }

    #[test]
    fn correction_clamps_f_at_zero() {
        let prev = DelayEstimate {
            f: 1e-3,
            vb: 4e-6,
            vr: 1e-6,
        };
        let mut obs = obs_from(prev.f, prev.vb, prev.vr, 106.0, 542.0);
        // Implausibly fast group.
        obs.t1 = 1e-6;
        obs.t2 = 1e-6;
        obs.t3 = 1e-6;
        let est = correct(&prev, &obs);
        assert_eq!(est.f, 0.0);
    }

    #[test]
    fn solve_or_correct_uses_prev_on_failure() {
        let prev = DelayEstimate {
            f: 2e-3,
            vb: 4e-6,
            vr: 1e-6,
        };
        let bad = TripletObservation {
            s1: 100.0,
            s2: 500.0,
            t1: 10e-3,
            t2: 6e-3,
            t3: 8e-3,
        };
        let (est, solved) = solve_or_correct(Some(&prev), &bad);
        assert!(!solved);
        assert_eq!(est.vb, prev.vb);

        let good = obs_from(1e-3, 2e-6, 0.5e-6, 106.0, 542.0);
        let (est, solved) = solve_or_correct(Some(&prev), &good);
        assert!(solved);
        assert!((est.vb - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_without_previous_clamps() {
        let bad = TripletObservation {
            s1: 100.0,
            s2: 500.0,
            t1: 10e-3,
            t2: 6e-3, // negative V
            t3: 8e-3,
        };
        let (est, solved) = solve_or_correct(None, &bad);
        assert!(!solved);
        assert!(est.is_physical());
    }
}
