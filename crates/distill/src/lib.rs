//! # distill — trace distillation (§3.2)
//!
//! Transforms a collected trace into a *replay trace*: a time series of
//! network quality tuples ⟨d, F, Vb, Vr, L⟩ describing the traced
//! network's end-to-end behaviour under the paper's simple instantaneous
//! model.
//!
//! Components:
//!
//! * [`solver`] — the exact triplet equations (5–8) with the
//!   negative-parameter correction (reuse previous Vb/Vr, fold the
//!   residual into F, never cascade);
//! * [`window`] — the five-second sliding-window average that turns
//!   per-group estimates into per-second delay tuples;
//! * [`loss`] — the loss-rate estimator `L = 1 − sqrt(b/a)`
//!   (equations 9–10);
//! * [`pipeline`] — the one-pass distillation gluing these together,
//!   exposed both as the incremental [`Distiller`] operator (records
//!   in, tuples out, O(window) state — usable while collection is
//!   still running) and as the batch [`distill`] adapter over it;
//! * [`synthetic`] — hand-built replay traces (constant/step/impulse and
//!   the Figure 1 WaveLAN-like / slow-network pairs);
//! * [`asymmetric`] — the §6 future-work extension: one-way distillation
//!   from two-endpoint traces under synchronized clocks, removing the
//!   round-trip symmetry assumption.

#![warn(missing_docs)]

pub mod asymmetric;
pub mod loss;
pub mod pipeline;
pub mod solver;
pub mod synthetic;
pub mod window;

pub use asymmetric::{distill_asymmetric, AsymmetricReport};
pub use pipeline::{
    distill, distill_chunks, distill_stream, distill_with_report, DistillConfig, DistillReport,
    DistillStats, Distiller,
};
pub use solver::{correct, solve, solve_or_correct, DelayEstimate, SolveIssue, TripletObservation};
pub use synthetic::NetworkParams;
pub use window::WindowConfig;
