//! Synthetic replay traces (§6): hand-built quality-tuple sequences for
//! exploring system behaviour under controlled variations — constant
//! conditions, step changes, and impulses — plus the WaveLAN-like and
//! slow-network traces used by the delay-compensation experiment
//! (Figure 1).

use netsim::SimDuration;
use tracekit::{QualityTuple, ReplayTrace};

/// Parameters of a constant-network segment.
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// One-way fixed latency.
    pub latency: SimDuration,
    /// Bottleneck per-byte cost in ns/byte (4000 ns/B ≈ 2 Mb/s).
    pub vb_ns_per_byte: f64,
    /// Residual per-byte cost in ns/byte.
    pub vr_ns_per_byte: f64,
    /// One-way loss probability.
    pub loss: f64,
}

impl NetworkParams {
    /// Roughly a healthy WaveLAN: 2 ms, ~2 Mb/s bottleneck, light
    /// residual costs, 1% loss.
    pub fn wavelan_like() -> Self {
        NetworkParams {
            latency: SimDuration::from_millis(2),
            vb_ns_per_byte: 4000.0,
            vr_ns_per_byte: 800.0,
            loss: 0.01,
        }
    }

    /// A much slower network (≈ 250 kb/s, 50 ms) — used to show that
    /// delay compensation is independent of the traced network (§3.3).
    pub fn slow_network() -> Self {
        NetworkParams {
            latency: SimDuration::from_millis(50),
            vb_ns_per_byte: 32_000.0,
            vr_ns_per_byte: 1_000.0,
            loss: 0.02,
        }
    }

    fn tuple(&self, d: SimDuration) -> QualityTuple {
        QualityTuple {
            duration_ns: d.as_nanos(),
            latency_ns: self.latency.as_nanos(),
            vb_ns_per_byte: self.vb_ns_per_byte,
            vr_ns_per_byte: self.vr_ns_per_byte,
            loss: self.loss,
        }
    }
}

/// A constant-conditions trace.
pub fn constant(name: &str, params: NetworkParams, span: SimDuration) -> ReplayTrace {
    ReplayTrace {
        source: name.to_string(),
        tuples: vec![params.tuple(span)],
    }
}

/// A step change: `before` for `at`, then `after` for the remainder of
/// `span`.
pub fn step(
    name: &str,
    before: NetworkParams,
    after: NetworkParams,
    at: SimDuration,
    span: SimDuration,
) -> ReplayTrace {
    assert!(at < span, "step must occur within the span");
    ReplayTrace {
        source: name.to_string(),
        tuples: vec![before.tuple(at), after.tuple(span - at)],
    }
}

/// An impulse: `base` conditions with a `spike` of the given `width`
/// starting at `at`.
pub fn impulse(
    name: &str,
    base: NetworkParams,
    spike: NetworkParams,
    at: SimDuration,
    width: SimDuration,
    span: SimDuration,
) -> ReplayTrace {
    assert!(at + width < span, "impulse must fit within the span");
    ReplayTrace {
        source: name.to_string(),
        tuples: vec![
            base.tuple(at),
            spike.tuple(width),
            base.tuple(span - at - width),
        ],
    }
}

/// A sawtooth of bandwidth between two parameter sets, `period` per
/// tooth, for `teeth` repetitions — exercises reactivity the way the
/// Odyssey paper's step/impulse experiments did.
pub fn sawtooth(
    name: &str,
    lo: NetworkParams,
    hi: NetworkParams,
    period: SimDuration,
    teeth: usize,
) -> ReplayTrace {
    let mut tuples = Vec::with_capacity(teeth * 2);
    for _ in 0..teeth {
        tuples.push(lo.tuple(period / 2));
        tuples.push(hi.tuple(period / 2));
    }
    ReplayTrace {
        source: name.to_string(),
        tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_single_tuple() {
        let t = constant(
            "c",
            NetworkParams::wavelan_like(),
            SimDuration::from_secs(60),
        );
        assert_eq!(t.tuples.len(), 1);
        assert!(t.is_valid());
        assert_eq!(t.total_duration(), SimDuration::from_secs(60));
    }

    #[test]
    fn step_switches_parameters() {
        let t = step(
            "s",
            NetworkParams::wavelan_like(),
            NetworkParams::slow_network(),
            SimDuration::from_secs(30),
            SimDuration::from_secs(60),
        );
        assert_eq!(t.tuples.len(), 2);
        let before = t.at(SimDuration::from_secs(10)).unwrap();
        let after = t.at(SimDuration::from_secs(40)).unwrap();
        assert!(after.vb_ns_per_byte > before.vb_ns_per_byte);
        assert!(after.latency_ns > before.latency_ns);
    }

    #[test]
    fn impulse_recovers() {
        let t = impulse(
            "i",
            NetworkParams::wavelan_like(),
            NetworkParams::slow_network(),
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
            SimDuration::from_secs(60),
        );
        assert_eq!(t.tuples.len(), 3);
        let base = t.at(SimDuration::from_secs(10)).unwrap().latency_ns;
        let spike = t.at(SimDuration::from_secs(22)).unwrap().latency_ns;
        let back = t.at(SimDuration::from_secs(40)).unwrap().latency_ns;
        assert!(spike > base);
        assert_eq!(base, back);
    }

    #[test]
    fn sawtooth_alternates() {
        let t = sawtooth(
            "z",
            NetworkParams::wavelan_like(),
            NetworkParams::slow_network(),
            SimDuration::from_secs(10),
            3,
        );
        assert_eq!(t.tuples.len(), 6);
        assert_eq!(t.total_duration(), SimDuration::from_secs(30));
        assert!(t.is_valid());
    }

    #[test]
    #[should_panic(expected = "within the span")]
    fn step_outside_span_panics() {
        step(
            "bad",
            NetworkParams::wavelan_like(),
            NetworkParams::slow_network(),
            SimDuration::from_secs(60),
            SimDuration::from_secs(60),
        );
    }

    #[test]
    fn wavelan_params_equal_two_megabits() {
        let p = NetworkParams::wavelan_like();
        let bw = 8e9 / p.vb_ns_per_byte;
        assert!((bw - 2_000_000.0).abs() < 1.0);
    }
}
