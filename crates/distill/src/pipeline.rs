//! The one-pass distillation pipeline (§3.2): collected trace → replay
//! trace. Runs in time linear in the trace length.
//!
//! The core is the incremental [`Distiller`]: it consumes trace records
//! one at a time (from a [`RecordStream`] or pushed directly), solves
//! probe triplets as their groups complete, feeds the sliding delay and
//! loss windows, and emits ⟨d, F, Vb, Vr, L⟩ tuples into a
//! [`TupleSink`] as soon as each window step is provably final — so
//! modulation can start consuming tuples while collection is still
//! running, and peak state is O(window), never the whole trace. The
//! batch [`distill`] / [`distill_with_report`] entry points are thin
//! adapters over the same operator and produce bit-identical output.

use crate::loss::LossWindow;
use crate::solver::{solve_or_correct, DelayEstimate, TripletObservation};
use crate::window::{DelayWindow, TimedEstimate, WindowConfig};
use obs::flight::{FlightHandle, Stage};
use std::collections::BTreeMap;
use tracekit::stream::{RecordStream, StreamError, TupleSink};
use tracekit::{ProtoInfo, QualityTuple, ReplayTrace, Trace, TraceRecord};

/// Distillation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DistillConfig {
    /// Sliding-window configuration (5 s window, 1 s step by default).
    pub window: WindowConfig,
    /// How many probe groups past a group the stream may advance before
    /// the group is retired (solved and counted). Bounds both the
    /// distiller's state and its output latency in live mode: a reply
    /// arriving after its group retired is dropped (counted in
    /// [`DistillStats::late_records`]). With 1 s probe groups the
    /// default of 30 tolerates replies up to ~30 s late — far beyond
    /// any RTT the testbed produces — so batch and streaming results
    /// coincide.
    pub reorder_horizon: u16,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            window: WindowConfig::default(),
            reorder_horizon: 30,
        }
    }
}

/// Everything the pipeline learned, for diagnostics and the scenario
/// figures.
#[derive(Debug)]
pub struct DistillReport {
    /// The replay trace (the actual product).
    pub replay: ReplayTrace,
    /// Per-group delay estimates before windowing.
    pub estimates: Vec<TimedEstimate>,
    /// Groups solved exactly.
    pub solved: usize,
    /// Groups that needed the previous-parameters correction.
    pub corrected: usize,
    /// Complete triplets found.
    pub triplets: usize,
    /// Echo probes sent / replies seen.
    pub probes_sent: usize,
    /// Replies observed.
    pub replies_seen: usize,
}

/// Counters from an incremental distillation run.
#[derive(Debug, Clone, Default)]
pub struct DistillStats {
    /// Groups solved exactly.
    pub solved: usize,
    /// Groups that needed the previous-parameters correction.
    pub corrected: usize,
    /// Complete triplets found.
    pub triplets: usize,
    /// Echo probes sent.
    pub probes_sent: usize,
    /// Replies observed.
    pub replies_seen: usize,
    /// Tuples emitted into the sink.
    pub tuples: usize,
    /// Probe records that arrived after their group had been retired
    /// (beyond the reorder horizon) and were dropped.
    pub late_records: usize,
    /// High-water mark of open (unretired) probe groups.
    pub peak_open_groups: usize,
    /// Groups retired (aged out past the reorder horizon or flushed by
    /// [`Distiller::finish`]).
    pub groups_retired: usize,
    /// High-water mark of estimates/outcomes held inside the sliding
    /// windows — together with `peak_open_groups`, the O(window)
    /// evidence.
    pub peak_window_entries: usize,
    /// Per-group delay estimates before windowing (only populated when
    /// [`Distiller::record_estimates`] was requested).
    pub estimates: Vec<TimedEstimate>,
}

#[derive(Debug, Default, Clone, Copy)]
struct GroupSlot {
    send_ns: [Option<u64>; 3],
    wire: [Option<u32>; 3],
    rtt_ns: [Option<u64>; 3],
    /// Flight-recorder keys of the outbound probes (only populated
    /// when a recorder is attached), so a solved group's estimate can
    /// be attributed back to the packets that produced it.
    key: [Option<u64>; 3],
}

/// Incremental distillation operator: trace records in, quality tuples
/// out, O(window) state in between.
///
/// Push records in trace order with
/// [`push_record`](Distiller::push_record); tuples appear in the sink
/// as soon as their window step can no longer change. Call
/// [`finish`](Distiller::finish) when the record source is exhausted to
/// retire the remaining groups, flush the windows over the full trace
/// span, and collect the run's [`DistillStats`].
#[derive(Debug)]
pub struct Distiller {
    cfg: DistillConfig,
    t0: Option<u64>,
    last_ns: u64,
    groups: BTreeMap<u16, GroupSlot>,
    max_group: u16,
    prev_solved: Option<DelayEstimate>,
    delay: DelayWindow,
    loss: LossWindow,
    stats: DistillStats,
    record_estimates: bool,
    flight: Option<FlightHandle>,
    /// Estimates awaiting tuple attribution: (probe key, estimate time
    /// in trace seconds, solved-exactly flag).
    pending_attr: Vec<(u64, f64, bool)>,
    /// Cumulative playback coverage of emitted tuples (trace seconds).
    emitted_span: f64,
    /// Emission index of the next tuple (matches the modulator's
    /// consumption order — the buffer between them is FIFO).
    tuple_idx: u64,
    /// Monotone watermarks for window feed times. The windows require
    /// time-sorted input; a hostile trace (clock jumps, corruption)
    /// can retire groups with regressing send times, so feed times are
    /// clamped up to the watermark instead of wedging the stage. A
    /// no-op on well-ordered traces.
    loss_watermark: f64,
    delay_watermark: f64,
}

impl Distiller {
    /// A fresh distiller.
    pub fn new(cfg: &DistillConfig) -> Self {
        Distiller {
            cfg: *cfg,
            t0: None,
            last_ns: 0,
            groups: BTreeMap::new(),
            max_group: 0,
            prev_solved: None,
            delay: DelayWindow::new(&cfg.window),
            loss: LossWindow::new(
                cfg.window.width.as_secs_f64(),
                cfg.window.step.as_secs_f64(),
            ),
            stats: DistillStats::default(),
            record_estimates: false,
            flight: None,
            pending_attr: Vec::new(),
            emitted_span: 0.0,
            tuple_idx: 0,
            loss_watermark: 0.0,
            delay_watermark: 0.0,
        }
    }

    /// Also accumulate the per-group delay estimates (needed for the
    /// scenario figures; costs O(groups) memory, so leave it off for
    /// unbounded live runs).
    pub fn record_estimates(mut self) -> Self {
        self.record_estimates = true;
        self
    }

    /// Attach a flight recorder: each emitted tuple is stamped with its
    /// emission index and playback coverage, and each solved probe
    /// group's packets are attributed to the first tuple whose coverage
    /// window their estimate fed.
    pub fn with_flight(mut self, flight: FlightHandle) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Probe groups currently open (awaiting retirement).
    pub fn open_groups(&self) -> usize {
        self.groups.len()
    }

    /// Tuples emitted so far.
    pub fn tuples_emitted(&self) -> usize {
        self.stats.tuples
    }

    /// Consume one trace record; completed tuples land in `sink`.
    pub fn push_record<S: TupleSink + ?Sized>(&mut self, rec: &TraceRecord, sink: &mut S) {
        let ts = rec.timestamp_ns();
        if self.t0.is_none() {
            self.t0 = Some(ts);
        }
        self.last_ns = ts;
        if let TraceRecord::Packet(p) = rec {
            match p.proto {
                ProtoInfo::IcmpEcho { seq, .. } if p.dir == tracekit::Dir::Out => {
                    self.stats.probes_sent += 1;
                    let g = seq / 3;
                    if self.is_retired(g) {
                        self.stats.late_records += 1;
                    } else {
                        let slot = self.groups.entry(g).or_default();
                        let k = (seq % 3) as usize;
                        slot.send_ns[k] = Some(p.timestamp_ns);
                        slot.wire[k] = Some(p.wire_len);
                        if self.flight.is_some() {
                            slot.key[k] = Some(p.flight_key());
                        }
                        self.max_group = self.max_group.max(g);
                    }
                }
                ProtoInfo::IcmpEchoReply { seq, rtt_ns, .. } if p.dir == tracekit::Dir::In => {
                    self.stats.replies_seen += 1;
                    let g = seq / 3;
                    if self.is_retired(g) {
                        self.stats.late_records += 1;
                    } else {
                        let slot = self.groups.entry(g).or_default();
                        slot.rtt_ns[(seq % 3) as usize] = Some(rtt_ns);
                        self.max_group = self.max_group.max(g);
                    }
                }
                _ => {}
            }
            self.stats.peak_open_groups = self.stats.peak_open_groups.max(self.groups.len());
            self.retire_aged();
        }
        self.drain_ready(sink);
    }

    // A group already processed cannot be reopened: anything below the
    // smallest open key with the horizon fully behind max_group is gone.
    fn is_retired(&self, g: u16) -> bool {
        if self.groups.contains_key(&g) {
            return false;
        }
        (g as u32) + (self.cfg.reorder_horizon as u32) < self.max_group as u32
    }

    // Retire groups that the stream has advanced past by more than the
    // reorder horizon, in key order (matching the batch BTreeMap sweep).
    fn retire_aged(&mut self) {
        while let Some(&g) = self.groups.keys().next() {
            if (g as u32) + (self.cfg.reorder_horizon as u32) >= self.max_group as u32 {
                break;
            }
            let slot = self.groups.remove(&g).unwrap_or_default();
            self.retire_group(&slot);
        }
    }

    // Per-group solve/correct and window feeding — the exact batch body.
    fn retire_group(&mut self, slot: &GroupSlot) {
        self.stats.groups_retired += 1;
        let t0 = self.t0.unwrap_or(0);
        for k in 0..3 {
            if let Some(send) = slot.send_ns[k] {
                let at = ((send.saturating_sub(t0)) as f64 / 1e9).max(self.loss_watermark);
                self.loss_watermark = at;
                self.loss.push(crate::loss::ProbeOutcome {
                    at,
                    replied: slot.rtt_ns[k].is_some(),
                });
            }
        }
        let (Some(send0), Some(w0), Some(w1)) = (slot.send_ns[0], slot.wire[0], slot.wire[1])
        else {
            return;
        };
        let (Some(r0), Some(r1), Some(r2)) = (slot.rtt_ns[0], slot.rtt_ns[1], slot.rtt_ns[2])
        else {
            return;
        };
        self.stats.triplets += 1;
        let obs = TripletObservation {
            s1: w0 as f64,
            s2: w1 as f64,
            t1: r0 as f64 / 1e9,
            t2: r1 as f64 / 1e9,
            t3: r2 as f64 / 1e9,
        };
        let (est, solved) = solve_or_correct(self.prev_solved.as_ref(), &obs);
        if solved {
            self.stats.solved += 1;
            // The correction must not cascade: only exact solves become
            // the baseline for future corrections.
            self.prev_solved = Some(est);
        } else {
            self.stats.corrected += 1;
        }
        let timed = TimedEstimate {
            at: ((send0.saturating_sub(t0)) as f64 / 1e9).max(self.delay_watermark),
            est,
        };
        self.delay_watermark = timed.at;
        if self.flight.is_some() {
            for key in slot.key.iter().flatten() {
                self.pending_attr.push((*key, timed.at, solved));
            }
        }
        if self.record_estimates {
            self.stats.estimates.push(timed);
        }
        self.delay.push(timed);
    }

    // Pair finalized delay windows with finalized loss values (both
    // queues emit in step order) into sink tuples.
    fn drain_ready<S: TupleSink + ?Sized>(&mut self, sink: &mut S) {
        self.stats.peak_window_entries = self
            .stats
            .peak_window_entries
            .max(self.delay.live_len() + self.loss.live_len());
        while self.delay.ready() > 0 && self.loss.ready() > 0 {
            let (Some(d), Some(loss)) = (self.delay.pop(), self.loss.pop()) else {
                break;
            };
            let start = self.emitted_span;
            let end = start + d.duration;
            self.emitted_span = end;
            let idx = self.tuple_idx;
            self.tuple_idx += 1;
            if let Some(fl) = &self.flight {
                let t0 = self.t0.unwrap_or(0);
                let at_ns = |secs: f64| t0.saturating_add((secs.max(0.0) * 1e9) as u64);
                fl.instant(
                    Stage::Distill,
                    "tuple",
                    None,
                    Some(idx),
                    at_ns(start),
                    format!(
                        "covers {start:.1}s..{end:.1}s F={:.3}ms loss={loss:.3}",
                        d.est.f.max(0.0) * 1e3
                    ),
                );
                // Attribute each waiting estimate to the first tuple
                // whose coverage reaches past it.
                let mut i = 0;
                while i < self.pending_attr.len() {
                    if self.pending_attr[i].1 < end {
                        let (key, at, solved) = self.pending_attr.remove(i);
                        fl.instant(
                            Stage::Distill,
                            "attribute",
                            Some(key),
                            Some(idx),
                            at_ns(at),
                            format!(
                                "estimate at {at:.1}s ({}) fed tuple {idx}",
                                if solved { "solved" } else { "corrected" }
                            ),
                        );
                    } else {
                        i += 1;
                    }
                }
            }
            sink.push_tuple(QualityTuple {
                duration_ns: (d.duration * 1e9).round() as u64,
                latency_ns: (d.est.f.max(0.0) * 1e9).round() as u64,
                vb_ns_per_byte: (d.est.vb.max(0.0)) * 1e9,
                vr_ns_per_byte: (d.est.vr.max(0.0)) * 1e9,
                loss,
            });
            self.stats.tuples += 1;
        }
    }

    /// Declare the record source exhausted: retire every open group,
    /// flush both windows over the full trace span, emit the remaining
    /// tuples, and return the run's statistics.
    pub fn finish<S: TupleSink + ?Sized>(mut self, sink: &mut S) -> DistillStats {
        let keys: Vec<u16> = self.groups.keys().copied().collect();
        for g in keys {
            let slot = self.groups.remove(&g).unwrap_or_default();
            self.retire_group(&slot);
        }
        let span = self.last_ns.saturating_sub(self.t0.unwrap_or(0)) as f64 / 1e9;
        self.delay.finish(span);
        self.loss.finish(span);
        self.drain_ready(sink);
        self.stats
    }
}

/// Distill every record a stream yields into `sink`, treating the first
/// `Ok(None)` as end-of-stream (use the [`Distiller`] directly for live
/// sources where `None` is transient).
pub fn distill_stream<R, S>(
    stream: &mut R,
    cfg: &DistillConfig,
    sink: &mut S,
) -> Result<DistillStats, StreamError>
where
    R: RecordStream + ?Sized,
    S: TupleSink + ?Sized,
{
    let mut d = Distiller::new(cfg);
    while let Some(rec) = stream.next_record()? {
        d.push_record(&rec, sink);
    }
    Ok(d.finish(sink))
}

/// Distill a binary-encoded trace presented as borrowed byte chunks,
/// without ever materializing the whole record set: each chunk is
/// decoded in place by a [`ChunkDecoder`](tracekit::ChunkDecoder)
/// (copying only record bytes that straddle a chunk boundary) into a
/// reused batch buffer, and the records flow straight into the
/// incremental [`Distiller`]. Peak memory is O(window + chunk), and the
/// emitted tuples are bit-identical to [`distill_stream`] over the same
/// records.
pub fn distill_chunks<'a, I, S>(
    chunks: I,
    cfg: &DistillConfig,
    sink: &mut S,
) -> Result<DistillStats, StreamError>
where
    I: IntoIterator<Item = &'a [u8]>,
    S: TupleSink + ?Sized,
{
    let mut decoder = tracekit::ChunkDecoder::new();
    let mut distiller = Distiller::new(cfg);
    let mut batch: Vec<TraceRecord> = Vec::new();
    for chunk in chunks {
        decoder.decode_chunk(chunk, &mut batch)?;
        for rec in &batch {
            distiller.push_record(rec, sink);
        }
        batch.clear();
    }
    decoder.finish()?;
    Ok(distiller.finish(sink))
}

/// Distill a collected trace into a replay trace.
pub fn distill(trace: &Trace, cfg: &DistillConfig) -> ReplayTrace {
    distill_with_report(trace, cfg).replay
}

/// Distill, returning the full report. Batch adapter over the
/// incremental [`Distiller`] — output is bit-identical to the original
/// whole-trace pipeline.
pub fn distill_with_report(trace: &Trace, cfg: &DistillConfig) -> DistillReport {
    let mut replay = ReplayTrace::new(&format!("{} trial {}", trace.scenario, trace.trial));
    let mut distiller = Distiller::new(cfg).record_estimates();
    for rec in &trace.records {
        distiller.push_record(rec, &mut replay);
    }
    let stats = distiller.finish(&mut replay);
    DistillReport {
        replay,
        estimates: stats.estimates,
        solved: stats.solved,
        corrected: stats.corrected,
        triplets: stats.triplets,
        probes_sent: stats.probes_sent,
        replies_seen: stats.replies_seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracekit::{Dir, PacketRecord, TraceRecord, VecStream};

    /// Synthesize a trace of perfect ping triplets under constant
    /// conditions: F (one-way s), Vb/Vr (s per byte), per-direction loss
    /// handled by the caller omitting replies.
    fn synth_trace(secs: u64, f: f64, vb: f64, vr: f64, drop_reply: impl Fn(u16) -> bool) -> Trace {
        let mut t = Trace::new("h", "synth", 1);
        let (s1, s2) = (106u32, 542u32);
        let v = vb + vr;
        for g in 0..secs {
            let base_ns = g * 1_000_000_000;
            for k in 0..3u16 {
                let seq = (g as u16) * 3 + k;
                let wire = if k == 0 { s1 } else { s2 };
                let send_ns = base_ns + k as u64; // back-to-back
                t.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: send_ns,
                    dir: Dir::Out,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEcho {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        gen_ts_ns: send_ns,
                    },
                }));
                if drop_reply(seq) {
                    continue;
                }
                let s = wire as f64;
                let rtt = match k {
                    0 => 2.0 * (f + s * v),
                    1 => 2.0 * (f + s * v),
                    _ => 2.0 * (f + s * v) + s * vb,
                };
                let rtt_ns = (rtt * 1e9) as u64;
                t.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: send_ns + rtt_ns,
                    dir: Dir::In,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEchoReply {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        rtt_ns,
                    },
                }));
            }
        }
        t.records.sort_by_key(|r| r.timestamp_ns());
        t
    }

    #[test]
    fn recovers_constant_ground_truth() {
        let (f, vb, vr) = (2e-3, 4e-6, 0.8e-6);
        let trace = synth_trace(30, f, vb, vr, |_| false);
        let report = distill_with_report(&trace, &DistillConfig::default());
        assert_eq!(report.triplets, 30);
        assert_eq!(report.solved, 30);
        assert_eq!(report.corrected, 0);
        let replay = &report.replay;
        assert!(replay.is_valid());
        // Every tuple should carry the ground-truth parameters.
        for q in &replay.tuples {
            assert!((q.latency_ns as f64 - f * 1e9).abs() < 1e3, "{q:?}");
            assert!((q.vb_ns_per_byte - vb * 1e9).abs() < 1.0, "{q:?}");
            assert!((q.vr_ns_per_byte - vr * 1e9).abs() < 1.0, "{q:?}");
            assert_eq!(q.loss, 0.0);
        }
    }

    #[test]
    fn loss_estimated_from_missing_replies() {
        // Drop every second group's replies entirely: reply rate 1/2,
        // so L = 1 − sqrt(0.5) ≈ 0.293.
        let trace = synth_trace(40, 2e-3, 4e-6, 0.8e-6, |seq| (seq / 3) % 2 == 0);
        let report = distill_with_report(&trace, &DistillConfig::default());
        let mean = report.replay.mean_loss();
        assert!((mean - 0.293).abs() < 0.05, "mean loss {mean}");
        // Only half the triplets complete.
        assert_eq!(report.triplets, 20);
        assert_eq!(report.probes_sent, 120);
        assert_eq!(report.replies_seen, 60);
    }

    #[test]
    fn incomplete_triplets_do_not_produce_estimates() {
        // Lose only the third packet of each group: no triplet completes,
        // but probes still contribute to loss accounting.
        let trace = synth_trace(10, 2e-3, 4e-6, 0.8e-6, |seq| seq % 3 == 2);
        let report = distill_with_report(&trace, &DistillConfig::default());
        assert_eq!(report.triplets, 0);
        assert!(report.estimates.is_empty());
        // Loss: 2/3 replied → L = 1 − sqrt(2/3) ≈ 0.184.
        let mean = report.replay.mean_loss();
        assert!((mean - 0.184).abs() < 0.05, "mean loss {mean}");
    }

    #[test]
    fn tuple_durations_cover_trace_span() {
        let trace = synth_trace(25, 1e-3, 4e-6, 1e-6, |_| false);
        let replay = distill(&trace, &DistillConfig::default());
        let total = replay.total_duration().as_secs_f64();
        let span = trace.span_ns() as f64 / 1e9;
        assert!((total - span).abs() < 0.1, "total {total}, span {span}");
    }

    #[test]
    fn empty_trace_produces_empty_replay() {
        let trace = Trace::new("h", "empty", 1);
        let replay = distill(&trace, &DistillConfig::default());
        assert!(replay.tuples.is_empty());
    }

    #[test]
    fn single_pass_is_linear_and_fast() {
        // 1 hour of probes = 3600 groups; distillation should be
        // effectively instant (well under a second even in debug builds).
        let trace = synth_trace(3600, 2e-3, 4e-6, 0.8e-6, |_| false);
        let start = std::time::Instant::now();
        let replay = distill(&trace, &DistillConfig::default());
        assert!(replay.is_valid());
        assert!(start.elapsed().as_secs_f64() < 5.0);
    }

    #[test]
    fn stream_matches_batch_bitwise() {
        let trace = synth_trace(60, 2e-3, 4e-6, 0.8e-6, |seq| seq % 7 == 3);
        let cfg = DistillConfig::default();
        let batch = distill(&trace, &cfg);
        let mut streamed: Vec<QualityTuple> = Vec::new();
        let mut stream = VecStream::from_trace(trace);
        let stats = distill_stream(&mut stream, &cfg, &mut streamed).unwrap();
        assert_eq!(streamed.len(), batch.tuples.len());
        for (s, b) in streamed.iter().zip(&batch.tuples) {
            assert_eq!(s.duration_ns, b.duration_ns);
            assert_eq!(s.latency_ns, b.latency_ns);
            assert_eq!(s.vb_ns_per_byte.to_bits(), b.vb_ns_per_byte.to_bits());
            assert_eq!(s.vr_ns_per_byte.to_bits(), b.vr_ns_per_byte.to_bits());
            assert_eq!(s.loss.to_bits(), b.loss.to_bits());
        }
        assert_eq!(stats.late_records, 0);
    }

    #[test]
    fn chunked_bytes_match_batch_bitwise() {
        let trace = synth_trace(60, 2e-3, 4e-6, 0.8e-6, |seq| seq % 7 == 3);
        let cfg = DistillConfig::default();
        let batch = distill(&trace, &cfg);
        let bytes = tracekit::format::encode_trace(&trace);
        for chunk in [1usize, 13, 256, 4096, bytes.len()] {
            let mut chunked: Vec<QualityTuple> = Vec::new();
            let stats = distill_chunks(bytes.chunks(chunk), &cfg, &mut chunked)
                .expect("chunked distillation");
            assert_eq!(chunked.len(), batch.tuples.len(), "chunk size {chunk}");
            for (c, b) in chunked.iter().zip(&batch.tuples) {
                assert_eq!(c.duration_ns, b.duration_ns);
                assert_eq!(c.latency_ns, b.latency_ns);
                assert_eq!(c.vb_ns_per_byte.to_bits(), b.vb_ns_per_byte.to_bits());
                assert_eq!(c.vr_ns_per_byte.to_bits(), b.vr_ns_per_byte.to_bits());
                assert_eq!(c.loss.to_bits(), b.loss.to_bits());
            }
            assert_eq!(stats.tuples, batch.tuples.len());
        }
    }

    #[test]
    fn tuples_flow_before_finish() {
        let trace = synth_trace(120, 2e-3, 4e-6, 0.8e-6, |_| false);
        let cfg = DistillConfig::default();
        let mut sink: Vec<QualityTuple> = Vec::new();
        let mut d = Distiller::new(&cfg);
        let mut mid_count = None;
        for (i, rec) in trace.records.iter().enumerate() {
            d.push_record(rec, &mut sink);
            if i == trace.records.len() / 2 {
                mid_count = Some(sink.len());
            }
        }
        let stats = d.finish(&mut sink);
        // With a 30-group horizon, tuples start flowing ~31 steps in:
        // by mid-trace (~60 s) a healthy batch must already be out.
        let mid = mid_count.unwrap();
        assert!(mid >= 20, "only {mid} tuples by mid-trace");
        assert_eq!(sink.len(), stats.tuples);
        assert_eq!(sink.len(), 120);
    }

    #[test]
    fn distiller_state_is_bounded() {
        let trace = synth_trace(1800, 2e-3, 4e-6, 0.8e-6, |_| false);
        let cfg = DistillConfig::default();
        let mut sink: Vec<QualityTuple> = Vec::new();
        let mut d = Distiller::new(&cfg);
        for rec in &trace.records {
            d.push_record(rec, &mut sink);
        }
        let stats = d.finish(&mut sink);
        // 1800 groups flowed through, but never more than
        // horizon + 2 were open at once, and the windows held only a
        // window's worth of entries.
        assert!(
            stats.peak_open_groups <= cfg.reorder_horizon as usize + 2,
            "peak open groups {}",
            stats.peak_open_groups
        );
        assert!(
            stats.peak_window_entries <= 64,
            "peak window entries {}",
            stats.peak_window_entries
        );
    }

    #[test]
    fn late_replies_beyond_horizon_are_dropped_and_counted() {
        let mut trace = synth_trace(50, 2e-3, 4e-6, 0.8e-6, |seq| seq == 0);
        // Hand-craft a reply to group 0 arriving 49 s late — far past
        // the 30-group horizon.
        trace.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 49_500_000_000,
            dir: Dir::In,
            wire_len: 106,
            proto: ProtoInfo::IcmpEchoReply {
                ident: 1,
                seq: 0,
                payload_len: 64,
                rtt_ns: 49_500_000_000,
            },
        }));
        let cfg = DistillConfig::default();
        let mut sink: Vec<QualityTuple> = Vec::new();
        let mut d = Distiller::new(&cfg);
        for rec in &trace.records {
            d.push_record(rec, &mut sink);
        }
        let stats = d.finish(&mut sink);
        assert_eq!(stats.late_records, 1);
    }
}
