//! The one-pass distillation pipeline (§3.2): collected trace → replay
//! trace. Runs in time linear in the trace length.

use crate::loss::{windowed_loss, ProbeOutcome};
use crate::solver::{solve_or_correct, DelayEstimate, TripletObservation};
use crate::window::{slide, TimedEstimate, WindowConfig};
use std::collections::BTreeMap;
use tracekit::{ProtoInfo, QualityTuple, ReplayTrace, Trace};

/// Distillation parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistillConfig {
    /// Sliding-window configuration (5 s window, 1 s step by default).
    pub window: WindowConfig,
}

/// Everything the pipeline learned, for diagnostics and the scenario
/// figures.
#[derive(Debug)]
pub struct DistillReport {
    /// The replay trace (the actual product).
    pub replay: ReplayTrace,
    /// Per-group delay estimates before windowing.
    pub estimates: Vec<TimedEstimate>,
    /// Groups solved exactly.
    pub solved: usize,
    /// Groups that needed the previous-parameters correction.
    pub corrected: usize,
    /// Complete triplets found.
    pub triplets: usize,
    /// Echo probes sent / replies seen.
    pub probes_sent: usize,
    /// Replies observed.
    pub replies_seen: usize,
}

#[derive(Debug, Default, Clone, Copy)]
struct GroupSlot {
    send_ns: [Option<u64>; 3],
    wire: [Option<u32>; 3],
    rtt_ns: [Option<u64>; 3],
}

/// Distill a collected trace into a replay trace.
pub fn distill(trace: &Trace, cfg: &DistillConfig) -> ReplayTrace {
    distill_with_report(trace, cfg).replay
}

/// Distill, returning the full report.
pub fn distill_with_report(trace: &Trace, cfg: &DistillConfig) -> DistillReport {
    let t0 = trace.records.first().map(|r| r.timestamp_ns()).unwrap_or(0);

    // Pass 1 (single pass over records): group probes into triplets.
    let mut groups: BTreeMap<u16, GroupSlot> = BTreeMap::new();
    let mut probes_sent = 0usize;
    let mut replies_seen = 0usize;
    for p in trace.packets() {
        match p.proto {
            ProtoInfo::IcmpEcho { seq, .. } if p.dir == tracekit::Dir::Out => {
                let slot = groups.entry(seq / 3).or_default();
                let k = (seq % 3) as usize;
                slot.send_ns[k] = Some(p.timestamp_ns);
                slot.wire[k] = Some(p.wire_len);
                probes_sent += 1;
            }
            ProtoInfo::IcmpEchoReply { seq, rtt_ns, .. } if p.dir == tracekit::Dir::In => {
                let slot = groups.entry(seq / 3).or_default();
                slot.rtt_ns[(seq % 3) as usize] = Some(rtt_ns);
                replies_seen += 1;
            }
            _ => {}
        }
    }

    // Per-group solve/correct, in time order; build probe outcomes.
    let mut estimates = Vec::new();
    let mut outcomes = Vec::new();
    let mut prev_solved: Option<DelayEstimate> = None;
    let mut solved_n = 0usize;
    let mut corrected_n = 0usize;
    let mut triplets = 0usize;
    for slot in groups.values() {
        for k in 0..3 {
            if let Some(send) = slot.send_ns[k] {
                outcomes.push(ProbeOutcome {
                    at: (send.saturating_sub(t0)) as f64 / 1e9,
                    replied: slot.rtt_ns[k].is_some(),
                });
            }
        }
        let (Some(send0), Some(w0), Some(w1)) = (slot.send_ns[0], slot.wire[0], slot.wire[1])
        else {
            continue;
        };
        let (Some(r0), Some(r1), Some(r2)) = (slot.rtt_ns[0], slot.rtt_ns[1], slot.rtt_ns[2])
        else {
            continue;
        };
        triplets += 1;
        let obs = TripletObservation {
            s1: w0 as f64,
            s2: w1 as f64,
            t1: r0 as f64 / 1e9,
            t2: r1 as f64 / 1e9,
            t3: r2 as f64 / 1e9,
        };
        let (est, solved) = solve_or_correct(prev_solved.as_ref(), &obs);
        if solved {
            solved_n += 1;
            // The correction must not cascade: only exact solves become
            // the baseline for future corrections.
            prev_solved = Some(est);
        } else {
            corrected_n += 1;
        }
        estimates.push(TimedEstimate {
            at: (send0.saturating_sub(t0)) as f64 / 1e9,
            est,
        });
    }
    outcomes.sort_by(|a, b| a.at.total_cmp(&b.at));

    let span = trace.span_ns() as f64 / 1e9;
    let delays = slide(&estimates, span, &cfg.window);
    let losses = windowed_loss(
        &outcomes,
        span,
        cfg.window.width.as_secs_f64(),
        cfg.window.step.as_secs_f64(),
    );

    let mut replay = ReplayTrace::new(&format!("{} trial {}", trace.scenario, trace.trial));
    for (i, d) in delays.iter().enumerate() {
        let loss = losses.get(i).copied().unwrap_or(0.0);
        replay.tuples.push(QualityTuple {
            duration_ns: (d.duration * 1e9).round() as u64,
            latency_ns: (d.est.f.max(0.0) * 1e9).round() as u64,
            vb_ns_per_byte: (d.est.vb.max(0.0)) * 1e9,
            vr_ns_per_byte: (d.est.vr.max(0.0)) * 1e9,
            loss,
        });
    }

    DistillReport {
        replay,
        estimates,
        solved: solved_n,
        corrected: corrected_n,
        triplets,
        probes_sent,
        replies_seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracekit::{Dir, PacketRecord, TraceRecord};

    /// Synthesize a trace of perfect ping triplets under constant
    /// conditions: F (one-way s), Vb/Vr (s per byte), per-direction loss
    /// handled by the caller omitting replies.
    fn synth_trace(secs: u64, f: f64, vb: f64, vr: f64, drop_reply: impl Fn(u16) -> bool) -> Trace {
        let mut t = Trace::new("h", "synth", 1);
        let (s1, s2) = (106u32, 542u32);
        let v = vb + vr;
        for g in 0..secs {
            let base_ns = g * 1_000_000_000;
            for k in 0..3u16 {
                let seq = (g as u16) * 3 + k;
                let wire = if k == 0 { s1 } else { s2 };
                let send_ns = base_ns + k as u64; // back-to-back
                t.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: send_ns,
                    dir: Dir::Out,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEcho {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        gen_ts_ns: send_ns,
                    },
                }));
                if drop_reply(seq) {
                    continue;
                }
                let s = wire as f64;
                let rtt = match k {
                    0 => 2.0 * (f + s * v),
                    1 => 2.0 * (f + s * v),
                    _ => 2.0 * (f + s * v) + s * vb,
                };
                let rtt_ns = (rtt * 1e9) as u64;
                t.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: send_ns + rtt_ns,
                    dir: Dir::In,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEchoReply {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        rtt_ns,
                    },
                }));
            }
        }
        t.records.sort_by_key(|r| r.timestamp_ns());
        t
    }

    #[test]
    fn recovers_constant_ground_truth() {
        let (f, vb, vr) = (2e-3, 4e-6, 0.8e-6);
        let trace = synth_trace(30, f, vb, vr, |_| false);
        let report = distill_with_report(&trace, &DistillConfig::default());
        assert_eq!(report.triplets, 30);
        assert_eq!(report.solved, 30);
        assert_eq!(report.corrected, 0);
        let replay = &report.replay;
        assert!(replay.is_valid());
        // Every tuple should carry the ground-truth parameters.
        for q in &replay.tuples {
            assert!((q.latency_ns as f64 - f * 1e9).abs() < 1e3, "{q:?}");
            assert!((q.vb_ns_per_byte - vb * 1e9).abs() < 1.0, "{q:?}");
            assert!((q.vr_ns_per_byte - vr * 1e9).abs() < 1.0, "{q:?}");
            assert_eq!(q.loss, 0.0);
        }
    }

    #[test]
    fn loss_estimated_from_missing_replies() {
        // Drop every second group's replies entirely: reply rate 1/2,
        // so L = 1 − sqrt(0.5) ≈ 0.293.
        let trace = synth_trace(40, 2e-3, 4e-6, 0.8e-6, |seq| (seq / 3) % 2 == 0);
        let report = distill_with_report(&trace, &DistillConfig::default());
        let mean = report.replay.mean_loss();
        assert!((mean - 0.293).abs() < 0.05, "mean loss {mean}");
        // Only half the triplets complete.
        assert_eq!(report.triplets, 20);
        assert_eq!(report.probes_sent, 120);
        assert_eq!(report.replies_seen, 60);
    }

    #[test]
    fn incomplete_triplets_do_not_produce_estimates() {
        // Lose only the third packet of each group: no triplet completes,
        // but probes still contribute to loss accounting.
        let trace = synth_trace(10, 2e-3, 4e-6, 0.8e-6, |seq| seq % 3 == 2);
        let report = distill_with_report(&trace, &DistillConfig::default());
        assert_eq!(report.triplets, 0);
        assert!(report.estimates.is_empty());
        // Loss: 2/3 replied → L = 1 − sqrt(2/3) ≈ 0.184.
        let mean = report.replay.mean_loss();
        assert!((mean - 0.184).abs() < 0.05, "mean loss {mean}");
    }

    #[test]
    fn tuple_durations_cover_trace_span() {
        let trace = synth_trace(25, 1e-3, 4e-6, 1e-6, |_| false);
        let replay = distill(&trace, &DistillConfig::default());
        let total = replay.total_duration().as_secs_f64();
        let span = trace.span_ns() as f64 / 1e9;
        assert!((total - span).abs() < 0.1, "total {total}, span {span}");
    }

    #[test]
    fn empty_trace_produces_empty_replay() {
        let trace = Trace::new("h", "empty", 1);
        let replay = distill(&trace, &DistillConfig::default());
        assert!(replay.tuples.is_empty());
    }

    #[test]
    fn single_pass_is_linear_and_fast() {
        // 1 hour of probes = 3600 groups; distillation should be
        // effectively instant (well under a second even in debug builds).
        let trace = synth_trace(3600, 2e-3, 4e-6, 0.8e-6, |_| false);
        let start = std::time::Instant::now();
        let replay = distill(&trace, &DistillConfig::default());
        assert!(replay.is_valid());
        assert!(start.elapsed().as_secs_f64() < 5.0);
    }
}
