//! The loss estimator (§3.2.2, equations 9–10).
//!
//! Over a window, `a` ECHO probes were sent and `b` ECHOREPLY packets
//! came back. With per-direction survival probability `P`, a reply
//! requires two survivals: `b = P²·a`, so `L = 1 − P = 1 − sqrt(b/a)`.

/// Per-probe bookkeeping: when each ECHO was sent (seconds from trace
/// start) and whether its reply arrived.
#[derive(Debug, Clone, Copy)]
pub struct ProbeOutcome {
    /// Send time in seconds.
    pub at: f64,
    /// Reply observed?
    pub replied: bool,
}

/// Estimate the one-way loss rate from counts (equation 10). Returns
/// `None` when `a == 0` (no probes in the window).
pub fn loss_from_counts(a: u64, b: u64) -> Option<f64> {
    if a == 0 {
        return None;
    }
    let ratio = (b as f64 / a as f64).clamp(0.0, 1.0);
    Some((1.0 - ratio.sqrt()).clamp(0.0, 1.0))
}

/// Direct one-way loss from counts: `L = 1 − b/a` — used by the
/// synchronized-clocks extension where each leg's arrivals are observed
/// directly (no squaring through a round trip).
pub fn loss_from_counts_direct(a: u64, b: u64) -> Option<f64> {
    if a == 0 {
        return None;
    }
    Some((1.0 - (b as f64 / a as f64)).clamp(0.0, 1.0))
}

/// Windowed loss estimation over probe outcomes (sorted by time): for
/// each step of `step` seconds covering `[0, span]`, count probes sent in
/// the surrounding window of `width` seconds and their replies. Windows
/// with no probes reuse the previous estimate (initially 0).
pub fn windowed_loss(probes: &[ProbeOutcome], span: f64, width: f64, step: f64) -> Vec<f64> {
    windowed_with(probes, span, width, step, loss_from_counts)
}

/// As [`windowed_loss`] but with the direct (one-way) estimator.
pub fn windowed_loss_direct(probes: &[ProbeOutcome], span: f64, width: f64, step: f64) -> Vec<f64> {
    windowed_with(probes, span, width, step, loss_from_counts_direct)
}

fn windowed_with(
    probes: &[ProbeOutcome],
    span: f64,
    width: f64,
    step: f64,
    estimator: impl Fn(u64, u64) -> Option<f64>,
) -> Vec<f64> {
    assert!(
        step > 0.0 && width > 0.0,
        "window parameters must be positive"
    );
    let steps = (span / step).ceil() as usize;
    let mut out = Vec::with_capacity(steps);
    let mut last = 0.0;
    // Incremental counts (two pointers): linear in |probes| + steps.
    let (mut head, mut tail) = (0usize, 0usize);
    let (mut a, mut b) = (0u64, 0u64);
    for i in 0..steps {
        let end = (i as f64 + 1.0) * step;
        let lo = end - width;
        while head < probes.len() && probes[head].at <= end {
            a += 1;
            if probes[head].replied {
                b += 1;
            }
            head += 1;
        }
        while tail < head && probes[tail].at <= lo {
            a -= 1;
            if probes[tail].replied {
                b -= 1;
            }
            tail += 1;
        }
        if let Some(l) = estimator(a, b) {
            last = l;
        }
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_delivery_is_zero_loss() {
        assert_eq!(loss_from_counts(10, 10), Some(0.0));
    }

    #[test]
    fn total_loss_is_one() {
        assert_eq!(loss_from_counts(10, 0), Some(1.0));
    }

    #[test]
    fn square_root_inversion() {
        // If one-way loss is 19% then P = 0.81 and replies = 0.81² =
        // 65.61% of probes.
        let l = loss_from_counts(10_000, 6561).unwrap();
        assert!((l - 0.19).abs() < 1e-3, "{l}");
    }

    #[test]
    fn no_probes_is_none() {
        assert_eq!(loss_from_counts(0, 0), None);
    }

    #[test]
    fn excess_replies_clamped() {
        // Duplicate replies can make b > a; clamp instead of NaN.
        assert_eq!(loss_from_counts(5, 9), Some(0.0));
    }

    #[test]
    fn windowed_loss_tracks_change() {
        // 0–10 s: all replied. 10–20 s: none replied.
        let mut probes = Vec::new();
        for i in 0..60 {
            let at = i as f64 / 3.0;
            probes.push(ProbeOutcome {
                at,
                replied: at < 10.0,
            });
        }
        let ls = windowed_loss(&probes, 20.0, 5.0, 1.0);
        assert_eq!(ls.len(), 20);
        assert_eq!(ls[5], 0.0);
        // Deep in the outage the window holds only lost probes.
        assert_eq!(ls[19], 1.0);
        // Transition region is between.
        assert!(ls[11] > 0.0 && ls[11] < 1.0);
    }

    #[test]
    fn windowed_loss_holds_last_value_through_gaps() {
        let probes = vec![
            ProbeOutcome {
                at: 0.5,
                replied: true,
            },
            ProbeOutcome {
                at: 1.5,
                replied: false,
            },
        ];
        // After t≈6.5 the window is empty; estimate holds.
        let ls = windowed_loss(&probes, 10.0, 5.0, 1.0);
        let filled = ls[1];
        assert!(filled > 0.0);
        assert_eq!(ls[9], ls[6]);
    }

    #[test]
    fn empty_probes_all_zero() {
        let ls = windowed_loss(&[], 5.0, 5.0, 1.0);
        assert_eq!(ls, vec![0.0; 5]);
    }
}
