//! The loss estimator (§3.2.2, equations 9–10).
//!
//! Over a window, `a` ECHO probes were sent and `b` ECHOREPLY packets
//! came back. With per-direction survival probability `P`, a reply
//! requires two survivals: `b = P²·a`, so `L = 1 − P = 1 − sqrt(b/a)`.
//!
//! Like the delay side, the windowed estimator is incremental:
//! [`LossWindow`] counts probe outcomes as they arrive and emits one
//! loss value per step with O(window) state; the batch
//! [`windowed_loss`] functions are thin adapters over it.

use std::collections::VecDeque;

/// Per-probe bookkeeping: when each ECHO was sent (seconds from trace
/// start) and whether its reply arrived.
#[derive(Debug, Clone, Copy)]
pub struct ProbeOutcome {
    /// Send time in seconds.
    pub at: f64,
    /// Reply observed?
    pub replied: bool,
}

/// Estimate the one-way loss rate from counts (equation 10). Returns
/// `None` when `a == 0` (no probes in the window).
pub fn loss_from_counts(a: u64, b: u64) -> Option<f64> {
    if a == 0 {
        return None;
    }
    let ratio = (b as f64 / a as f64).clamp(0.0, 1.0);
    Some((1.0 - ratio.sqrt()).clamp(0.0, 1.0))
}

/// Direct one-way loss from counts: `L = 1 − b/a` — used by the
/// synchronized-clocks extension where each leg's arrivals are observed
/// directly (no squaring through a round trip).
pub fn loss_from_counts_direct(a: u64, b: u64) -> Option<f64> {
    if a == 0 {
        return None;
    }
    Some((1.0 - (b as f64 / a as f64)).clamp(0.0, 1.0))
}

/// Incremental windowed loss estimator over time-sorted probe
/// outcomes. For each step of `step` seconds, counts probes sent in the
/// surrounding window of `width` seconds and their replies; windows
/// with no probes reuse the previous estimate (initially 0). A step is
/// emitted as soon as an outcome past its admission boundary arrives;
/// [`finish`](LossWindow::finish) flushes the rest once the span is
/// known. State is the outcomes inside the window: O(window).
#[derive(Debug)]
pub struct LossWindow {
    step: f64,
    width: f64,
    estimator: fn(u64, u64) -> Option<f64>,
    pending: VecDeque<ProbeOutcome>,
    active: VecDeque<ProbeOutcome>,
    a: u64,
    b: u64,
    next_step: usize,
    last: f64,
    out: VecDeque<f64>,
    peak_live: usize,
}

impl LossWindow {
    /// A loss window using the paper's round-trip estimator
    /// (equation 10).
    pub fn new(width: f64, step: f64) -> Self {
        LossWindow::with_estimator(width, step, loss_from_counts)
    }

    /// A loss window with an explicit count → loss estimator.
    pub fn with_estimator(width: f64, step: f64, estimator: fn(u64, u64) -> Option<f64>) -> Self {
        assert!(
            step > 0.0 && width > 0.0,
            "window parameters must be positive"
        );
        LossWindow {
            step,
            width,
            estimator,
            pending: VecDeque::new(),
            active: VecDeque::new(),
            a: 0,
            b: 0,
            next_step: 0,
            last: 0.0,
            out: VecDeque::new(),
            peak_live: 0,
        }
    }

    /// Push the next probe outcome (must be ≥ all previous times).
    pub fn push(&mut self, p: ProbeOutcome) {
        debug_assert!(
            self.pending.back().is_none_or(|q| q.at <= p.at),
            "probe outcomes must be time-sorted"
        );
        loop {
            let end = (self.next_step as f64 + 1.0) * self.step;
            if p.at <= end {
                break;
            }
            self.flush_step(end);
        }
        self.pending.push_back(p);
        self.peak_live = self.peak_live.max(self.live_len());
    }

    fn flush_step(&mut self, end: f64) {
        let lo = end - self.width;
        while let Some(p) = self.pending.front().copied() {
            if p.at > end {
                break;
            }
            self.a += 1;
            if p.replied {
                self.b += 1;
            }
            self.active.push_back(p);
            self.pending.pop_front();
        }
        while let Some(p) = self.active.front().copied() {
            if p.at > lo {
                break;
            }
            self.a -= 1;
            if p.replied {
                self.b -= 1;
            }
            self.active.pop_front();
        }
        if let Some(l) = (self.estimator)(self.a, self.b) {
            self.last = l;
        }
        self.out.push_back(self.last);
        self.next_step += 1;
    }

    /// Declare end of input with the trace span (seconds): flush every
    /// step needed to cover `[0, span]`.
    pub fn finish(&mut self, span: f64) {
        let steps = (span / self.step).ceil() as usize;
        while self.next_step < steps {
            let end = (self.next_step as f64 + 1.0) * self.step;
            self.flush_step(end);
        }
    }

    /// Pop the next finalized loss value, if any.
    pub fn pop(&mut self) -> Option<f64> {
        self.out.pop_front()
    }

    /// Number of finalized values awaiting [`pop`](LossWindow::pop).
    pub fn ready(&self) -> usize {
        self.out.len()
    }

    /// Outcomes currently held (pending + inside the window).
    pub fn live_len(&self) -> usize {
        self.pending.len() + self.active.len()
    }

    /// High-water mark of held outcomes — the O(window) evidence.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }
}

/// Windowed loss estimation over probe outcomes (sorted by time): for
/// each step of `step` seconds covering `[0, span]`, count probes sent in
/// the surrounding window of `width` seconds and their replies. Windows
/// with no probes reuse the previous estimate (initially 0).
pub fn windowed_loss(probes: &[ProbeOutcome], span: f64, width: f64, step: f64) -> Vec<f64> {
    windowed_with(probes, span, width, step, loss_from_counts)
}

/// As [`windowed_loss`] but with the direct (one-way) estimator.
pub fn windowed_loss_direct(probes: &[ProbeOutcome], span: f64, width: f64, step: f64) -> Vec<f64> {
    windowed_with(probes, span, width, step, loss_from_counts_direct)
}

fn windowed_with(
    probes: &[ProbeOutcome],
    span: f64,
    width: f64,
    step: f64,
    estimator: fn(u64, u64) -> Option<f64>,
) -> Vec<f64> {
    let mut w = LossWindow::with_estimator(width, step, estimator);
    for p in probes {
        w.push(*p);
    }
    w.finish(span);
    let mut out = Vec::with_capacity(w.ready());
    while let Some(l) = w.pop() {
        out.push(l);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_delivery_is_zero_loss() {
        assert_eq!(loss_from_counts(10, 10), Some(0.0));
    }

    #[test]
    fn total_loss_is_one() {
        assert_eq!(loss_from_counts(10, 0), Some(1.0));
    }

    #[test]
    fn square_root_inversion() {
        // If one-way loss is 19% then P = 0.81 and replies = 0.81² =
        // 65.61% of probes.
        let l = loss_from_counts(10_000, 6561).unwrap();
        assert!((l - 0.19).abs() < 1e-3, "{l}");
    }

    #[test]
    fn no_probes_is_none() {
        assert_eq!(loss_from_counts(0, 0), None);
    }

    #[test]
    fn excess_replies_clamped() {
        // Duplicate replies can make b > a; clamp instead of NaN.
        assert_eq!(loss_from_counts(5, 9), Some(0.0));
    }

    #[test]
    fn windowed_loss_tracks_change() {
        // 0–10 s: all replied. 10–20 s: none replied.
        let mut probes = Vec::new();
        for i in 0..60 {
            let at = i as f64 / 3.0;
            probes.push(ProbeOutcome {
                at,
                replied: at < 10.0,
            });
        }
        let ls = windowed_loss(&probes, 20.0, 5.0, 1.0);
        assert_eq!(ls.len(), 20);
        assert_eq!(ls[5], 0.0);
        // Deep in the outage the window holds only lost probes.
        assert_eq!(ls[19], 1.0);
        // Transition region is between.
        assert!(ls[11] > 0.0 && ls[11] < 1.0);
    }

    #[test]
    fn windowed_loss_holds_last_value_through_gaps() {
        let probes = vec![
            ProbeOutcome {
                at: 0.5,
                replied: true,
            },
            ProbeOutcome {
                at: 1.5,
                replied: false,
            },
        ];
        // After t≈6.5 the window is empty; estimate holds.
        let ls = windowed_loss(&probes, 10.0, 5.0, 1.0);
        let filled = ls[1];
        assert!(filled > 0.0);
        assert_eq!(ls[9], ls[6]);
    }

    #[test]
    fn empty_probes_all_zero() {
        let ls = windowed_loss(&[], 5.0, 5.0, 1.0);
        assert_eq!(ls, vec![0.0; 5]);
    }

    #[test]
    fn incremental_emits_before_finish() {
        let mut w = LossWindow::new(5.0, 1.0);
        for i in 0..20 {
            w.push(ProbeOutcome {
                at: i as f64 / 2.0,
                replied: true,
            });
        }
        // Outcome at 9.5 s proves steps ending ≤ 9 s complete.
        assert_eq!(w.ready(), 9);
        w.finish(10.0);
        assert_eq!(w.ready(), 10);
        assert!(w.peak_live() <= 16, "peak live {}", w.peak_live());
    }
}
