//! The sliding-window averaging step (§3.2.2): convert per-group delay
//! estimates into the delay components of replay-trace tuples. The
//! paper's five-second window "balances the desire to discount outlying
//! estimates with the need to be reactive to true change".
//!
//! The operator is incremental: [`DelayWindow`] consumes time-sorted
//! estimates one at a time and emits a finalized window as soon as an
//! estimate past the window's admission boundary proves it complete,
//! holding only the estimates still inside the window (O(window)
//! state). The batch [`slide`] is a thin adapter over it and produces
//! bit-identical output.

use crate::solver::DelayEstimate;
use netsim::SimDuration;
use std::collections::VecDeque;

/// Window configuration.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Width of the averaging window.
    pub width: SimDuration,
    /// Step between emitted tuples (each tuple's duration `d`).
    pub step: SimDuration,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            width: SimDuration::from_secs(5),
            step: SimDuration::from_secs(1),
        }
    }
}

/// A timestamped delay estimate (seconds since trace start).
#[derive(Debug, Clone, Copy)]
pub struct TimedEstimate {
    /// Observation time in seconds from trace start.
    pub at: f64,
    /// The estimate.
    pub est: DelayEstimate,
}

/// One averaged window: the delay portion of a quality tuple.
#[derive(Debug, Clone, Copy)]
pub struct WindowedDelay {
    /// Tuple start time (seconds from trace start).
    pub start: f64,
    /// Tuple duration (seconds) — `d` in the paper.
    pub duration: f64,
    /// Averaged parameters.
    pub est: DelayEstimate,
}

/// Incremental sliding-window average over time-sorted delay estimates.
///
/// Windows are backward-looking: the tuple starting at `t` averages
/// estimates in `(t + step − width, t + step]`. Empty windows reuse the
/// nearest preceding average (or the first estimate ever seen). A step
/// is emitted as soon as a pushed estimate lies strictly past its
/// admission boundary — at which point no later estimate can enter it —
/// so output flows while input is still arriving. [`finish`] flushes
/// the remaining steps once the trace span is known.
///
/// State is the estimates currently inside (or awaiting) the window
/// plus running sums: O(window), never the whole trace.
///
/// [`finish`]: DelayWindow::finish
#[derive(Debug)]
pub struct DelayWindow {
    step: f64,
    width: f64,
    /// Pushed but not yet admitted to any window.
    pending: VecDeque<TimedEstimate>,
    /// Admitted and not yet expired (inside the current window).
    active: VecDeque<TimedEstimate>,
    f: f64,
    vb: f64,
    vr: f64,
    next_step: usize,
    last: Option<DelayEstimate>,
    first: Option<DelayEstimate>,
    out: VecDeque<WindowedDelay>,
    peak_live: usize,
}

impl DelayWindow {
    /// An empty window operator.
    pub fn new(cfg: &WindowConfig) -> Self {
        let step = cfg.step.as_secs_f64();
        let width = cfg.width.as_secs_f64();
        assert!(step > 0.0 && width > 0.0, "window config must be positive");
        DelayWindow {
            step,
            width,
            pending: VecDeque::new(),
            active: VecDeque::new(),
            f: 0.0,
            vb: 0.0,
            vr: 0.0,
            next_step: 0,
            last: None,
            first: None,
            out: VecDeque::new(),
            peak_live: 0,
        }
    }

    /// Push the next estimate (must be ≥ all previously pushed times).
    pub fn push(&mut self, e: TimedEstimate) {
        debug_assert!(
            self.pending.back().is_none_or(|p| p.at <= e.at),
            "estimates must be time-sorted"
        );
        if self.first.is_none() {
            self.first = Some(e.est);
        }
        // Every step whose admission boundary this estimate is strictly
        // past is complete: nothing later can enter it (mid-stream the
        // span is unknown, but span ≥ e.at > end means the batch
        // duration (span − start).min(step) is exactly `step`).
        loop {
            let start = self.next_step as f64 * self.step;
            let end = start + self.step;
            if e.at <= end {
                break;
            }
            self.flush_step(start, end, self.step);
        }
        self.pending.push_back(e);
        self.peak_live = self.peak_live.max(self.live_len());
    }

    // Finalize one step: admit, expire, average (identical op order to
    // the batch two-pointer sweep, so sums see the same f64 sequence).
    fn flush_step(&mut self, start: f64, end: f64, duration: f64) {
        let lo = end - self.width;
        while let Some(p) = self.pending.front().copied() {
            if p.at > end {
                break;
            }
            self.f += p.est.f;
            self.vb += p.est.vb;
            self.vr += p.est.vr;
            self.active.push_back(p);
            self.pending.pop_front();
        }
        while let Some(t) = self.active.front().copied() {
            if t.at > lo {
                break;
            }
            self.f -= t.est.f;
            self.vb -= t.est.vb;
            self.vr -= t.est.vr;
            self.active.pop_front();
        }
        let n = self.active.len();
        let est = if n > 0 {
            let k = n as f64;
            let avg = DelayEstimate {
                f: (self.f / k).max(0.0),
                vb: (self.vb / k).max(0.0),
                vr: (self.vr / k).max(0.0),
            };
            self.last = Some(avg);
            avg
        } else if let Some(prev) = self.last {
            prev
        } else if let Some(first) = self.first {
            first
        } else {
            DelayEstimate {
                f: 0.0,
                vb: 0.0,
                vr: 0.0,
            }
        };
        self.out.push_back(WindowedDelay {
            start,
            duration,
            est,
        });
        self.next_step += 1;
    }

    /// Declare end of input with the trace span (seconds): flush every
    /// step needed to cover `[0, span]`. The final step's duration is
    /// clipped to the span.
    pub fn finish(&mut self, span: f64) {
        if span <= 0.0 {
            return;
        }
        let steps = (span / self.step).ceil() as usize;
        while self.next_step < steps {
            let start = self.next_step as f64 * self.step;
            let end = start + self.step;
            let duration = (span - start).min(self.step);
            self.flush_step(start, end, duration);
        }
    }

    /// Pop the next finalized window, if any.
    pub fn pop(&mut self) -> Option<WindowedDelay> {
        self.out.pop_front()
    }

    /// Number of finalized windows awaiting [`pop`](DelayWindow::pop).
    pub fn ready(&self) -> usize {
        self.out.len()
    }

    /// Estimates currently held (pending + inside the window).
    pub fn live_len(&self) -> usize {
        self.pending.len() + self.active.len()
    }

    /// High-water mark of held estimates — the O(window) evidence.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }
}

/// Slide a window of `cfg.width` over `estimates` (which must be sorted
/// by time), emitting one averaged tuple per `cfg.step` covering
/// `[0, span]`. Windows are backward-looking: the tuple starting at `t`
/// averages estimates in `(t + step − width, t + step]`. Empty windows
/// reuse the nearest preceding average (or the first available one).
///
/// Batch adapter over [`DelayWindow`]; bit-identical to the original
/// single-pass sweep.
pub fn slide(estimates: &[TimedEstimate], span: f64, cfg: &WindowConfig) -> Vec<WindowedDelay> {
    let mut w = DelayWindow::new(cfg);
    if span <= 0.0 {
        return Vec::new();
    }
    debug_assert!(
        estimates.windows(2).all(|p| p[0].at <= p[1].at),
        "estimates must be time-sorted"
    );
    for e in estimates {
        w.push(*e);
    }
    w.finish(span);
    let mut out = Vec::with_capacity(w.ready());
    while let Some(d) = w.pop() {
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(f: f64) -> DelayEstimate {
        DelayEstimate {
            f,
            vb: 4e-6,
            vr: 1e-6,
        }
    }

    fn series(vals: &[(f64, f64)]) -> Vec<TimedEstimate> {
        vals.iter()
            .map(|&(at, f)| TimedEstimate { at, est: est(f) })
            .collect()
    }

    #[test]
    fn one_tuple_per_step_covering_span() {
        let es = series(&[(0.5, 1e-3), (1.5, 2e-3), (2.5, 3e-3)]);
        let out = slide(&es, 10.0, &WindowConfig::default());
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].start, 0.0);
        assert_eq!(out[9].start, 9.0);
        let total: f64 = out.iter().map(|w| w.duration).sum();
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn window_averages_estimates() {
        // Estimates at 0.5s (F=2ms) and 0.9s (F=4ms): first tuple's
        // window (−4, 1] holds both → F = 3 ms.
        let es = series(&[(0.5, 2e-3), (0.9, 4e-3)]);
        let out = slide(&es, 2.0, &WindowConfig::default());
        assert!((out[0].est.f - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn five_second_window_discounts_outliers_slowly() {
        // Steady 2 ms with one 100 ms spike at t=10: the spike lifts the
        // five windows that contain it, then vanishes.
        let mut vals: Vec<(f64, f64)> = (0..30).map(|i| (i as f64 + 0.5, 2e-3)).collect();
        vals[10].1 = 100e-3;
        let es = series(&vals);
        let out = slide(&es, 30.0, &WindowConfig::default());
        // Window for tuple 10 (covering (6,11]) includes the spike.
        assert!(out[10].est.f > 20e-3);
        assert!(out[14].est.f > 20e-3);
        // By tuple 15 the spike has left the window.
        assert!((out[15].est.f - 2e-3).abs() < 1e-9);
        assert!((out[5].est.f - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn empty_windows_reuse_previous() {
        // Gap between t=2 and t=20 (ping replies lost): tuples in the gap
        // hold the last known parameters.
        let es = series(&[(1.0, 2e-3), (2.0, 2e-3), (20.5, 8e-3)]);
        let out = slide(&es, 22.0, &WindowConfig::default());
        assert!((out[10].est.f - 2e-3).abs() < 1e-12);
        assert!((out[15].est.f - 2e-3).abs() < 1e-12);
        assert!((out[20].est.f - 8e-3).abs() < 1e-12);
    }

    #[test]
    fn leading_gap_uses_first_estimate() {
        let es = series(&[(8.0, 7e-3)]);
        let out = slide(&es, 10.0, &WindowConfig::default());
        assert!((out[0].est.f - 7e-3).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_zero_estimates() {
        let out = slide(&[], 3.0, &WindowConfig::default());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].est.f, 0.0);
    }

    #[test]
    fn reactivity_to_step_change() {
        // F jumps from 2 ms to 50 ms at t=10; within a window-width the
        // average converges to the new value.
        let vals: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let t = i as f64 + 0.5;
                (t, if t < 10.0 { 2e-3 } else { 50e-3 })
            })
            .collect();
        let out = slide(&series(&vals), 30.0, &WindowConfig::default());
        assert!((out[5].est.f - 2e-3).abs() < 1e-9);
        // Fully converged five seconds after the change.
        assert!((out[16].est.f - 50e-3).abs() < 1e-9);
        // Mid-transition: between the two.
        assert!(out[12].est.f > 2e-3 && out[12].est.f < 50e-3);
    }

    #[test]
    fn incremental_emits_before_finish() {
        let cfg = WindowConfig::default();
        let mut w = DelayWindow::new(&cfg);
        for i in 0..10 {
            w.push(TimedEstimate {
                at: i as f64 + 0.5,
                est: est(2e-3),
            });
        }
        // The estimate at 9.5 s proves windows ending ≤ 9 s complete.
        assert_eq!(w.ready(), 9);
        w.finish(10.0);
        assert_eq!(w.ready(), 10);
    }

    #[test]
    fn state_stays_bounded_by_window() {
        let cfg = WindowConfig::default();
        let mut w = DelayWindow::new(&cfg);
        let mut n = 0usize;
        // 4 estimates per second for 1000 s: peak live state must stay
        // around width+step worth of estimates, not the full 4000.
        for i in 0..4000 {
            w.push(TimedEstimate {
                at: i as f64 / 4.0,
                est: est(1e-3),
            });
            n += w.ready();
            while w.pop().is_some() {}
        }
        w.finish(1000.0);
        while w.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
        // (5 s window + 1 s step + 1 boundary) × 4/s = 28; allow slack.
        assert!(w.peak_live() <= 32, "peak live {}", w.peak_live());
    }
}
