//! The sliding-window averaging step (§3.2.2): convert per-group delay
//! estimates into the delay components of replay-trace tuples. The
//! paper's five-second window "balances the desire to discount outlying
//! estimates with the need to be reactive to true change".

use crate::solver::DelayEstimate;
use netsim::SimDuration;

/// Window configuration.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Width of the averaging window.
    pub width: SimDuration,
    /// Step between emitted tuples (each tuple's duration `d`).
    pub step: SimDuration,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            width: SimDuration::from_secs(5),
            step: SimDuration::from_secs(1),
        }
    }
}

/// A timestamped delay estimate (seconds since trace start).
#[derive(Debug, Clone, Copy)]
pub struct TimedEstimate {
    /// Observation time in seconds from trace start.
    pub at: f64,
    /// The estimate.
    pub est: DelayEstimate,
}

/// One averaged window: the delay portion of a quality tuple.
#[derive(Debug, Clone, Copy)]
pub struct WindowedDelay {
    /// Tuple start time (seconds from trace start).
    pub start: f64,
    /// Tuple duration (seconds) — `d` in the paper.
    pub duration: f64,
    /// Averaged parameters.
    pub est: DelayEstimate,
}

/// Slide a window of `cfg.width` over `estimates` (which must be sorted
/// by time), emitting one averaged tuple per `cfg.step` covering
/// `[0, span]`. Windows are backward-looking: the tuple starting at `t`
/// averages estimates in `(t + step − width, t + step]`. Empty windows
/// reuse the nearest preceding average (or the first available one).
pub fn slide(estimates: &[TimedEstimate], span: f64, cfg: &WindowConfig) -> Vec<WindowedDelay> {
    let step = cfg.step.as_secs_f64();
    let width = cfg.width.as_secs_f64();
    assert!(step > 0.0 && width > 0.0, "window config must be positive");
    let mut out = Vec::new();
    if span <= 0.0 {
        return out;
    }
    debug_assert!(
        estimates.windows(2).all(|w| w[0].at <= w[1].at),
        "estimates must be time-sorted"
    );

    // Incremental sliding window (two pointers + running sums): the whole
    // sweep is linear in |estimates| + steps, honouring the paper's
    // "single pass, order of the length of the trace" requirement.
    let mut last: Option<DelayEstimate> = None;
    let steps = (span / step).ceil() as usize;
    let (mut head, mut tail) = (0usize, 0usize);
    let (mut f, mut vb, mut vr) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..steps {
        let start = i as f64 * step;
        let end = start + step;
        let lo = end - width;
        // Admit estimates that entered the window.
        while head < estimates.len() && estimates[head].at <= end {
            let e = &estimates[head].est;
            f += e.f;
            vb += e.vb;
            vr += e.vr;
            head += 1;
        }
        // Expire estimates that left it.
        while tail < head && estimates[tail].at <= lo {
            let e = &estimates[tail].est;
            f -= e.f;
            vb -= e.vb;
            vr -= e.vr;
            tail += 1;
        }
        let n = head - tail;
        let est = if n > 0 {
            let k = n as f64;
            let avg = DelayEstimate {
                f: (f / k).max(0.0),
                vb: (vb / k).max(0.0),
                vr: (vr / k).max(0.0),
            };
            last = Some(avg);
            avg
        } else if let Some(prev) = last {
            prev
        } else if let Some(first) = estimates.first() {
            first.est
        } else {
            DelayEstimate {
                f: 0.0,
                vb: 0.0,
                vr: 0.0,
            }
        };
        out.push(WindowedDelay {
            start,
            duration: (span - start).min(step),
            est,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(f: f64) -> DelayEstimate {
        DelayEstimate {
            f,
            vb: 4e-6,
            vr: 1e-6,
        }
    }

    fn series(vals: &[(f64, f64)]) -> Vec<TimedEstimate> {
        vals.iter()
            .map(|&(at, f)| TimedEstimate { at, est: est(f) })
            .collect()
    }

    #[test]
    fn one_tuple_per_step_covering_span() {
        let es = series(&[(0.5, 1e-3), (1.5, 2e-3), (2.5, 3e-3)]);
        let out = slide(&es, 10.0, &WindowConfig::default());
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].start, 0.0);
        assert_eq!(out[9].start, 9.0);
        let total: f64 = out.iter().map(|w| w.duration).sum();
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn window_averages_estimates() {
        // Estimates at 0.5s (F=2ms) and 0.9s (F=4ms): first tuple's
        // window (−4, 1] holds both → F = 3 ms.
        let es = series(&[(0.5, 2e-3), (0.9, 4e-3)]);
        let out = slide(&es, 2.0, &WindowConfig::default());
        assert!((out[0].est.f - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn five_second_window_discounts_outliers_slowly() {
        // Steady 2 ms with one 100 ms spike at t=10: the spike lifts the
        // five windows that contain it, then vanishes.
        let mut vals: Vec<(f64, f64)> = (0..30).map(|i| (i as f64 + 0.5, 2e-3)).collect();
        vals[10].1 = 100e-3;
        let es = series(&vals);
        let out = slide(&es, 30.0, &WindowConfig::default());
        // Window for tuple 10 (covering (6,11]) includes the spike.
        assert!(out[10].est.f > 20e-3);
        assert!(out[14].est.f > 20e-3);
        // By tuple 15 the spike has left the window.
        assert!((out[15].est.f - 2e-3).abs() < 1e-9);
        assert!((out[5].est.f - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn empty_windows_reuse_previous() {
        // Gap between t=2 and t=20 (ping replies lost): tuples in the gap
        // hold the last known parameters.
        let es = series(&[(1.0, 2e-3), (2.0, 2e-3), (20.5, 8e-3)]);
        let out = slide(&es, 22.0, &WindowConfig::default());
        assert!((out[10].est.f - 2e-3).abs() < 1e-12);
        assert!((out[15].est.f - 2e-3).abs() < 1e-12);
        assert!((out[20].est.f - 8e-3).abs() < 1e-12);
    }

    #[test]
    fn leading_gap_uses_first_estimate() {
        let es = series(&[(8.0, 7e-3)]);
        let out = slide(&es, 10.0, &WindowConfig::default());
        assert!((out[0].est.f - 7e-3).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_zero_estimates() {
        let out = slide(&[], 3.0, &WindowConfig::default());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].est.f, 0.0);
    }

    #[test]
    fn reactivity_to_step_change() {
        // F jumps from 2 ms to 50 ms at t=10; within a window-width the
        // average converges to the new value.
        let vals: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let t = i as f64 + 0.5;
                (t, if t < 10.0 { 2e-3 } else { 50e-3 })
            })
            .collect();
        let out = slide(&series(&vals), 30.0, &WindowConfig::default());
        assert!((out[5].est.f - 2e-3).abs() < 1e-9);
        // Fully converged five seconds after the change.
        assert!((out[16].est.f - 50e-3).abs() < 1e-9);
        // Mid-transition: between the two.
        assert!(out[12].est.f > 2e-3 && out[12].est.f < 50e-3);
    }
}
