//! One-way (asymmetric) distillation — the paper's future-work extension
//! (§5.3, §6): "fine-grained, low-drift, synchronized clocks … would
//! enable us to eliminate our assumption of network symmetry and hence
//! allow us to use one-way rather than round-trip measurements."
//!
//! Our simulated hosts share the global simulation clock, i.e. perfectly
//! synchronized clocks. Collecting a second trace *at the echo target*
//! lets us pair each probe's send and arrival records and measure every
//! leg one way:
//!
//! * uplink delay of probe k: `arrival_at_target − send_at_mobile`;
//! * downlink delay of reply k: `arrival_at_mobile − send_at_target`;
//! * per-direction loss directly from which probes/replies arrived.
//!
//! The one-way model per direction is `t = F + s·V`, with the uplink
//! bottleneck separable exactly as in the round-trip case (the two
//! back-to-back large probes queue at the uplink bottleneck:
//! `t3 − t2 = s2·Vb`). On the downlink the replies are already spaced by
//! the uplink bottleneck, so — as the paper itself observes — they do
//! not queue, and `Vb_down` is not directly observable from this
//! workload. We attribute the downlink's residual (wired-segment) cost
//! symmetric to the uplink's and assign the remainder to the downlink
//! bottleneck: `Vb_down = max(V_down − Vr_up, 0)`, `Vr_down = V_down −
//! Vb_down`.

use crate::loss::{windowed_loss_direct, ProbeOutcome};
use crate::window::{slide, TimedEstimate};
use crate::DistillConfig;
use solver_one_way::solve_one_way;
use std::collections::BTreeMap;
use tracekit::{Dir, ProtoInfo, QualityTuple, ReplayTrace, Trace};

mod solver_one_way {
    use crate::solver::DelayEstimate;

    /// One-way triplet observation: sizes in bytes, one-way times in
    /// seconds, with `queued` telling whether the third probe queued at
    /// this direction's bottleneck (true for uplink).
    #[derive(Debug, Clone, Copy)]
    pub struct OneWayObservation {
        /// Wire size of the small probe.
        pub s1: f64,
        /// Wire size of each large probe.
        pub s2: f64,
        /// One-way time of the small probe.
        pub t1: f64,
        /// One-way time of the first large probe.
        pub t2: f64,
        /// One-way time of the second (possibly queued) large probe.
        pub t3: f64,
        /// Whether the third probe queued at this direction's bottleneck.
        pub queued: bool,
    }

    /// Solve the one-way equations:
    /// `t1 = F + s1·V`, `t2 = F + s2·V`, and (queued) `t3 = t2 + s2·Vb`.
    /// For the non-queued direction, `vr_hint` (the other direction's
    /// residual cost) splits V into Vb + Vr.
    pub fn solve_one_way(obs: &OneWayObservation, vr_hint: f64) -> Option<DelayEstimate> {
        if obs.s2 <= obs.s1 || obs.s1 <= 0.0 {
            return None;
        }
        let v = (obs.t2 - obs.t1) / (obs.s2 - obs.s1);
        let f = obs.t1 - obs.s1 * v;
        let (vb, vr) = if obs.queued {
            let vb = (obs.t3 - obs.t2) / obs.s2;
            (vb, v - vb)
        } else {
            let vb = (v - vr_hint).max(0.0);
            (vb, v - vb)
        };
        let est = DelayEstimate { f, vb, vr };
        est.is_physical().then_some(est)
    }
}

pub use solver_one_way::OneWayObservation;

/// The two per-direction replay traces plus bookkeeping.
#[derive(Debug)]
pub struct AsymmetricReport {
    /// Mobile→fixed (uplink / "send") conditions.
    pub up: ReplayTrace,
    /// Fixed→mobile (downlink / "recv") conditions.
    pub down: ReplayTrace,
    /// Complete one-way triplets per direction (up, down).
    pub triplets: (usize, usize),
}

#[derive(Debug, Default, Clone, Copy)]
struct Leg {
    sent_ns: Option<u64>,
    arrived_ns: Option<u64>,
    wire: Option<u32>,
}

#[derive(Debug, Default, Clone, Copy)]
struct GroupSlot {
    up: [Leg; 3],
    down: [Leg; 3],
}

fn ingest(trace: &Trace, at_mobile: bool, groups: &mut BTreeMap<u16, GroupSlot>) {
    for p in trace.packets() {
        let (seq, is_echo, gen) = match p.proto {
            ProtoInfo::IcmpEcho { seq, gen_ts_ns, .. } => (seq, true, gen_ts_ns),
            ProtoInfo::IcmpEchoReply { seq, .. } => (seq, false, 0),
            _ => continue,
        };
        let slot = groups.entry(seq / 3).or_default();
        let k = (seq % 3) as usize;
        match (is_echo, p.dir, at_mobile) {
            // Probe leaves the mobile: uplink send. Use the *generation*
            // timestamp carried in the payload (the paper records it for
            // exactly this purpose): the back-to-back probes are
            // generated simultaneously, so queueing at the uplink
            // bottleneck — not host send pacing — separates their
            // one-way times.
            (true, Dir::Out, true) => {
                slot.up[k].sent_ns = Some(if gen > 0 { gen } else { p.timestamp_ns });
                slot.up[k].wire = Some(p.wire_len);
            }
            // Probe arrives at the target: uplink arrival.
            (true, Dir::In, false) => slot.up[k].arrived_ns = Some(p.timestamp_ns),
            // Reply leaves the target: downlink send.
            (false, Dir::Out, false) => {
                slot.down[k].sent_ns = Some(p.timestamp_ns);
                slot.down[k].wire = Some(p.wire_len);
            }
            // Reply arrives at the mobile: downlink arrival.
            (false, Dir::In, true) => slot.down[k].arrived_ns = Some(p.timestamp_ns),
            _ => {}
        }
    }
}

fn leg_estimates(
    groups: &BTreeMap<u16, GroupSlot>,
    t0: u64,
    uplink: bool,
    vr_hint: f64,
) -> (Vec<TimedEstimate>, Vec<ProbeOutcome>, usize) {
    let mut estimates = Vec::new();
    let mut outcomes = Vec::new();
    let mut triplets = 0;
    for slot in groups.values() {
        let legs = if uplink { &slot.up } else { &slot.down };
        for leg in legs {
            if let Some(sent) = leg.sent_ns {
                outcomes.push(ProbeOutcome {
                    at: sent.saturating_sub(t0) as f64 / 1e9,
                    replied: leg.arrived_ns.is_some(),
                });
            }
        }
        let ow = |k: usize| -> Option<f64> {
            Some((legs[k].arrived_ns?.saturating_sub(legs[k].sent_ns?)) as f64 / 1e9)
        };
        let (Some(t1), Some(t2), Some(t3)) = (ow(0), ow(1), ow(2)) else {
            continue;
        };
        let (Some(w0), Some(w1), Some(sent0)) = (legs[0].wire, legs[1].wire, legs[0].sent_ns)
        else {
            continue;
        };
        triplets += 1;
        let obs = OneWayObservation {
            s1: w0 as f64,
            s2: w1 as f64,
            t1,
            t2,
            t3,
            queued: uplink,
        };
        if let Some(est) = solve_one_way(&obs, vr_hint) {
            estimates.push(TimedEstimate {
                at: sent0.saturating_sub(t0) as f64 / 1e9,
                est,
            });
        }
    }
    outcomes.sort_by(|a, b| a.at.total_cmp(&b.at));
    (estimates, outcomes, triplets)
}

fn to_replay(
    source: String,
    estimates: &[TimedEstimate],
    outcomes: &[ProbeOutcome],
    span: f64,
    cfg: &DistillConfig,
) -> ReplayTrace {
    let delays = slide(estimates, span, &cfg.window);
    let losses = windowed_loss_direct(
        outcomes,
        span,
        cfg.window.width.as_secs_f64(),
        cfg.window.step.as_secs_f64(),
    );
    let mut replay = ReplayTrace::new(&source);
    for (i, d) in delays.iter().enumerate() {
        replay.tuples.push(QualityTuple {
            duration_ns: (d.duration * 1e9).round() as u64,
            latency_ns: (d.est.f.max(0.0) * 1e9).round() as u64,
            vb_ns_per_byte: d.est.vb.max(0.0) * 1e9,
            vr_ns_per_byte: d.est.vr.max(0.0) * 1e9,
            loss: losses.get(i).copied().unwrap_or(0.0),
        });
    }
    replay
}

/// Distill per-direction replay traces from the two endpoint traces
/// (mobile-side and target-side), exploiting synchronized clocks.
pub fn distill_asymmetric(mobile: &Trace, target: &Trace, cfg: &DistillConfig) -> AsymmetricReport {
    let t0 = mobile
        .records
        .first()
        .map(|r| r.timestamp_ns())
        .unwrap_or(0);
    let span = mobile.span_ns() as f64 / 1e9;

    let mut groups = BTreeMap::new();
    ingest(mobile, true, &mut groups);
    ingest(target, false, &mut groups);

    // Uplink first (its Vb is directly observable); its mean residual
    // cost then seeds the downlink's Vb/Vr split.
    let (up_est, up_out, up_trip) = leg_estimates(&groups, t0, true, 0.0);
    let mean_vr_up = if up_est.is_empty() {
        0.0
    } else {
        up_est.iter().map(|e| e.est.vr).sum::<f64>() / up_est.len() as f64
    };
    let (down_est, down_out, down_trip) = leg_estimates(&groups, t0, false, mean_vr_up);

    AsymmetricReport {
        up: to_replay(
            format!("{} trial {} (uplink)", mobile.scenario, mobile.trial),
            &up_est,
            &up_out,
            span,
            cfg,
        ),
        down: to_replay(
            format!("{} trial {} (downlink)", mobile.scenario, mobile.trial),
            &down_est,
            &down_out,
            span,
            cfg,
        ),
        triplets: (up_trip, down_trip),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracekit::{PacketRecord, TraceRecord};

    /// Build mobile+target traces for an asymmetric constant channel:
    /// uplink (F_u, V_u, loss handled by caller), downlink (F_d, V_d).
    #[allow(clippy::too_many_arguments)]
    fn synth_pair(
        secs: u64,
        f_up: f64,
        v_up: f64,
        vb_up: f64,
        f_down: f64,
        v_down: f64,
        drop_up: impl Fn(u16) -> bool,
        drop_down: impl Fn(u16) -> bool,
    ) -> (Trace, Trace) {
        let mut mobile = Trace::new("mobile", "synth", 1);
        let mut target = Trace::new("target", "synth", 1);
        let (s1, s2) = (106u32, 542u32);
        for g in 0..secs {
            let base = g * 1_000_000_000;
            for k in 0..3u16 {
                let seq = (g as u16) * 3 + k;
                let wire = if k == 0 { s1 } else { s2 };
                let s = wire as f64;
                let send = base + k as u64 * 1000;
                mobile.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: send,
                    dir: Dir::Out,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEcho {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        gen_ts_ns: send,
                    },
                }));
                if drop_up(seq) {
                    continue;
                }
                // Uplink one-way time; third probe queues s2·Vb_up extra.
                let extra = if k == 2 { s * vb_up } else { 0.0 };
                let up_ns = ((f_up + s * v_up + extra) * 1e9) as u64;
                let arrive = send + up_ns;
                target.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: arrive,
                    dir: Dir::In,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEcho {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        gen_ts_ns: send,
                    },
                }));
                // Reply leaves immediately.
                target.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: arrive,
                    dir: Dir::Out,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEchoReply {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        rtt_ns: 0,
                    },
                }));
                if drop_down(seq) {
                    continue;
                }
                let down_ns = ((f_down + s * v_down) * 1e9) as u64;
                mobile.records.push(TraceRecord::Packet(PacketRecord {
                    timestamp_ns: arrive + down_ns,
                    dir: Dir::In,
                    wire_len: wire,
                    proto: ProtoInfo::IcmpEchoReply {
                        ident: 1,
                        seq,
                        payload_len: wire - 42,
                        rtt_ns: up_ns + down_ns,
                    },
                }));
            }
        }
        mobile.records.sort_by_key(|r| r.timestamp_ns());
        target.records.sort_by_key(|r| r.timestamp_ns());
        (mobile, target)
    }

    #[test]
    fn recovers_asymmetric_ground_truth() {
        // Uplink: F 3 ms, V 6 µs/B (Vb 5, Vr 1). Downlink: F 1 ms,
        // V 3 µs/B.
        let (m, t) = synth_pair(40, 3e-3, 6e-6, 5e-6, 1e-3, 3e-6, |_| false, |_| false);
        let rep = distill_asymmetric(&m, &t, &DistillConfig::default());
        assert_eq!(rep.triplets, (40, 40));
        let up_lat = rep.up.mean_latency().as_millis_f64();
        let down_lat = rep.down.mean_latency().as_millis_f64();
        assert!((up_lat - 3.0).abs() < 0.1, "up F {up_lat}");
        assert!((down_lat - 1.0).abs() < 0.1, "down F {down_lat}");
        assert!(
            (rep.up.mean_vb() - 5000.0).abs() < 50.0,
            "{}",
            rep.up.mean_vb()
        );
        // Downlink Vb = V_down − Vr_up = 3 − 1 = 2 µs/B.
        assert!(
            (rep.down.mean_vb() - 2000.0).abs() < 50.0,
            "{}",
            rep.down.mean_vb()
        );
        assert_eq!(rep.up.mean_loss(), 0.0);
        assert_eq!(rep.down.mean_loss(), 0.0);
    }

    #[test]
    fn per_direction_loss_measured_directly() {
        // Drop 1 of 3 probes on the uplink only: L_up = 1/3 exactly (no
        // square root needed — this is the whole point of two-sided
        // collection).
        let (m, t) = synth_pair(
            60,
            2e-3,
            5e-6,
            4e-6,
            2e-3,
            5e-6,
            |seq| seq % 3 == 1,
            |_| false,
        );
        let rep = distill_asymmetric(&m, &t, &DistillConfig::default());
        assert!(
            (rep.up.mean_loss() - 1.0 / 3.0).abs() < 0.05,
            "{}",
            rep.up.mean_loss()
        );
        assert!(rep.down.mean_loss() < 0.01, "{}", rep.down.mean_loss());
    }

    #[test]
    fn downlink_loss_does_not_contaminate_uplink() {
        let (m, t) = synth_pair(
            60,
            2e-3,
            5e-6,
            4e-6,
            2e-3,
            5e-6,
            |_| false,
            |seq| seq % 2 == 0,
        );
        let rep = distill_asymmetric(&m, &t, &DistillConfig::default());
        assert!(rep.up.mean_loss() < 0.01, "{}", rep.up.mean_loss());
        assert!(
            (rep.down.mean_loss() - 0.5).abs() < 0.07,
            "{}",
            rep.down.mean_loss()
        );
    }

    #[test]
    fn empty_traces_yield_empty_replays() {
        let m = Trace::new("m", "s", 1);
        let t = Trace::new("t", "s", 1);
        let rep = distill_asymmetric(&m, &t, &DistillConfig::default());
        assert!(rep.up.tuples.is_empty());
        assert!(rep.down.tuples.is_empty());
        assert_eq!(rep.triplets, (0, 0));
    }
}
