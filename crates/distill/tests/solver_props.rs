//! Property tests for the distillation algebra.

use distill::{correct, solve, solve_or_correct, DelayEstimate, TripletObservation};
use proptest::prelude::*;

fn obs_from(f: f64, vb: f64, vr: f64, s1: f64, s2: f64) -> TripletObservation {
    let v = vb + vr;
    TripletObservation {
        s1,
        s2,
        t1: 2.0 * (f + s1 * v),
        t2: 2.0 * (f + s2 * v),
        t3: 2.0 * (f + s2 * v) + s2 * vb,
    }
}

proptest! {
    /// Equations 5–8 invert exactly on noiseless observations for any
    /// physical parameters.
    #[test]
    fn solve_inverts_forward_model(
        f in 0.0f64..0.5,
        vb in 1e-9f64..1e-4,
        vr in 0.0f64..1e-4,
        s1 in 40.0f64..400.0,
        extra in 10.0f64..2000.0,
    ) {
        let s2 = s1 + extra;
        let obs = obs_from(f, vb, vr, s1, s2);
        let est = solve(&obs).expect("noiseless observation must solve");
        prop_assert!((est.f - f).abs() < 1e-9 * (1.0 + f));
        prop_assert!((est.vb - vb).abs() < 1e-12 + vb * 1e-6);
        prop_assert!((est.vr - vr).abs() < 1e-12 + (vr + vb) * 1e-6);
    }

    /// The correction preserves the previous per-byte costs exactly and
    /// produces a physical estimate for any inputs.
    #[test]
    fn correction_is_always_physical(
        pf in 0.0f64..0.5,
        pvb in 0.0f64..1e-4,
        pvr in 0.0f64..1e-4,
        t1 in 0.0f64..2.0,
        dt2 in 0.0f64..2.0,
        dt3 in 0.0f64..2.0,
        s1 in 40.0f64..400.0,
        extra in 10.0f64..2000.0,
    ) {
        let prev = DelayEstimate { f: pf, vb: pvb, vr: pvr };
        let obs = TripletObservation {
            s1,
            s2: s1 + extra,
            t1,
            t2: t1 + dt2,
            t3: t1 + dt2 + dt3,
        };
        let est = correct(&prev, &obs);
        prop_assert_eq!(est.vb, prev.vb);
        prop_assert_eq!(est.vr, prev.vr);
        prop_assert!(est.is_physical());
    }

    /// solve_or_correct never returns a non-physical estimate, whatever
    /// the observation (including pathological timings).
    #[test]
    fn solve_or_correct_total(
        t1 in 0.0f64..5.0,
        t2 in 0.0f64..5.0,
        t3 in 0.0f64..5.0,
        s1 in 1.0f64..2000.0,
        s2 in 1.0f64..2000.0,
        has_prev in any::<bool>(),
    ) {
        let prev = DelayEstimate { f: 1e-3, vb: 4e-6, vr: 1e-6 };
        let obs = TripletObservation { s1, s2, t1, t2, t3 };
        let (est, _solved) = solve_or_correct(has_prev.then_some(&prev), &obs);
        prop_assert!(est.is_physical(), "{est:?} from {obs:?}");
    }

    /// Replay tuples built from any physical estimate are valid.
    #[test]
    fn estimates_make_valid_tuples(
        f in 0.0f64..1.0,
        vb in 0.0f64..1e-3,
        vr in 0.0f64..1e-3,
        loss in 0.0f64..=1.0,
    ) {
        let q = tracekit::QualityTuple {
            duration_ns: 1_000_000_000,
            latency_ns: (f * 1e9) as u64,
            vb_ns_per_byte: vb * 1e9,
            vr_ns_per_byte: vr * 1e9,
            loss,
        };
        prop_assert!(q.is_valid());
    }
}
