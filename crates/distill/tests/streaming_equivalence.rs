//! Bitwise equivalence of the incremental streaming distiller against
//! the original whole-trace batch pipeline.
//!
//! The library's `distill_with_report` is now a thin adapter over the
//! incremental [`Distiller`], so comparing the two through the public
//! API alone would be circular. The `reference` module below is a
//! verbatim copy of the pre-refactor batch implementation (two-pointer
//! window sweeps over fully materialised estimate/outcome vectors);
//! every test demands `f64::to_bits`-level identity between it, the
//! batch adapter, and `distill_stream` over a [`VecStream`].

use distill::{distill_stream, distill_with_report, DistillConfig};
use tracekit::{Dir, PacketRecord, ProtoInfo, QualityTuple, Trace, TraceRecord, VecStream};

/// The original batch pipeline, copied from the pre-streaming tree so
/// the refactor has an independent oracle.
mod reference {
    use distill::loss::{loss_from_counts, ProbeOutcome};
    use distill::window::TimedEstimate;
    use distill::{solve_or_correct, DelayEstimate, DistillConfig, TripletObservation};
    use std::collections::BTreeMap;
    use tracekit::{ProtoInfo, QualityTuple, Trace};

    #[derive(Debug, Default, Clone, Copy)]
    struct GroupSlot {
        send_ns: [Option<u64>; 3],
        wire: [Option<u32>; 3],
        rtt_ns: [Option<u64>; 3],
    }

    struct WindowedDelay {
        duration: f64,
        est: DelayEstimate,
    }

    fn slide(
        estimates: &[TimedEstimate],
        span: f64,
        cfg: &distill::WindowConfig,
    ) -> Vec<WindowedDelay> {
        let step = cfg.step.as_secs_f64();
        let width = cfg.width.as_secs_f64();
        let mut out = Vec::new();
        if span <= 0.0 {
            return out;
        }
        let mut last: Option<DelayEstimate> = None;
        let steps = (span / step).ceil() as usize;
        let (mut head, mut tail) = (0usize, 0usize);
        let (mut f, mut vb, mut vr) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..steps {
            let start = i as f64 * step;
            let end = start + step;
            let lo = end - width;
            while head < estimates.len() && estimates[head].at <= end {
                let e = &estimates[head].est;
                f += e.f;
                vb += e.vb;
                vr += e.vr;
                head += 1;
            }
            while tail < head && estimates[tail].at <= lo {
                let e = &estimates[tail].est;
                f -= e.f;
                vb -= e.vb;
                vr -= e.vr;
                tail += 1;
            }
            let n = head - tail;
            let est = if n > 0 {
                let k = n as f64;
                let avg = DelayEstimate {
                    f: (f / k).max(0.0),
                    vb: (vb / k).max(0.0),
                    vr: (vr / k).max(0.0),
                };
                last = Some(avg);
                avg
            } else if let Some(prev) = last {
                prev
            } else if let Some(first) = estimates.first() {
                first.est
            } else {
                DelayEstimate {
                    f: 0.0,
                    vb: 0.0,
                    vr: 0.0,
                }
            };
            out.push(WindowedDelay {
                duration: (span - start).min(step),
                est,
            });
        }
        out
    }

    fn windowed_loss(probes: &[ProbeOutcome], span: f64, width: f64, step: f64) -> Vec<f64> {
        let steps = (span / step).ceil() as usize;
        let mut out = Vec::with_capacity(steps);
        let mut last = 0.0;
        let (mut head, mut tail) = (0usize, 0usize);
        let (mut a, mut b) = (0u64, 0u64);
        for i in 0..steps {
            let end = (i as f64 + 1.0) * step;
            let lo = end - width;
            while head < probes.len() && probes[head].at <= end {
                a += 1;
                if probes[head].replied {
                    b += 1;
                }
                head += 1;
            }
            while tail < head && probes[tail].at <= lo {
                a -= 1;
                if probes[tail].replied {
                    b -= 1;
                }
                tail += 1;
            }
            if let Some(l) = loss_from_counts(a, b) {
                last = l;
            }
            out.push(last);
        }
        out
    }

    /// The pre-refactor `distill_with_report`, minus the report fields
    /// the equivalence tests don't compare.
    pub fn distill_tuples(trace: &Trace, cfg: &DistillConfig) -> Vec<QualityTuple> {
        let t0 = trace.records.first().map(|r| r.timestamp_ns()).unwrap_or(0);

        let mut groups: BTreeMap<u16, GroupSlot> = BTreeMap::new();
        for p in trace.packets() {
            match p.proto {
                ProtoInfo::IcmpEcho { seq, .. } if p.dir == tracekit::Dir::Out => {
                    let slot = groups.entry(seq / 3).or_default();
                    let k = (seq % 3) as usize;
                    slot.send_ns[k] = Some(p.timestamp_ns);
                    slot.wire[k] = Some(p.wire_len);
                }
                ProtoInfo::IcmpEchoReply { seq, rtt_ns, .. } if p.dir == tracekit::Dir::In => {
                    let slot = groups.entry(seq / 3).or_default();
                    slot.rtt_ns[(seq % 3) as usize] = Some(rtt_ns);
                }
                _ => {}
            }
        }

        let mut estimates = Vec::new();
        let mut outcomes = Vec::new();
        let mut prev_solved: Option<DelayEstimate> = None;
        for slot in groups.values() {
            for k in 0..3 {
                if let Some(send) = slot.send_ns[k] {
                    outcomes.push(ProbeOutcome {
                        at: (send.saturating_sub(t0)) as f64 / 1e9,
                        replied: slot.rtt_ns[k].is_some(),
                    });
                }
            }
            let (Some(send0), Some(w0), Some(w1)) = (slot.send_ns[0], slot.wire[0], slot.wire[1])
            else {
                continue;
            };
            let (Some(r0), Some(r1), Some(r2)) = (slot.rtt_ns[0], slot.rtt_ns[1], slot.rtt_ns[2])
            else {
                continue;
            };
            let obs = TripletObservation {
                s1: w0 as f64,
                s2: w1 as f64,
                t1: r0 as f64 / 1e9,
                t2: r1 as f64 / 1e9,
                t3: r2 as f64 / 1e9,
            };
            let (est, solved) = solve_or_correct(prev_solved.as_ref(), &obs);
            if solved {
                prev_solved = Some(est);
            }
            estimates.push(TimedEstimate {
                at: (send0.saturating_sub(t0)) as f64 / 1e9,
                est,
            });
        }
        outcomes.sort_by(|a, b| a.at.total_cmp(&b.at));

        let span = trace.span_ns() as f64 / 1e9;
        let delays = slide(&estimates, span, &cfg.window);
        let losses = windowed_loss(
            &outcomes,
            span,
            cfg.window.width.as_secs_f64(),
            cfg.window.step.as_secs_f64(),
        );

        delays
            .iter()
            .enumerate()
            .map(|(i, d)| QualityTuple {
                duration_ns: (d.duration * 1e9).round() as u64,
                latency_ns: (d.est.f.max(0.0) * 1e9).round() as u64,
                vb_ns_per_byte: (d.est.vb.max(0.0)) * 1e9,
                vr_ns_per_byte: (d.est.vr.max(0.0)) * 1e9,
                loss: losses.get(i).copied().unwrap_or(0.0),
            })
            .collect()
    }
}

/// Synthesize a ping-triplet trace with a deterministic LCG jittering
/// send times and RTTs, configurable reply drops, and occasional
/// non-probe records (signal samples, overruns) interleaved.
fn synth_trace(secs: u64, seed: u64, drop_reply: impl Fn(u16) -> bool) -> Trace {
    let mut t = Trace::new("h", "synth", 1);
    let mut lcg = seed | 1;
    let mut next = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 33
    };
    let (s1, s2) = (106u32, 542u32);
    let (f, vb, vr) = (2e-3, 4e-6, 0.8e-6);
    for g in 0..secs {
        let base_ns = g * 1_000_000_000 + next() % 40_000_000;
        let mut off = 0u64;
        for k in 0..3u16 {
            let seq = (g as u16) * 3 + k;
            let wire = if k == 0 { s1 } else { s2 };
            let send_ns = base_ns + off;
            off += 100_000 + next() % 400_000;
            t.records.push(TraceRecord::Packet(PacketRecord {
                timestamp_ns: send_ns,
                dir: Dir::Out,
                wire_len: wire,
                proto: ProtoInfo::IcmpEcho {
                    ident: 1,
                    seq,
                    payload_len: wire - 42,
                    gen_ts_ns: send_ns,
                },
            }));
            if drop_reply(seq) {
                continue;
            }
            let s = wire as f64;
            let v = vb + vr;
            let base_rtt = match k {
                0 | 1 => 2.0 * (f + s * v),
                _ => 2.0 * (f + s * v) + s * vb,
            };
            let rtt_ns = (base_rtt * 1e9) as u64 + next() % 300_000;
            t.records.push(TraceRecord::Packet(PacketRecord {
                timestamp_ns: send_ns + rtt_ns,
                dir: Dir::In,
                wire_len: wire,
                proto: ProtoInfo::IcmpEchoReply {
                    ident: 1,
                    seq,
                    payload_len: wire - 42,
                    rtt_ns,
                },
            }));
        }
        if g % 7 == 0 {
            t.records
                .push(TraceRecord::Overrun(tracekit::OverrunRecord {
                    timestamp_ns: base_ns + 500_000_000,
                    lost_packets: next() % 5 + 1,
                    lost_device: next() % 3,
                }));
        }
    }
    t.records.sort_by_key(|r| r.timestamp_ns());
    t
}

fn assert_tuples_bitwise_equal(a: &[QualityTuple], b: &[QualityTuple], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: tuple count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.duration_ns, y.duration_ns, "{what}: duration at {i}");
        assert_eq!(x.latency_ns, y.latency_ns, "{what}: latency at {i}");
        assert_eq!(
            x.vb_ns_per_byte.to_bits(),
            y.vb_ns_per_byte.to_bits(),
            "{what}: vb at {i}"
        );
        assert_eq!(
            x.vr_ns_per_byte.to_bits(),
            y.vr_ns_per_byte.to_bits(),
            "{what}: vr at {i}"
        );
        assert_eq!(x.loss.to_bits(), y.loss.to_bits(), "{what}: loss at {i}");
    }
}

fn check_equivalence(trace: &Trace, cfg: &DistillConfig, what: &str) {
    let oracle = reference::distill_tuples(trace, cfg);
    assert!(
        !oracle.is_empty() || trace.records.is_empty(),
        "{what}: oracle produced no tuples"
    );

    let batch = distill_with_report(trace, cfg);
    assert_tuples_bitwise_equal(&oracle, &batch.replay.tuples, &format!("{what} (batch)"));

    let mut streamed = Vec::new();
    let mut stream = VecStream::from_trace(trace.clone());
    distill_stream(&mut stream, cfg, &mut streamed).expect("vec stream cannot fail");
    assert_tuples_bitwise_equal(&oracle, &streamed, &format!("{what} (stream)"));
}

#[test]
fn perfect_trace_matches_reference_bitwise() {
    let trace = synth_trace(120, 11, |_| false);
    check_equivalence(&trace, &DistillConfig::default(), "perfect");
}

#[test]
fn lossy_trace_matches_reference_bitwise() {
    let trace = synth_trace(90, 23, |seq| (seq / 3) % 3 == 1);
    check_equivalence(&trace, &DistillConfig::default(), "lossy");
}

#[test]
fn incomplete_triplets_match_reference_bitwise() {
    // Third probe of most groups lost: those triplets never complete, so
    // the delay window runs mostly on corrections/gaps.
    let trace = synth_trace(60, 37, |seq| seq % 3 == 2 && (seq / 3) % 4 != 0);
    check_equivalence(&trace, &DistillConfig::default(), "incomplete");
}

#[test]
fn outage_gap_matches_reference_bitwise() {
    // A 20 s total outage in the middle: empty windows must hold the
    // previous estimate identically in all three implementations.
    let trace = synth_trace(80, 51, |seq| {
        let g = seq / 3;
        (30..50).contains(&g)
    });
    check_equivalence(&trace, &DistillConfig::default(), "outage");
}

#[test]
fn nondefault_window_matches_reference_bitwise() {
    use netsim::SimDuration;
    let cfg = DistillConfig {
        window: distill::WindowConfig {
            width: SimDuration::from_secs(15),
            step: SimDuration::from_millis(2500),
        },
        ..DistillConfig::default()
    };
    let trace = synth_trace(70, 77, |seq| seq % 11 == 5);
    check_equivalence(&trace, &cfg, "15s/2.5s window");
}

#[test]
fn empty_trace_matches_reference() {
    let trace = Trace::new("h", "empty", 1);
    check_equivalence(&trace, &DistillConfig::default(), "empty");
}
