//! Property-based integrity tests for the TCP implementation: under
//! arbitrary packet loss, duplication, and delay patterns, every byte the
//! sender's application queued must be delivered to the receiver's
//! application exactly once, in order.

use netsim::{Context, EventKind, LinkParams, Node, SimDuration, SimTime, Simulator};
use netstack::{start_host, App, AppEvent, Host, HostApi, HostConfig, TcpHandle, NIC_PORT};
use packet::MacAddr;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A relay node that drops/duplicates frames according to a scripted
/// pattern (deterministic for shrinking).
struct Gremlin {
    pattern: Vec<u8>, // 0 = pass, 1 = drop, 2 = duplicate
    idx: usize,
    delay: SimDuration,
}

impl Node for Gremlin {
    fn on_event(&mut self, event: EventKind, ctx: &mut Context<'_>) {
        if let EventKind::Deliver { port, frame } = event {
            let action = self.pattern[self.idx % self.pattern.len()];
            self.idx += 1;
            let out = netsim::PortId(1 - port.0);
            match action {
                1 => {} // dropped
                2 => {
                    ctx.send(out, frame.clone());
                    ctx.send(out, frame);
                }
                _ => {
                    ctx.send(out, frame);
                }
            }
            let _ = self.delay;
        }
    }
}

/// Sends a deterministic byte pattern, then closes.
struct PatternSender {
    dst: (Ipv4Addr, u16),
    total: usize,
    sent: usize,
    conn: Option<TcpHandle>,
}

fn pattern_byte(i: usize) -> u8 {
    (i as u32).wrapping_mul(2654435761).to_le_bytes()[0]
}

impl PatternSender {
    fn pump(&mut self, api: &mut HostApi<'_, '_>) {
        let Some(conn) = self.conn else { return };
        while self.sent < self.total {
            let chunk: Vec<u8> = (self.sent..(self.sent + 1024).min(self.total))
                .map(pattern_byte)
                .collect();
            let n = api.tcp_send(conn, &chunk);
            self.sent += n;
            if n < chunk.len() {
                return;
            }
        }
        api.tcp_close(conn);
    }
}

impl App for PatternSender {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => self.conn = Some(api.tcp_connect(self.dst)),
            AppEvent::TcpConnected { .. } | AppEvent::TcpSendSpace { .. } => self.pump(api),
            _ => {}
        }
    }
}

/// Verifies the byte pattern as it arrives.
struct PatternSink {
    port: u16,
    received: usize,
    corrupt: bool,
    complete: bool,
}

impl App for PatternSink {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => api.tcp_listen(self.port),
            AppEvent::TcpData { data, .. } => {
                for b in data {
                    if b != pattern_byte(self.received) {
                        self.corrupt = true;
                    }
                    self.received += 1;
                }
            }
            AppEvent::TcpPeerClosed { conn } => {
                self.complete = true;
                api.tcp_close(conn);
            }
            _ => {}
        }
    }
}

fn run_transfer(total: usize, pattern: Vec<u8>) -> (usize, bool, bool) {
    let mut host_a =
        Host::new(HostConfig::new("a", IP_A, MacAddr::local(1)).with_arp(IP_B, MacAddr::local(2)));
    let sender = host_a.add_app(Box::new(PatternSender {
        dst: (IP_B, 7777),
        total,
        sent: 0,
        conn: None,
    }));
    let _ = sender;
    let mut host_b =
        Host::new(HostConfig::new("b", IP_B, MacAddr::local(2)).with_arp(IP_A, MacAddr::local(1)));
    let sink = host_b.add_app(Box::new(PatternSink {
        port: 7777,
        received: 0,
        corrupt: false,
        complete: false,
    }));

    let mut sim = Simulator::new(1);
    let na = sim.add_node(Box::new(host_a));
    let nb = sim.add_node(Box::new(host_b));
    let g = sim.add_node(Box::new(Gremlin {
        pattern,
        idx: 0,
        delay: SimDuration::ZERO,
    }));
    let link = LinkParams::new(10_000_000, SimDuration::from_micros(100), 64);
    sim.connect_sym(na, NIC_PORT, g, netsim::PortId(0), link);
    sim.connect_sym(nb, NIC_PORT, g, netsim::PortId(1), link);
    start_host(&mut sim, nb, SimTime::ZERO);
    start_host(&mut sim, na, SimTime::from_millis(1));
    sim.run_until(SimTime::from_secs(1800));

    let s: &PatternSink = sim.node::<Host>(nb).app(sink);
    (s.received, s.corrupt, s.complete)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any loss/duplication pattern with at least some passes must
    /// deliver every byte exactly once, in order.
    #[test]
    fn data_integrity_under_adversarial_wire(
        total in 1usize..60_000,
        // Action pattern: weight passes heavily enough that progress is
        // possible, but include plenty of drops and duplicates.
        pattern in proptest::collection::vec(
            prop_oneof![4 => Just(0u8), 1 => Just(1u8), 1 => Just(2u8)],
            4..48
        ),
    ) {
        // Guarantee the pattern is survivable (not all drops).
        prop_assume!(pattern.iter().any(|&a| a != 1));
        let (received, corrupt, complete) = run_transfer(total, pattern);
        prop_assert!(!corrupt, "byte stream corrupted");
        prop_assert!(complete, "transfer did not complete (received {received}/{total})");
        prop_assert_eq!(received, total);
    }
}

#[test]
fn clean_wire_fast_path() {
    let (received, corrupt, complete) = run_transfer(100_000, vec![0]);
    assert!(!corrupt && complete);
    assert_eq!(received, 100_000);
}

#[test]
fn heavy_loss_still_delivers() {
    // Every third frame dropped: brutal, but TCP must still finish.
    let (received, corrupt, complete) = run_transfer(30_000, vec![0, 0, 1]);
    assert!(!corrupt, "corrupted under heavy loss");
    assert!(complete, "did not complete under heavy loss");
    assert_eq!(received, 30_000);
}

#[test]
fn duplication_storm_is_harmless() {
    let (received, corrupt, complete) = run_transfer(30_000, vec![2]);
    assert!(!corrupt && complete);
    assert_eq!(received, 30_000);
}
