//! IP fragmentation/reassembly: large UDP datagrams must cross the
//! MTU-limited link intact, survive fragment reordering, and vanish
//! cleanly (not corrupt anything) when a fragment is lost.

use netsim::{Context, EventKind, LinkParams, Node, PortId, SimDuration, SimTime, Simulator};
use netstack::{start_host, App, AppEvent, Host, HostApi, HostConfig, NIC_PORT};
use packet::MacAddr;
use std::net::Ipv4Addr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Sends one UDP datagram of `size` bytes at start.
struct BigSender {
    dst: (Ipv4Addr, u16),
    size: usize,
}
impl App for BigSender {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        if matches!(event, AppEvent::Start) {
            let port = api.udp_bind_ephemeral();
            let payload: Vec<u8> = (0..self.size).map(|i| (i % 251) as u8).collect();
            api.udp_send(port, self.dst, &payload);
        }
    }
}

/// Records datagrams received on a port.
struct BigReceiver {
    port: u16,
    got: Vec<Vec<u8>>,
}
impl App for BigReceiver {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                api.udp_bind(self.port);
            }
            AppEvent::UdpDatagram { data, .. } => self.got.push(data),
            _ => {}
        }
    }
}

/// A relay that reorders (swaps pairs) or drops the nth frame.
struct Meddler {
    mode: MeddleMode,
    held: Option<(PortId, netsim::Frame)>,
    count: usize,
}
enum MeddleMode {
    Passthrough,
    SwapPairs,
    DropNth(usize),
}
impl Node for Meddler {
    fn on_event(&mut self, ev: EventKind, ctx: &mut Context<'_>) {
        if let EventKind::Deliver { port, frame } = ev {
            let out = PortId(1 - port.0);
            self.count += 1;
            match self.mode {
                MeddleMode::Passthrough => {
                    ctx.send(out, frame);
                }
                MeddleMode::SwapPairs => {
                    if let Some((o, held)) = self.held.take() {
                        // Send the newer frame first, then the held one.
                        ctx.send(out, frame);
                        ctx.send(PortId(1 - o.0), held);
                    } else {
                        self.held = Some((port, frame));
                    }
                }
                MeddleMode::DropNth(n) => {
                    if self.count != n {
                        ctx.send(out, frame);
                    }
                }
            }
        }
    }
}

fn run(size: usize, mode: MeddleMode) -> (Vec<Vec<u8>>, u64) {
    let mut a =
        Host::new(HostConfig::new("a", IP_A, MacAddr::local(1)).with_arp(IP_B, MacAddr::local(2)));
    a.add_app(Box::new(BigSender {
        dst: (IP_B, 9000),
        size,
    }));
    let mut b =
        Host::new(HostConfig::new("b", IP_B, MacAddr::local(2)).with_arp(IP_A, MacAddr::local(1)));
    let rx = b.add_app(Box::new(BigReceiver {
        port: 9000,
        got: Vec::new(),
    }));
    let mut sim = Simulator::new(3);
    let na = sim.add_node(Box::new(a));
    let nb = sim.add_node(Box::new(b));
    let relay = sim.add_node(Box::new(Meddler {
        mode,
        held: None,
        count: 0,
    }));
    let link = LinkParams::new(10_000_000, SimDuration::from_micros(50), 64);
    sim.connect_sym(na, NIC_PORT, relay, PortId(0), link);
    sim.connect_sym(nb, NIC_PORT, relay, PortId(1), link);
    start_host(&mut sim, nb, SimTime::ZERO);
    start_host(&mut sim, na, SimTime::from_millis(1));
    sim.run_until(SimTime::from_secs(5));
    let frames_in = sim.node::<Host>(nb).core().stats().frames_in;
    let got = sim.node::<Host>(nb).app::<BigReceiver>(rx).got.clone();
    (got, frames_in)
}

fn expected(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i % 251) as u8).collect()
}

#[test]
fn small_datagram_is_not_fragmented() {
    let (got, frames) = run(1000, MeddleMode::Passthrough);
    assert_eq!(got, vec![expected(1000)]);
    assert_eq!(frames, 1);
}

#[test]
fn nfs_sized_datagram_crosses_in_fragments() {
    // 8 KB + UDP header → 6 fragments at a 1500-byte MTU.
    let (got, frames) = run(8192, MeddleMode::Passthrough);
    assert_eq!(got.len(), 1, "datagram not reassembled");
    assert_eq!(got[0], expected(8192));
    assert_eq!(frames, 6, "unexpected fragment count");
}

#[test]
fn reordered_fragments_still_reassemble() {
    let (got, _) = run(8192, MeddleMode::SwapPairs);
    assert_eq!(got.len(), 1, "reordering broke reassembly");
    assert_eq!(got[0], expected(8192));
}

#[test]
fn lost_fragment_drops_whole_datagram_cleanly() {
    for n in 1..=6 {
        let (got, _) = run(8192, MeddleMode::DropNth(n));
        assert!(
            got.is_empty(),
            "datagram delivered despite losing fragment {n}"
        );
    }
}

#[test]
fn max_size_datagram() {
    // Near the 64 KB IP limit: 44 fragments.
    let size = 60_000;
    let (got, frames) = run(size, MeddleMode::Passthrough);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].len(), size);
    assert_eq!(got[0], expected(size));
    assert!(frames > 40);
}
