//! Host-level edge cases: shim drop accounting, address filtering,
//! automatic ICMP echo response, and UDP to unbound ports.

use netsim::{LinkParams, SimRng, SimTime, Simulator};
use netstack::{
    start_host, App, AppEvent, Direction, Host, HostApi, HostConfig, LinkShim, ShimRelease,
    ShimVerdict, NIC_PORT,
};
use packet::{EtherHeader, EtherType, IcmpMessage, IpProtocol, Ipv4Header, MacAddr, UdpHeader};
use std::net::Ipv4Addr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Shim that drops everything.
struct BlackHole;
impl LinkShim for BlackHole {
    fn offer(&mut self, _d: Direction, _b: Vec<u8>, _n: SimTime, _r: &mut SimRng) -> ShimVerdict {
        ShimVerdict::Drop
    }
    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }
    fn collect_due(&mut self, _n: SimTime, _r: &mut SimRng) -> Vec<ShimRelease> {
        Vec::new()
    }
}

/// App that sends one ping at start and counts replies.
struct OnePing {
    dst: Ipv4Addr,
    replies: u32,
}
impl App for OnePing {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                api.icmp_listen();
                api.send_ping(self.dst, 1, 1, 64);
            }
            AppEvent::IcmpEchoReply { .. } => self.replies += 1,
            _ => {}
        }
    }
}

fn pair(with_shim: bool) -> (Simulator, netsim::NodeId, netsim::NodeId, netstack::AppId) {
    let mut a =
        Host::new(HostConfig::new("a", IP_A, MacAddr::local(1)).with_arp(IP_B, MacAddr::local(2)));
    if with_shim {
        a.set_shim(Box::new(BlackHole));
    }
    let app = a.add_app(Box::new(OnePing {
        dst: IP_B,
        replies: 0,
    }));
    let b =
        Host::new(HostConfig::new("b", IP_B, MacAddr::local(2)).with_arp(IP_A, MacAddr::local(1)));
    let mut sim = Simulator::new(1);
    let na = sim.add_node(Box::new(a));
    let nb = sim.add_node(Box::new(b));
    sim.connect_sym(na, NIC_PORT, nb, NIC_PORT, LinkParams::ethernet_10mbps());
    start_host(&mut sim, na, SimTime::ZERO);
    start_host(&mut sim, nb, SimTime::ZERO);
    (sim, na, nb, app)
}

#[test]
fn blackhole_shim_counts_outbound_drops() {
    let (mut sim, na, nb, app) = pair(true);
    sim.run_until(SimTime::from_secs(2));
    let a: &Host = sim.node(na);
    assert_eq!(a.app::<OnePing>(app).replies, 0);
    assert_eq!(a.core().stats().shim_dropped_out, 1);
    assert_eq!(a.core().stats().frames_out, 0, "drop must precede the wire");
    let b: &Host = sim.node(nb);
    assert_eq!(b.core().stats().frames_in, 0);
}

#[test]
fn icmp_echo_is_answered_automatically() {
    // Host b has no applications at all; its stack answers pings.
    let (mut sim, na, _nb, app) = pair(false);
    sim.run_until(SimTime::from_secs(2));
    let a: &Host = sim.node(na);
    assert_eq!(a.app::<OnePing>(app).replies, 1);
}

/// Two hosts with no applications at all (no background ping traffic).
fn quiet_pair() -> (Simulator, netsim::NodeId, netsim::NodeId) {
    let a =
        Host::new(HostConfig::new("a", IP_A, MacAddr::local(1)).with_arp(IP_B, MacAddr::local(2)));
    let b =
        Host::new(HostConfig::new("b", IP_B, MacAddr::local(2)).with_arp(IP_A, MacAddr::local(1)));
    let mut sim = Simulator::new(1);
    let na = sim.add_node(Box::new(a));
    let nb = sim.add_node(Box::new(b));
    sim.connect_sym(na, NIC_PORT, nb, NIC_PORT, LinkParams::ethernet_10mbps());
    start_host(&mut sim, na, SimTime::ZERO);
    start_host(&mut sim, nb, SimTime::ZERO);
    (sim, na, nb)
}

fn craft_udp(src: Ipv4Addr, dst: Ipv4Addr, dst_mac: MacAddr, dst_port: u16) -> Vec<u8> {
    let udp = UdpHeader {
        src_port: 9999,
        dst_port,
    }
    .emit(b"hello", src, dst);
    let ip = Ipv4Header {
        src,
        dst,
        protocol: IpProtocol::Udp,
        ttl: 64,
        ident: 7,
        total_len: 0,
        more_fragments: false,
        frag_offset: 0,
    }
    .emit(&udp);
    EtherHeader {
        dst: dst_mac,
        src: MacAddr::local(9),
        ethertype: EtherType::Ipv4,
    }
    .emit(&ip)
}

#[test]
fn frames_for_other_macs_and_ips_are_ignored() {
    let (mut sim, _na, nb) = quiet_pair();
    // Frame whose MAC matches host b but whose IP does not: parsed then
    // dropped at the IP layer, with no response traffic.
    let wrong_ip = craft_udp(IP_A, Ipv4Addr::new(10, 0, 0, 99), MacAddr::local(2), 53);
    // Frame for a different MAC entirely: ignored at the device layer.
    let wrong_mac = craft_udp(IP_A, IP_B, MacAddr::local(77), 53);
    for (i, frame) in [wrong_ip, wrong_mac].into_iter().enumerate() {
        sim.schedule_event(
            SimTime::from_millis(100 + i as u64),
            nb,
            netsim::EventKind::Deliver {
                port: NIC_PORT,
                frame: netsim::Frame::new(frame, SimTime::ZERO),
            },
        );
    }
    sim.run_until(SimTime::from_secs(1));
    let b: &Host = sim.node(nb);
    assert_eq!(b.core().stats().frames_in, 2);
    assert_eq!(b.core().stats().frames_out, 0, "must not respond");
    assert_eq!(b.core().stats().parse_errors, 0);
}

#[test]
fn udp_to_unbound_port_is_silently_dropped() {
    let (mut sim, _na, nb) = quiet_pair();
    let frame = craft_udp(IP_A, IP_B, MacAddr::local(2), 4242);
    sim.schedule_event(
        SimTime::from_millis(100),
        nb,
        netsim::EventKind::Deliver {
            port: NIC_PORT,
            frame: netsim::Frame::new(frame, SimTime::ZERO),
        },
    );
    sim.run_until(SimTime::from_secs(1));
    let b: &Host = sim.node(nb);
    assert_eq!(b.core().stats().frames_in, 1);
    assert_eq!(b.core().stats().frames_out, 0);
}

#[test]
fn corrupt_frames_count_as_parse_errors() {
    let (mut sim, _na, nb) = quiet_pair();
    let mut frame = craft_udp(IP_A, IP_B, MacAddr::local(2), 53);
    // Flip a bit inside the IP header so its checksum fails.
    frame[20] ^= 0xff;
    sim.schedule_event(
        SimTime::from_millis(100),
        nb,
        netsim::EventKind::Deliver {
            port: NIC_PORT,
            frame: netsim::Frame::new(frame, SimTime::ZERO),
        },
    );
    sim.run_until(SimTime::from_secs(1));
    let b: &Host = sim.node(nb);
    assert_eq!(b.core().stats().parse_errors, 1);
}

#[test]
fn broadcast_mac_frames_are_accepted() {
    let (mut sim, _na, nb) = quiet_pair();
    // Ping request delivered with broadcast destination MAC: host b must
    // still answer (our single-segment topologies rely on this for
    // unresolved ARP).
    let icmp = IcmpMessage::Echo {
        ident: 5,
        seq: 9,
        payload: vec![0u8; 16],
    }
    .emit();
    let ip = Ipv4Header {
        src: IP_A,
        dst: IP_B,
        protocol: IpProtocol::Icmp,
        ttl: 64,
        ident: 3,
        total_len: 0,
        more_fragments: false,
        frag_offset: 0,
    }
    .emit(&icmp);
    let frame = EtherHeader {
        dst: MacAddr::BROADCAST,
        src: MacAddr::local(1),
        ethertype: EtherType::Ipv4,
    }
    .emit(&ip);
    sim.schedule_event(
        SimTime::from_millis(100),
        nb,
        netsim::EventKind::Deliver {
            port: NIC_PORT,
            frame: netsim::Frame::new(frame, SimTime::ZERO),
        },
    );
    sim.run_until(SimTime::from_secs(1));
    let b: &Host = sim.node(nb);
    assert_eq!(b.core().stats().frames_out, 1, "echo reply expected");
}
