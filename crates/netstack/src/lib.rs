//! # netstack — a from-scratch simulated host protocol stack
//!
//! Every host in the reproduction runs this stack: a device layer with the
//! paper's two kernel hook points, IPv4 with real header processing, ICMP
//! echo (the tracing workload's carrier), UDP sockets (NFS-like RPC), and
//! a BSD-Reno TCP (FTP and Web benchmarks).
//!
//! The two hook points correspond exactly to the paper's kernel
//! extensions:
//!
//! * [`DeviceTap`] — trace *collection* hooks in the device input/output
//!   routines (§3.1.2); implemented by `tracekit`.
//! * [`LinkShim`] — the *modulation* layer between IP and Ethernet
//!   (§3.3); implemented by `modulate`.
//!
//! Applications implement [`App`] and act through [`HostApi`]; they are
//! oblivious to tracing and modulation, which is the transparency property
//! the paper's methodology requires.

#![warn(missing_docs)]

mod app;
mod config;
mod hooks;
mod host;
pub mod tcp;

pub use app::{App, AppEvent, AppId};
pub use config::{HostConfig, TcpConfig};
pub use hooks::{
    CountingTap, DeviceTap, Direction, LinkShim, PassthroughShim, ShimRelease, ShimVerdict,
};
pub use host::{Host, HostApi, HostCore, HostStats, NIC_PORT, START_TOKEN};
pub use tcp::{TcpHandle, TcpState};

use netsim::{EventKind, NodeId, SimTime, Simulator};

/// Schedule the start event for a host so its applications receive
/// [`AppEvent::Start`] at `at`.
pub fn start_host(sim: &mut Simulator, host: NodeId, at: SimTime) {
    sim.schedule_event(at, host, EventKind::Timer { token: START_TOKEN });
}
