//! The simulated host: a netsim [`Node`] containing the protocol stack
//! (device layer → optional shim → IP → ICMP/UDP/TCP → sockets → apps),
//! with the paper's two kernel hook points (device tap, link shim) and a
//! per-frame CPU pacing model.

use crate::app::{App, AppEvent, AppId};
use crate::config::HostConfig;
use crate::hooks::{DeviceTap, Direction, LinkShim, ShimRelease, ShimVerdict};
use crate::tcp::{ConnEvent, EngineOut, TcpEngine, TcpHandle, TcpState};
use netsim::{Context, EventKind, Frame, Node, PortId, SimDuration, SimRng, SimTime};
use packet::{EtherHeader, EtherType, IcmpMessage, IpProtocol, Ipv4Header, MacAddr, UdpHeader};
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Timer-token subsystem tags (top 8 bits).
const SUB_TCP: u64 = 1 << 56;
const SUB_APP: u64 = 2 << 56;
const SUB_SHIM: u64 = 3 << 56;
const SUB_TAP: u64 = 4 << 56;
const SUB_START: u64 = 5 << 56;
const SUB_TX: u64 = 6 << 56;
const SUB_RX: u64 = 7 << 56;

/// Token that kicks a host's applications off. Schedule it once:
/// `sim.schedule_event(t0, host, EventKind::Timer { token: START_TOKEN })`.
pub const START_TOKEN: u64 = SUB_START;

/// The NIC port every host uses.
pub const NIC_PORT: PortId = PortId(0);

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostStats {
    /// Frames received from the wire.
    pub frames_in: u64,
    /// Frames put on the wire.
    pub frames_out: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// Inbound frames dropped by the shim.
    pub shim_dropped_in: u64,
    /// Outbound frames dropped by the shim.
    pub shim_dropped_out: u64,
    /// Frames that failed to parse at some layer (coerced to losses).
    pub parse_errors: u64,
}

/// A partially reassembled fragmented datagram.
struct FragBuf {
    first_seen: SimTime,
    pieces: Vec<(usize, Vec<u8>)>,
    total: Option<usize>,
}

/// The protocol-stack state of a host, below the application layer.
pub struct HostCore {
    cfg: HostConfig,
    tcp: TcpEngine,
    udp_bound: HashMap<u16, AppId>,
    udp_next_ephemeral: u16,
    tcp_owner: HashMap<TcpHandle, AppId>,
    listener_owner: HashMap<u16, AppId>,
    icmp_app: Option<AppId>,
    tracer: Option<Box<dyn DeviceTap>>,
    shim: Option<Box<dyn LinkShim>>,
    pending: VecDeque<(AppId, AppEvent)>,
    ip_ident: u16,
    tx_queue: VecDeque<Vec<u8>>,
    tx_last_done: SimTime,
    rx_queue: VecDeque<Vec<u8>>,
    rx_last_done: SimTime,
    frags: HashMap<(Ipv4Addr, u16, u8), FragBuf>,
    tcp_timer_armed: Option<SimTime>,
    shim_timer_armed: Option<SimTime>,
    /// Reused release buffer for shim-timer service (one allocation for
    /// the life of the host instead of one per timer fire).
    shim_scratch: Vec<ShimRelease>,
    /// Device status poll cadence while a tracer is attached.
    pub poll_interval: SimDuration,
    stats: HostStats,
}

impl HostCore {
    fn new(cfg: HostConfig) -> Self {
        HostCore {
            tcp: TcpEngine::new(cfg.ip, cfg.tcp.clone()),
            cfg,
            udp_bound: HashMap::new(),
            udp_next_ephemeral: 50_000,
            tcp_owner: HashMap::new(),
            listener_owner: HashMap::new(),
            icmp_app: None,
            tracer: None,
            shim: None,
            pending: VecDeque::new(),
            ip_ident: 1,
            tx_queue: VecDeque::new(),
            tx_last_done: SimTime::ZERO,
            rx_queue: VecDeque::new(),
            rx_last_done: SimTime::ZERO,
            frags: HashMap::new(),
            tcp_timer_armed: None,
            shim_timer_armed: None,
            shim_scratch: Vec::new(),
            poll_interval: SimDuration::from_millis(100),
            stats: HostStats::default(),
        }
    }

    // ---------------- outbound path ----------------

    fn ip_output(
        &mut self,
        proto: IpProtocol,
        dst: Ipv4Addr,
        payload: &[u8],
        ctx: &mut Context<'_>,
    ) {
        let ident = self.ip_ident;
        self.ip_ident = self.ip_ident.wrapping_add(1);
        let dst_mac = self
            .cfg
            .arp
            .get(&dst)
            .copied()
            .unwrap_or(MacAddr::BROADCAST);
        let ether = EtherHeader {
            dst: dst_mac,
            src: self.cfg.mac,
            ethertype: EtherType::Ipv4,
        };
        let max_payload = self.cfg.mtu.saturating_sub(packet::IPV4_HEADER_LEN);
        if payload.len() <= max_payload {
            let header = Ipv4Header {
                src: self.cfg.ip,
                dst,
                protocol: proto,
                ttl: 64,
                ident,
                total_len: 0,
                more_fragments: false,
                frag_offset: 0,
            };
            let frame = ether.emit(&header.emit(payload));
            self.out_through_shim(frame, ctx);
            return;
        }
        // Fragment: every piece except the last carries a multiple of 8
        // bytes (the fragment-offset unit).
        let piece = max_payload & !7;
        let mut off = 0usize;
        while off < payload.len() {
            let end = (off + piece).min(payload.len());
            let header = Ipv4Header {
                src: self.cfg.ip,
                dst,
                protocol: proto,
                ttl: 64,
                ident,
                total_len: 0,
                more_fragments: end < payload.len(),
                frag_offset: (off / 8) as u16,
            };
            let frame = ether.emit(&header.emit(&payload[off..end]));
            self.out_through_shim(frame, ctx);
            off = end;
        }
    }

    fn out_through_shim(&mut self, frame: Vec<u8>, ctx: &mut Context<'_>) {
        if let Some(shim) = self.shim.as_mut() {
            match shim.offer(Direction::Outbound, frame, ctx.now(), ctx.rng()) {
                ShimVerdict::Pass(bytes) => self.device_tx(bytes, ctx),
                ShimVerdict::Drop => self.stats.shim_dropped_out += 1,
                ShimVerdict::Hold => {}
            }
            return;
        }
        self.device_tx(frame, ctx);
    }

    fn device_tx(&mut self, frame: Vec<u8>, ctx: &mut Context<'_>) {
        if self.cfg.cpu_per_frame.is_zero() && self.tx_queue.is_empty() {
            self.wire_send(frame, ctx);
            return;
        }
        let done = self.tx_last_done.max(ctx.now()) + self.cfg.cpu_per_frame;
        self.tx_last_done = done;
        self.tx_queue.push_back(frame);
        ctx.schedule_at(done, SUB_TX);
    }

    fn tx_fire(&mut self, ctx: &mut Context<'_>) {
        if let Some(frame) = self.tx_queue.pop_front() {
            self.wire_send(frame, ctx);
        }
    }

    fn wire_send(&mut self, frame: Vec<u8>, ctx: &mut Context<'_>) {
        if let Some(t) = self.tracer.as_mut() {
            t.on_frame(Direction::Outbound, &frame, ctx.now());
        }
        self.stats.frames_out += 1;
        self.stats.bytes_out += frame.len() as u64;
        ctx.send(NIC_PORT, Frame::new(frame, ctx.now()));
    }

    // ---------------- inbound path ----------------

    fn wire_input(&mut self, frame: Vec<u8>, ctx: &mut Context<'_>) {
        self.stats.frames_in += 1;
        self.stats.bytes_in += frame.len() as u64;
        if let Some(t) = self.tracer.as_mut() {
            t.on_frame(Direction::Inbound, &frame, ctx.now());
        }
        // Inbound host-CPU pacing (interrupt + protocol processing): the
        // receive path of a slow host is just as CPU-bound as transmit.
        if !self.cfg.cpu_per_frame.is_zero() || !self.rx_queue.is_empty() {
            let done = self.rx_last_done.max(ctx.now()) + self.cfg.cpu_per_frame;
            self.rx_last_done = done;
            self.rx_queue.push_back(frame);
            ctx.schedule_at(done, SUB_RX);
            return;
        }
        self.rx_deliver(frame, ctx);
    }

    fn rx_fire(&mut self, ctx: &mut Context<'_>) {
        if let Some(frame) = self.rx_queue.pop_front() {
            self.rx_deliver(frame, ctx);
        }
    }

    fn rx_deliver(&mut self, frame: Vec<u8>, ctx: &mut Context<'_>) {
        if let Some(shim) = self.shim.as_mut() {
            match shim.offer(Direction::Inbound, frame, ctx.now(), ctx.rng()) {
                ShimVerdict::Pass(bytes) => self.ip_input(&bytes, ctx),
                ShimVerdict::Drop => self.stats.shim_dropped_in += 1,
                ShimVerdict::Hold => {}
            }
            return;
        }
        self.ip_input(&frame, ctx);
    }

    fn ip_input(&mut self, frame: &[u8], ctx: &mut Context<'_>) {
        let Ok((eh, ip_bytes)) = EtherHeader::parse(frame) else {
            self.stats.parse_errors += 1;
            return;
        };
        if eh.dst != self.cfg.mac && !eh.dst.is_broadcast() {
            return; // not for us
        }
        if eh.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok((ih, l4)) = Ipv4Header::parse(ip_bytes) else {
            self.stats.parse_errors += 1;
            return;
        };
        if ih.dst != self.cfg.ip {
            return;
        }
        if ih.is_fragment() {
            let Some(whole) = self.reassemble(&ih, l4, ctx.now()) else {
                return; // waiting for more fragments (or dropped)
            };
            self.l4_input(ih.protocol, ih.src, &whole, ctx);
            return;
        }
        self.l4_input(ih.protocol, ih.src, l4, ctx);
    }

    /// Reassemble one fragment; returns the complete transport payload
    /// when this fragment finishes the datagram.
    fn reassemble(&mut self, ih: &Ipv4Header, data: &[u8], now: SimTime) -> Option<Vec<u8>> {
        const REASSEMBLY_TTL: SimDuration = SimDuration::from_secs(30);
        const MAX_DATAGRAMS: usize = 64;
        // Lazy expiry of stale partial datagrams.
        self.frags
            .retain(|_, v| now.since(v.first_seen) < REASSEMBLY_TTL);
        let key = (ih.src, ih.ident, u8::from(ih.protocol));
        if !self.frags.contains_key(&key) && self.frags.len() >= MAX_DATAGRAMS {
            self.stats.parse_errors += 1; // reassembly overflow counts as loss
            return None;
        }
        let entry = self.frags.entry(key).or_insert_with(|| FragBuf {
            first_seen: now,
            pieces: Vec::new(),
            total: None,
        });
        let off = ih.frag_offset as usize * 8;
        entry.pieces.push((off, data.to_vec()));
        if !ih.more_fragments {
            entry.total = Some(off + data.len());
        }
        let total = entry.total?;
        // Check contiguity 0..total.
        let mut pieces = entry.pieces.clone();
        pieces.sort_by_key(|&(o, _)| o);
        let mut have = 0usize;
        for (o, d) in &pieces {
            if *o > have {
                return None; // gap
            }
            have = have.max(o + d.len());
        }
        if have < total {
            return None;
        }
        // Complete: assemble and drop the entry.
        let mut out = vec![0u8; total];
        for (o, d) in pieces {
            let end = (o + d.len()).min(total);
            out[o..end].copy_from_slice(&d[..end - o]);
        }
        self.frags.remove(&key);
        Some(out)
    }

    fn l4_input(&mut self, protocol: IpProtocol, src: Ipv4Addr, l4: &[u8], ctx: &mut Context<'_>) {
        match protocol {
            IpProtocol::Icmp => self.icmp_input(src, l4, ctx),
            IpProtocol::Udp => self.udp_input(src, l4, ctx),
            IpProtocol::Tcp => {
                let mut out = EngineOut::default();
                let now = ctx.now();
                self.tcp.on_segment(src, l4, now, ctx.rng(), &mut out);
                self.tcp_flush(out, ctx);
            }
            IpProtocol::Other(_) => {}
        }
    }

    fn icmp_input(&mut self, src: Ipv4Addr, l4: &[u8], ctx: &mut Context<'_>) {
        let Ok(msg) = IcmpMessage::parse(l4) else {
            self.stats.parse_errors += 1;
            return;
        };
        match msg {
            IcmpMessage::Echo { .. } => {
                let reply = msg.reply().expect("echo always has a reply");
                self.ip_output(IpProtocol::Icmp, src, &reply.emit(), ctx);
            }
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                if let Some(app) = self.icmp_app {
                    self.pending.push_back((
                        app,
                        AppEvent::IcmpEchoReply {
                            from: src,
                            ident,
                            seq,
                            payload,
                        },
                    ));
                }
            }
            IcmpMessage::Other { .. } => {}
        }
    }

    fn udp_input(&mut self, src: Ipv4Addr, l4: &[u8], _ctx: &mut Context<'_>) {
        let Ok((uh, payload)) = UdpHeader::parse(l4, src, self.cfg.ip) else {
            self.stats.parse_errors += 1;
            return;
        };
        if let Some(&app) = self.udp_bound.get(&uh.dst_port) {
            self.pending.push_back((
                app,
                AppEvent::UdpDatagram {
                    port: uh.dst_port,
                    from: (src, uh.src_port),
                    data: payload.to_vec(),
                },
            ));
        }
        // No listener: a real stack would send ICMP port-unreachable; our
        // workloads never do this, so we silently drop.
    }

    fn tcp_flush(&mut self, out: EngineOut, ctx: &mut Context<'_>) {
        for (port, handle) in out.accepted {
            if let Some(&owner) = self.listener_owner.get(&port) {
                self.tcp_owner.insert(handle, owner);
                self.pending
                    .push_back((owner, AppEvent::TcpAccepted { port, conn: handle }));
            }
        }
        for (handle, ev) in out.events {
            let Some(&owner) = self.tcp_owner.get(&handle) else {
                continue;
            };
            let app_ev = match ev {
                ConnEvent::Connected => AppEvent::TcpConnected { conn: handle },
                ConnEvent::Data(data) => AppEvent::TcpData { conn: handle, data },
                ConnEvent::SendSpace => AppEvent::TcpSendSpace { conn: handle },
                ConnEvent::PeerClosed => AppEvent::TcpPeerClosed { conn: handle },
                ConnEvent::Closed => {
                    self.tcp_owner.remove(&handle);
                    AppEvent::TcpClosed { conn: handle }
                }
                ConnEvent::Reset(reason) => {
                    self.tcp_owner.remove(&handle);
                    AppEvent::TcpReset {
                        conn: handle,
                        reason,
                    }
                }
            };
            self.pending.push_back((owner, app_ev));
        }
        for (dst, seg) in out.segments {
            self.ip_output(IpProtocol::Tcp, dst, &seg, ctx);
        }
    }

    // ---------------- timers ----------------

    fn tcp_timer(&mut self, ctx: &mut Context<'_>) {
        self.tcp_timer_armed = None;
        let mut out = EngineOut::default();
        self.tcp.on_timer(ctx.now(), &mut out);
        self.tcp_flush(out, ctx);
    }

    fn shim_timer(&mut self, ctx: &mut Context<'_>) {
        self.shim_timer_armed = None;
        if self.shim.is_none() {
            return;
        }
        let mut due = std::mem::take(&mut self.shim_scratch);
        due.clear();
        self.shim
            .as_mut()
            .expect("checked above")
            .collect_due_into(ctx.now(), ctx.rng(), &mut due);
        for rel in due.drain(..) {
            match rel.dir {
                Direction::Outbound => self.device_tx(rel.bytes, ctx),
                Direction::Inbound => self.ip_input(&rel.bytes, ctx),
            }
        }
        self.shim_scratch = due;
    }

    fn tap_poll(&mut self, ctx: &mut Context<'_>) {
        if let Some(t) = self.tracer.as_mut() {
            t.on_poll(ctx.now());
            let iv = self.poll_interval;
            ctx.schedule_in(iv, SUB_TAP);
        }
    }

    /// Re-arm the TCP and shim timers after any state change.
    fn rearm(&mut self, ctx: &mut Context<'_>) {
        if let Some(d) = self.tcp.next_deadline() {
            let need = match self.tcp_timer_armed {
                None => true,
                Some(armed) => d < armed,
            };
            if need {
                ctx.schedule_at(d, SUB_TCP);
                self.tcp_timer_armed = Some(d);
            }
        }
        if let Some(shim) = self.shim.as_ref() {
            if let Some(w) = shim.next_wakeup() {
                let need = match self.shim_timer_armed {
                    None => true,
                    Some(armed) => w < armed,
                };
                if need {
                    ctx.schedule_at(w, SUB_SHIM);
                    self.shim_timer_armed = Some(w);
                }
            }
        }
    }

    // ---------------- accessors ----------------

    /// Host counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The TCP engine (tests and diagnostics).
    pub fn tcp(&self) -> &TcpEngine {
        &self.tcp
    }
}

/// A complete simulated host node: stack plus applications.
pub struct Host {
    core: HostCore,
    apps: Vec<Option<Box<dyn App>>>,
}

impl Host {
    /// Create a host from its configuration.
    pub fn new(cfg: HostConfig) -> Self {
        Host {
            core: HostCore::new(cfg),
            apps: Vec::new(),
        }
    }

    /// Register an application; returns its id.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        self.apps.push(Some(app));
        AppId(self.apps.len() - 1)
    }

    /// Attach a device tap (trace collection hook).
    pub fn set_tracer(&mut self, tap: Box<dyn DeviceTap>) {
        self.core.tracer = Some(tap);
    }

    /// Attach a link shim (modulation layer hook).
    pub fn set_shim(&mut self, shim: Box<dyn LinkShim>) {
        self.core.shim = Some(shim);
    }

    /// Borrow the stack core.
    pub fn core(&self) -> &HostCore {
        &self.core
    }

    /// Downcast-borrow an application.
    pub fn app<T: App>(&self, id: AppId) -> &T {
        let app = self.apps[id.0].as_deref().expect("app not in dispatch");
        (app as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("app type mismatch")
    }

    /// Downcast-borrow an application mutably.
    pub fn app_mut<T: App>(&mut self, id: AppId) -> &mut T {
        let app = self.apps[id.0].as_deref_mut().expect("app not in dispatch");
        (app as &mut dyn std::any::Any)
            .downcast_mut::<T>()
            .expect("app type mismatch")
    }

    /// Downcast-borrow the tracer.
    pub fn tracer<T: DeviceTap>(&self) -> &T {
        let t = self.core.tracer.as_deref().expect("no tracer attached");
        (t as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("tracer type mismatch")
    }

    /// Downcast-borrow the shim.
    pub fn shim<T: LinkShim>(&self) -> &T {
        let s = self.core.shim.as_deref().expect("no shim attached");
        (s as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("shim type mismatch")
    }

    /// Downcast-borrow the shim mutably.
    pub fn shim_mut<T: LinkShim>(&mut self) -> &mut T {
        let s = self.core.shim.as_deref_mut().expect("no shim attached");
        (s as &mut dyn std::any::Any)
            .downcast_mut::<T>()
            .expect("shim type mismatch")
    }

    fn drain_pending(&mut self, ctx: &mut Context<'_>) {
        let mut guard = 0u32;
        while let Some((app_id, ev)) = self.core.pending.pop_front() {
            guard += 1;
            assert!(guard < 1_000_000, "application event storm");
            let Some(mut app) = self.apps.get_mut(app_id.0).and_then(Option::take) else {
                continue;
            };
            {
                let mut api = HostApi {
                    core: &mut self.core,
                    ctx,
                    app: app_id,
                };
                app.on_event(ev, &mut api);
            }
            self.apps[app_id.0] = Some(app);
        }
    }
}

impl Node for Host {
    fn on_event(&mut self, event: EventKind, ctx: &mut Context<'_>) {
        match event {
            EventKind::Deliver { frame, .. } => {
                self.core.wire_input(frame.data, ctx);
            }
            EventKind::Timer { token } => match token & (0xff << 56) {
                SUB_TCP => self.core.tcp_timer(ctx),
                SUB_APP => {
                    let app = AppId(((token >> 32) & 0xff_ffff) as usize);
                    let t32 = (token & 0xffff_ffff) as u32;
                    self.core
                        .pending
                        .push_back((app, AppEvent::Timer { token: t32 }));
                }
                SUB_SHIM => self.core.shim_timer(ctx),
                SUB_TAP => self.core.tap_poll(ctx),
                SUB_START => {
                    for i in 0..self.apps.len() {
                        self.core.pending.push_back((AppId(i), AppEvent::Start));
                    }
                    if self.core.tracer.is_some() {
                        self.core.tap_poll(ctx);
                    }
                }
                SUB_TX => self.core.tx_fire(ctx),
                SUB_RX => self.core.rx_fire(ctx),
                _ => {}
            },
            EventKind::Message { .. } => {}
        }
        self.drain_pending(ctx);
        self.core.rearm(ctx);
    }

    fn name(&self) -> &str {
        &self.core.cfg.name
    }
}

/// The capability handle applications use to act on their host.
pub struct HostApi<'a, 'b> {
    core: &'a mut HostCore,
    ctx: &'a mut Context<'b>,
    app: AppId,
}

impl HostApi<'_, '_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This host's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.core.cfg.ip
    }

    /// Deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.ctx.rng()
    }

    /// The id of the calling application.
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// Set an application timer; fires as `AppEvent::Timer { token }`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u32) {
        let app_bits = (self.app.0 as u64 & 0xff_ffff) << 32;
        self.ctx
            .schedule_in(delay, SUB_APP | app_bits | token as u64);
    }

    // ---- UDP ----

    /// Bind a UDP port to this application. Returns false if taken.
    pub fn udp_bind(&mut self, port: u16) -> bool {
        if self.core.udp_bound.contains_key(&port) {
            return false;
        }
        self.core.udp_bound.insert(port, self.app);
        true
    }

    /// Bind an unused ephemeral UDP port and return it.
    pub fn udp_bind_ephemeral(&mut self) -> u16 {
        for _ in 0..15_000 {
            let p = self.core.udp_next_ephemeral;
            self.core.udp_next_ephemeral = if p >= 64_000 { 50_000 } else { p + 1 };
            if !self.core.udp_bound.contains_key(&p) {
                self.core.udp_bound.insert(p, self.app);
                return p;
            }
        }
        panic!("UDP ephemeral port space exhausted");
    }

    /// Send a UDP datagram from `src_port` (which should be bound).
    pub fn udp_send(&mut self, src_port: u16, dst: (Ipv4Addr, u16), payload: &[u8]) {
        let bytes = UdpHeader {
            src_port,
            dst_port: dst.1,
        }
        .emit(payload, self.core.cfg.ip, dst.0);
        self.core
            .ip_output(IpProtocol::Udp, dst.0, &bytes, self.ctx);
    }

    // ---- TCP ----

    /// Listen for connections on `port`; accepted connections are owned by
    /// this application.
    pub fn tcp_listen(&mut self, port: u16) {
        self.core.tcp.listen(port);
        self.core.listener_owner.insert(port, self.app);
    }

    /// Open a connection; completion arrives as `TcpConnected`.
    pub fn tcp_connect(&mut self, dst: (Ipv4Addr, u16)) -> TcpHandle {
        let mut out = EngineOut::default();
        let now = self.ctx.now();
        let handle = self.core.tcp.connect(dst, now, self.ctx.rng(), &mut out);
        self.core.tcp_owner.insert(handle, self.app);
        self.core.tcp_flush(out, self.ctx);
        handle
    }

    /// Queue data on a connection; returns bytes accepted.
    pub fn tcp_send(&mut self, conn: TcpHandle, data: &[u8]) -> usize {
        let mut out = EngineOut::default();
        let n = self.core.tcp.send(conn, data, self.ctx.now(), &mut out);
        self.core.tcp_flush(out, self.ctx);
        n
    }

    /// Free space in the connection's send buffer.
    pub fn tcp_send_space(&self, conn: TcpHandle) -> usize {
        self.core.tcp.send_space(conn)
    }

    /// Connection state, if alive.
    pub fn tcp_state(&self, conn: TcpHandle) -> Option<TcpState> {
        self.core.tcp.state(conn)
    }

    /// Graceful close.
    pub fn tcp_close(&mut self, conn: TcpHandle) {
        let mut out = EngineOut::default();
        self.core.tcp.close(conn, self.ctx.now(), &mut out);
        self.core.tcp_flush(out, self.ctx);
    }

    /// Abortive close.
    pub fn tcp_abort(&mut self, conn: TcpHandle) {
        let mut out = EngineOut::default();
        self.core.tcp.abort(conn, &mut out);
        self.core.tcp_flush(out, self.ctx);
    }

    // ---- ICMP ----

    /// Route future echo replies to this application.
    pub fn icmp_listen(&mut self) {
        self.core.icmp_app = Some(self.app);
    }

    /// Send an ICMP echo request whose payload starts with the current
    /// time (nanoseconds, big-endian) padded with zeros to `size` bytes —
    /// the paper's ping workload format. `size` is clamped to ≥ 8.
    pub fn send_ping(&mut self, dst: Ipv4Addr, ident: u16, seq: u16, size: usize) {
        let size = size.max(8);
        let mut payload = vec![0u8; size];
        payload[..8].copy_from_slice(&self.ctx.now().as_nanos().to_be_bytes());
        let msg = IcmpMessage::Echo {
            ident,
            seq,
            payload,
        };
        self.core
            .ip_output(IpProtocol::Icmp, dst, &msg.emit(), self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkParams, Simulator};

    /// Ping app: sends `count` echoes one second apart, records RTTs.
    struct Pinger {
        dst: Ipv4Addr,
        count: u16,
        sent: u16,
        rtts: Vec<(u16, SimDuration)>,
    }

    impl App for Pinger {
        fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
            match event {
                AppEvent::Start => {
                    api.icmp_listen();
                    api.set_timer(SimDuration::ZERO, 0);
                }
                AppEvent::Timer { .. } if self.sent < self.count => {
                    api.send_ping(self.dst, 77, self.sent, 64);
                    self.sent += 1;
                    api.set_timer(SimDuration::from_secs(1), 0);
                }
                AppEvent::IcmpEchoReply { seq, payload, .. } => {
                    let mut ts = [0u8; 8];
                    ts.copy_from_slice(&payload[..8]);
                    let sent = SimTime::from_nanos(u64::from_be_bytes(ts));
                    self.rtts.push((seq, api.now().since(sent)));
                }
                _ => {}
            }
        }
    }

    /// Bulk TCP sender: connects at start, pushes `total` bytes, closes.
    struct BulkSender {
        dst: (Ipv4Addr, u16),
        total: usize,
        sent: usize,
        conn: Option<TcpHandle>,
        finished_at: Option<SimTime>,
    }

    impl BulkSender {
        fn pump(&mut self, api: &mut HostApi<'_, '_>) {
            let Some(conn) = self.conn else { return };
            while self.sent < self.total {
                let chunk = (self.total - self.sent).min(8192);
                let n = api.tcp_send(conn, &vec![0xAB; chunk]);
                self.sent += n;
                if n < chunk {
                    break; // wait for SendSpace
                }
            }
            if self.sent >= self.total {
                api.tcp_close(conn);
            }
        }
    }

    impl App for BulkSender {
        fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
            match event {
                AppEvent::Start => {
                    self.conn = Some(api.tcp_connect(self.dst));
                }
                AppEvent::TcpConnected { .. } | AppEvent::TcpSendSpace { .. } => self.pump(api),
                AppEvent::TcpClosed { .. } => self.finished_at = Some(api.now()),
                _ => {}
            }
        }
    }

    /// Sink server: listens, counts bytes, closes when peer closes.
    struct Sink {
        port: u16,
        received: usize,
        peer_closed_at: Option<SimTime>,
    }

    impl App for Sink {
        fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
            match event {
                AppEvent::Start => api.tcp_listen(self.port),
                AppEvent::TcpData { data, .. } => self.received += data.len(),
                AppEvent::TcpPeerClosed { conn } => {
                    self.peer_closed_at = Some(api.now());
                    api.tcp_close(conn);
                }
                _ => {}
            }
        }
    }

    fn two_hosts(
        cpu_a: SimDuration,
        cpu_b: SimDuration,
    ) -> (Simulator, netsim::NodeId, netsim::NodeId) {
        let ip_a = Ipv4Addr::new(10, 0, 0, 1);
        let ip_b = Ipv4Addr::new(10, 0, 0, 2);
        let a = Host::new(
            HostConfig::new("a", ip_a, MacAddr::local(1))
                .with_cpu(cpu_a)
                .with_arp(ip_b, MacAddr::local(2)),
        );
        let b = Host::new(
            HostConfig::new("b", ip_b, MacAddr::local(2))
                .with_cpu(cpu_b)
                .with_arp(ip_a, MacAddr::local(1)),
        );
        let mut sim = Simulator::new(7);
        let na = sim.add_node(Box::new(a));
        let nb = sim.add_node(Box::new(b));
        sim.connect_sym(na, NIC_PORT, nb, NIC_PORT, LinkParams::ethernet_10mbps());
        (sim, na, nb)
    }

    fn start(sim: &mut Simulator, node: netsim::NodeId) {
        sim.schedule_event(SimTime::ZERO, node, EventKind::Timer { token: START_TOKEN });
    }

    #[test]
    fn ping_round_trip_times() {
        let (mut sim, na, nb) = two_hosts(SimDuration::ZERO, SimDuration::ZERO);
        let app = {
            let host: &mut Host = sim.node_mut(na);
            host.add_app(Box::new(Pinger {
                dst: Ipv4Addr::new(10, 0, 0, 2),
                count: 5,
                sent: 0,
                rtts: Vec::new(),
            }))
        };
        start(&mut sim, na);
        start(&mut sim, nb);
        sim.run(100_000);
        let host: &Host = sim.node(na);
        let pinger: &Pinger = host.app(app);
        assert_eq!(pinger.rtts.len(), 5);
        // 98-byte echo frame at 10 Mb/s ≈ 78.4 us each way + 2×50 us
        // propagation ≈ 257 us RTT.
        for (_, rtt) in &pinger.rtts {
            let us = rtt.as_secs_f64() * 1e6;
            assert!((200.0..400.0).contains(&us), "rtt {us} us");
        }
    }

    #[test]
    fn tcp_bulk_transfer_completes_at_plausible_rate() {
        let (mut sim, na, nb) = two_hosts(SimDuration::ZERO, SimDuration::ZERO);
        let total = 1_000_000usize;
        let (sender_app, sink_app);
        {
            let host: &mut Host = sim.node_mut(na);
            sender_app = host.add_app(Box::new(BulkSender {
                dst: (Ipv4Addr::new(10, 0, 0, 2), 5001),
                total,
                sent: 0,
                conn: None,
                finished_at: None,
            }));
        }
        {
            let host: &mut Host = sim.node_mut(nb);
            sink_app = host.add_app(Box::new(Sink {
                port: 5001,
                received: 0,
                peer_closed_at: None,
            }));
        }
        start(&mut sim, nb);
        start(&mut sim, na);
        sim.run(10_000_000);
        let done = sim
            .node::<Host>(nb)
            .app::<Sink>(sink_app)
            .peer_closed_at
            .expect("transfer completed");
        assert_eq!(sim.node::<Host>(nb).app::<Sink>(sink_app).received, total);
        // 1 MB over 10 Mb/s with headers: ideal ≈ 0.84 s. Allow slack for
        // slow-start and delayed ACKs but require within 2.5x of wire rate.
        let secs = done.as_secs_f64();
        assert!(secs > 0.8, "impossibly fast: {secs}");
        assert!(secs < 2.1, "too slow: {secs}");
        let sender = sim.node::<Host>(na).app::<BulkSender>(sender_app);
        assert!(sender.finished_at.is_some());
    }

    #[test]
    fn cpu_pacing_limits_throughput() {
        // 2 ms per frame ≈ 500 frames/s ≈ 730 KB/s of MSS data: 1 MB is
        // ~685 data frames ≈ 1.37 s minimum even though the wire is fast.
        let (mut sim, na, nb) = two_hosts(SimDuration::from_millis(2), SimDuration::ZERO);
        let total = 1_000_000usize;
        {
            let host: &mut Host = sim.node_mut(na);
            host.add_app(Box::new(BulkSender {
                dst: (Ipv4Addr::new(10, 0, 0, 2), 5001),
                total,
                sent: 0,
                conn: None,
                finished_at: None,
            }));
        }
        let sink_app = {
            let host: &mut Host = sim.node_mut(nb);
            host.add_app(Box::new(Sink {
                port: 5001,
                received: 0,
                peer_closed_at: None,
            }))
        };
        start(&mut sim, nb);
        start(&mut sim, na);
        sim.run(50_000_000);
        let sink = sim.node::<Host>(nb).app::<Sink>(sink_app);
        assert_eq!(sink.received, total);
        let secs = sink.peer_closed_at.unwrap().as_secs_f64();
        assert!(secs > 1.3, "CPU pacing not applied: {secs}");
    }

    #[test]
    fn udp_echo_between_hosts() {
        struct UdpEcho {
            port: u16,
        }
        impl App for UdpEcho {
            fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
                match event {
                    AppEvent::Start => {
                        api.udp_bind(self.port);
                    }
                    AppEvent::UdpDatagram { from, data, .. } => {
                        api.udp_send(self.port, from, &data);
                    }
                    _ => {}
                }
            }
        }
        struct UdpClient {
            dst: (Ipv4Addr, u16),
            port: u16,
            got: Vec<Vec<u8>>,
        }
        impl App for UdpClient {
            fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
                match event {
                    AppEvent::Start => {
                        self.port = api.udp_bind_ephemeral();
                        api.udp_send(self.port, self.dst, b"marco");
                    }
                    AppEvent::UdpDatagram { data, .. } => self.got.push(data),
                    _ => {}
                }
            }
        }
        let (mut sim, na, nb) = two_hosts(SimDuration::ZERO, SimDuration::ZERO);
        let client_app = {
            let host: &mut Host = sim.node_mut(na);
            host.add_app(Box::new(UdpClient {
                dst: (Ipv4Addr::new(10, 0, 0, 2), 7),
                port: 0,
                got: Vec::new(),
            }))
        };
        {
            let host: &mut Host = sim.node_mut(nb);
            host.add_app(Box::new(UdpEcho { port: 7 }));
        }
        start(&mut sim, nb);
        start(&mut sim, na);
        sim.run(10_000);
        let client = sim.node::<Host>(na).app::<UdpClient>(client_app);
        assert_eq!(client.got, vec![b"marco".to_vec()]);
    }

    #[test]
    fn counting_tap_sees_all_frames() {
        use crate::hooks::CountingTap;
        let (mut sim, na, nb) = two_hosts(SimDuration::ZERO, SimDuration::ZERO);
        {
            let host: &mut Host = sim.node_mut(na);
            host.set_tracer(Box::new(CountingTap::default()));
            host.add_app(Box::new(Pinger {
                dst: Ipv4Addr::new(10, 0, 0, 2),
                count: 3,
                sent: 0,
                rtts: Vec::new(),
            }));
        }
        start(&mut sim, na);
        start(&mut sim, nb);
        sim.run(100_000);
        let host: &Host = sim.node(na);
        let tap: &CountingTap = host.tracer();
        assert_eq!(tap.outbound.0, 3);
        assert_eq!(tap.inbound.0, 3);
        assert!(tap.polls > 0);
        assert_eq!(host.core().stats().frames_out, 3);
        assert_eq!(host.core().stats().frames_in, 3);
    }
}
