//! The two kernel extension points the paper adds to the protocol stack:
//!
//! * a **device tap** in the input/output routines of the network device —
//!   this is where trace *collection* hooks in (§3.1.2);
//! * a **link shim** between the IP layer and the device — this is where
//!   the *modulation* layer sits (§3.3).
//!
//! Both are traits so that `tracekit` and `modulate` plug into the stack
//! without the stack depending on them.

use netsim::{SimRng, SimTime};
use std::any::Any;

/// Direction of a frame relative to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Leaving the host.
    Outbound,
    /// Arriving at the host.
    Inbound,
}

/// Observer invoked for every frame crossing the device boundary, plus a
/// periodic poll for device status sampling (signal level etc.).
pub trait DeviceTap: Any + Send {
    /// A frame passed the device input/output routine.
    fn on_frame(&mut self, dir: Direction, bytes: &[u8], now: SimTime);

    /// Called at the host's device-poll cadence while tracing is enabled.
    fn on_poll(&mut self, _now: SimTime) {}
}

/// What the shim decided to do with a frame offered to it.
#[derive(Debug)]
pub enum ShimVerdict {
    /// Forward immediately; ownership of the (possibly modified) frame
    /// returns to the host.
    Pass(Vec<u8>),
    /// Silently discard.
    Drop,
    /// The shim has queued the frame and will release it from
    /// [`LinkShim::collect_due`] at or after [`LinkShim::next_wakeup`].
    Hold,
}

/// A frame released by the shim after a hold.
#[derive(Debug)]
pub struct ShimRelease {
    /// Which side of the stack the frame continues toward.
    pub dir: Direction,
    /// The frame bytes.
    pub bytes: Vec<u8>,
}

/// A packet-processing layer between IP and the device. The host offers it
/// every frame in both directions; held frames are re-injected when the
/// host's shim timer fires.
pub trait LinkShim: Any + Send {
    /// Offer a frame traveling in `dir`. `Hold` transfers ownership into
    /// the shim's internal queue.
    fn offer(
        &mut self,
        dir: Direction,
        bytes: Vec<u8>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ShimVerdict;

    /// Earliest instant at which a held frame (or internal bookkeeping)
    /// needs service, if any. The host keeps a timer armed for this.
    fn next_wakeup(&self) -> Option<SimTime>;

    /// Remove and return every frame due at or before `now`, in order.
    fn collect_due(&mut self, now: SimTime, rng: &mut SimRng) -> Vec<ShimRelease>;

    /// Like [`collect_due`](LinkShim::collect_due) but appending into a
    /// caller-owned buffer, so a host servicing its shim timer every
    /// tick can reuse one allocation. The default forwards to
    /// `collect_due`; shims with a batch-drain fast path override it.
    fn collect_due_into(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<ShimRelease>) {
        out.extend(self.collect_due(now, rng));
    }
}

/// A shim that passes everything through — useful as a baseline and in
/// tests.
#[derive(Debug, Default)]
pub struct PassthroughShim;

impl LinkShim for PassthroughShim {
    fn offer(
        &mut self,
        _dir: Direction,
        bytes: Vec<u8>,
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ShimVerdict {
        ShimVerdict::Pass(bytes)
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }

    fn collect_due(&mut self, _now: SimTime, _rng: &mut SimRng) -> Vec<ShimRelease> {
        Vec::new()
    }
}

/// A tap that counts frames and bytes per direction — useful baseline and
/// test double.
#[derive(Debug, Default)]
pub struct CountingTap {
    /// Outbound (frames, bytes).
    pub outbound: (u64, u64),
    /// Inbound (frames, bytes).
    pub inbound: (u64, u64),
    /// Number of polls observed.
    pub polls: u64,
}

impl DeviceTap for CountingTap {
    fn on_frame(&mut self, dir: Direction, bytes: &[u8], _now: SimTime) {
        let slot = match dir {
            Direction::Outbound => &mut self.outbound,
            Direction::Inbound => &mut self.inbound,
        };
        slot.0 += 1;
        slot.1 += bytes.len() as u64;
    }

    fn on_poll(&mut self, _now: SimTime) {
        self.polls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tap_counts() {
        let mut tap = CountingTap::default();
        tap.on_frame(Direction::Outbound, &[0u8; 100], SimTime::ZERO);
        tap.on_frame(Direction::Inbound, &[0u8; 40], SimTime::ZERO);
        tap.on_frame(Direction::Inbound, &[0u8; 60], SimTime::ZERO);
        tap.on_poll(SimTime::ZERO);
        assert_eq!(tap.outbound, (1, 100));
        assert_eq!(tap.inbound, (2, 100));
        assert_eq!(tap.polls, 1);
    }

    #[test]
    fn passthrough_never_holds() {
        let mut shim = PassthroughShim;
        let mut rng = SimRng::seed_from_u64(1);
        match shim.offer(Direction::Outbound, vec![1, 2, 3], SimTime::ZERO, &mut rng) {
            ShimVerdict::Pass(bytes) => assert_eq!(bytes, vec![1, 2, 3]),
            other => panic!("expected Pass, got {other:?}"),
        }
        assert!(shim.next_wakeup().is_none());
        assert!(shim.collect_due(SimTime::MAX, &mut rng).is_empty());
    }
}
