//! Jacobson/Karels RTT estimation with Karn's algorithm and exponential
//! backoff — the retransmission-timeout machinery of a BSD Reno stack.

use crate::config::TcpConfig;
use netsim::SimDuration;

/// Smoothed RTT state for one connection.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT (None until the first sample).
    srtt: Option<f64>,
    /// RTT variation, seconds.
    rttvar: f64,
    /// Current backoff multiplier (doubles on each RTO, resets on ACK).
    backoff: u32,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
}

impl RttEstimator {
    /// Estimator with the connection's configured bounds.
    pub fn new(cfg: &TcpConfig) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            backoff: 0,
            min_rto: cfg.min_rto,
            max_rto: cfg.max_rto,
            initial_rto: cfg.initial_rto,
        }
    }

    /// Incorporate a new RTT measurement (from an un-retransmitted
    /// segment, per Karn's algorithm — the caller enforces that).
    pub fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                // RFC 6298 initialization.
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                const ALPHA: f64 = 1.0 / 8.0;
                const BETA: f64 = 1.0 / 4.0;
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        self.backoff = 0;
    }

    /// Double the timeout after a retransmission timeout fires.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(12);
    }

    /// Reset backoff (on any forward progress).
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial_rto,
            Some(srtt) => {
                let rto = srtt + (4.0 * self.rttvar).max(0.010);
                SimDuration::from_secs_f64(rto)
            }
        };
        let base = base.max(self.min_rto);
        let scaled = base * (1u64 << self.backoff.min(12));
        scaled.min(self.max_rto)
    }

    /// Smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(&TcpConfig::default())
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = est();
        assert_eq!(e.rto(), SimDuration::from_secs(3));
        assert!(e.srtt().is_none());
    }

    #[test]
    fn first_sample_sets_srtt() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let srtt = e.srtt().unwrap();
        assert_eq!(srtt, SimDuration::from_millis(100));
        // rto = srtt + 4*rttvar = 100 + 4*50 = 300ms, clamped to min 500ms.
        assert_eq!(e.rto(), SimDuration::from_millis(500));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!((srtt - 80.0).abs() < 1.0, "srtt {srtt}");
        // Variance decays toward zero so RTO approaches the floor.
        assert_eq!(e.rto(), SimDuration::from_millis(500));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.sample(SimDuration::from_secs(1));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), base * 2);
        e.on_timeout();
        assert_eq!(e.rto(), base * 4);
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(64)); // max_rto clamp
        e.reset_backoff();
        assert_eq!(e.rto(), base);
    }

    #[test]
    fn sample_resets_backoff() {
        let mut e = est();
        e.sample(SimDuration::from_secs(1));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), base * 2);
        e.sample(SimDuration::from_secs(1));
        // Backoff cleared; RTO back to (shrinking-variance) base range.
        assert!(e.rto() <= base);
    }

    #[test]
    fn high_variance_raises_rto() {
        let mut e = est();
        for i in 0..20 {
            let ms = if i % 2 == 0 { 50 } else { 950 };
            e.sample(SimDuration::from_millis(ms));
        }
        assert!(e.rto() > SimDuration::from_secs(1), "rto {}", e.rto());
    }
}
