//! A single TCP connection: BSD-Reno congestion control, Jacobson RTO,
//! delayed ACKs, fast retransmit/recovery, and the full open/close state
//! machine. This is the transport whose end-to-end dynamics the paper's
//! FTP and Web benchmarks exercise.

use super::reasm::{seq_le, seq_lt, Reassembly};
use super::rtt::RttEstimator;
use crate::config::TcpConfig;
use netsim::{SimDuration, SimTime};
use packet::{TcpFlags, TcpHeader};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Connection states (RFC 793).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acked.
    FinWait1,
    /// Our FIN acked; awaiting peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Passive close: our FIN sent after CloseWait.
    LastAck,
    /// Simultaneous close.
    Closing,
    /// Both FINs exchanged; draining stray segments.
    TimeWait,
    /// Fully closed; ready to be reaped.
    Closed,
}

/// Events a connection raises toward the owning application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnEvent {
    /// Three-way handshake completed.
    Connected,
    /// In-order data arrived.
    Data(Vec<u8>),
    /// Send buffer has space again after being full.
    SendSpace,
    /// Peer sent FIN and all its data has been delivered.
    PeerClosed,
    /// Connection fully closed (after our close completed or TIME-WAIT
    /// expired).
    Closed,
    /// Connection aborted: peer RST, or retransmission limit exceeded.
    Reset(&'static str),
}

/// Segments and events produced while processing an input.
#[derive(Debug, Default)]
pub struct Out {
    /// Segments to transmit: header plus payload (ports already filled
    /// in; the engine adds the IP layer).
    pub segs: Vec<(TcpHeader, Vec<u8>)>,
    /// Events for the owning application.
    pub events: Vec<ConnEvent>,
}

impl Out {
    fn seg(&mut self, h: TcpHeader, p: Vec<u8>) {
        self.segs.push((h, p));
    }
    fn ev(&mut self, e: ConnEvent) {
        self.events.push(e);
    }
}

/// One TCP connection.
#[derive(Debug)]
pub struct TcpConn {
    cfg: TcpConfig,
    state: TcpState,
    local_port: u16,
    /// Peer address, used by the engine to build the IP header.
    pub remote: (Ipv4Addr, u16),

    // --- send state ---
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    cwnd: usize,
    ssthresh: usize,
    mss: usize,
    /// Bytes accepted from the app but not yet transmitted.
    send_q: VecDeque<u8>,
    /// Bytes transmitted but unacknowledged; front is sequence `snd_una`.
    rtx_q: VecDeque<u8>,
    fin_queued: bool,
    fin_sent: bool,
    dup_acks: u32,
    in_fast_recovery: bool,
    rtt: RttEstimator,
    /// (sequence that must be acked, send time) for the one timed segment.
    rtt_sample: Option<(u32, SimTime)>,
    retries: u32,
    app_blocked: bool,

    // --- receive state ---
    rcv_nxt: u32,
    reasm: Reassembly,
    fin_rcvd_seq: Option<u32>,
    peer_closed_reported: bool,
    segs_since_ack: u32,

    // --- timers (absolute deadlines) ---
    rtx_deadline: Option<SimTime>,
    delack_deadline: Option<SimTime>,
    timewait_deadline: Option<SimTime>,

    // --- counters for diagnostics and tests ---
    /// Total payload bytes retransmitted.
    pub retransmitted_bytes: u64,
    /// Number of fast retransmits triggered.
    pub fast_retransmits: u64,
    /// Number of RTO firings.
    pub timeouts: u64,
}

impl TcpConn {
    fn new(cfg: TcpConfig, local_port: u16, remote: (Ipv4Addr, u16), iss: u32) -> Self {
        let mss = cfg.mss;
        let recv_wnd = cfg.recv_wnd;
        TcpConn {
            rtt: RttEstimator::new(&cfg),
            cfg,
            state: TcpState::Closed,
            local_port,
            remote,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            cwnd: mss,
            ssthresh: usize::MAX / 2,
            mss,
            send_q: VecDeque::new(),
            rtx_q: VecDeque::new(),
            fin_queued: false,
            fin_sent: false,
            dup_acks: 0,
            in_fast_recovery: false,
            rtt_sample: None,
            retries: 0,
            app_blocked: false,
            rcv_nxt: 0,
            reasm: Reassembly::new(recv_wnd),
            fin_rcvd_seq: None,
            peer_closed_reported: false,
            segs_since_ack: 0,
            rtx_deadline: None,
            delack_deadline: None,
            timewait_deadline: None,
            retransmitted_bytes: 0,
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// Active open: create the connection and emit the SYN.
    pub fn connect(
        cfg: TcpConfig,
        local_port: u16,
        remote: (Ipv4Addr, u16),
        iss: u32,
        now: SimTime,
        out: &mut Out,
    ) -> TcpConn {
        let mut c = TcpConn::new(cfg, local_port, remote, iss);
        c.state = TcpState::SynSent;
        c.cwnd = c.cfg.init_cwnd_segs * c.mss;
        let mut h = c.header(TcpFlags::SYN);
        h.mss = Some(c.cfg.mss as u16);
        out.seg(h, Vec::new());
        c.snd_nxt = iss.wrapping_add(1);
        c.arm_rtx(now);
        c
    }

    /// Passive open: a listener got a SYN; create the connection and emit
    /// the SYN-ACK.
    pub fn accept(
        cfg: TcpConfig,
        local_port: u16,
        remote: (Ipv4Addr, u16),
        iss: u32,
        syn: &TcpHeader,
        now: SimTime,
        out: &mut Out,
    ) -> TcpConn {
        let mut c = TcpConn::new(cfg, local_port, remote, iss);
        c.state = TcpState::SynRcvd;
        c.rcv_nxt = syn.seq.wrapping_add(1);
        c.negotiate_mss(syn.mss);
        c.snd_wnd = syn.window as u32;
        c.cwnd = c.cfg.init_cwnd_segs * c.mss;
        let mut h = c.header(TcpFlags {
            syn: true,
            ack: true,
            ..Default::default()
        });
        h.mss = Some(c.cfg.mss as u16);
        out.seg(h, Vec::new());
        c.snd_nxt = iss.wrapping_add(1);
        c.arm_rtx(now);
        c
    }

    fn negotiate_mss(&mut self, peer: Option<u16>) {
        let peer = peer.map(|m| m as usize).unwrap_or(536);
        self.mss = self.cfg.mss.min(peer).max(64);
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True when the connection can be reaped.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Current congestion window in bytes (for tests/diagnostics).
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Local port this connection is bound to.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    fn advertised_window(&self) -> u16 {
        let free = self.cfg.recv_wnd.saturating_sub(self.reasm.buffered());
        free.min(65535) as u16
    }

    fn header(&self, flags: TcpFlags) -> TcpHeader {
        TcpHeader {
            src_port: self.local_port,
            dst_port: self.remote.1,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags,
            window: self.advertised_window(),
            mss: None,
        }
    }

    fn send_pure_ack(&mut self, out: &mut Out) {
        let mut h = self.header(TcpFlags::ACK);
        h.seq = self.snd_nxt;
        out.seg(h, Vec::new());
        self.segs_since_ack = 0;
        self.delack_deadline = None;
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Queue data for transmission; returns how many bytes were accepted
    /// (bounded by the send buffer). When less than `data.len()`, a
    /// `SendSpace` event will fire once room opens up.
    pub fn send(&mut self, data: &[u8], now: SimTime, out: &mut Out) -> usize {
        if !matches!(
            self.state,
            TcpState::SynSent | TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait
        ) || self.fin_queued
        {
            return 0;
        }
        let used = self.send_q.len() + self.rtx_q.len();
        let room = self.cfg.send_buf.saturating_sub(used);
        let n = room.min(data.len());
        self.send_q.extend(&data[..n]);
        if n < data.len() {
            self.app_blocked = true;
        }
        self.try_output(now, out);
        n
    }

    /// Bytes of free space in the send buffer.
    pub fn send_space(&self) -> usize {
        self.cfg
            .send_buf
            .saturating_sub(self.send_q.len() + self.rtx_q.len())
    }

    /// Graceful close: send remaining data, then FIN.
    pub fn close(&mut self, now: SimTime, out: &mut Out) {
        match self.state {
            TcpState::SynSent => {
                self.state = TcpState::Closed;
                self.clear_timers();
                out.ev(ConnEvent::Closed);
            }
            TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait => {
                self.fin_queued = true;
                self.try_output(now, out);
            }
            _ => {}
        }
    }

    /// Abort: send RST and drop to Closed without events (app initiated).
    pub fn abort(&mut self, out: &mut Out) {
        if !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            let mut h = self.header(TcpFlags {
                rst: true,
                ack: true,
                ..Default::default()
            });
            h.seq = self.snd_nxt;
            out.seg(h, Vec::new());
        }
        self.state = TcpState::Closed;
        self.clear_timers();
    }

    fn clear_timers(&mut self) {
        self.rtx_deadline = None;
        self.delack_deadline = None;
        self.timewait_deadline = None;
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Process an incoming segment addressed to this connection.
    pub fn on_segment(&mut self, h: &TcpHeader, payload: &[u8], now: SimTime, out: &mut Out) {
        if self.state == TcpState::Closed {
            return;
        }
        if h.flags.rst {
            let had_handshake = matches!(self.state, TcpState::SynSent | TcpState::SynRcvd);
            self.state = TcpState::Closed;
            self.clear_timers();
            out.ev(ConnEvent::Reset(if had_handshake {
                "connection refused"
            } else {
                "connection reset by peer"
            }));
            return;
        }

        match self.state {
            TcpState::SynSent => {
                if h.flags.syn && h.flags.ack && h.ack == self.snd_nxt {
                    self.snd_una = h.ack;
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    self.negotiate_mss(h.mss);
                    self.snd_wnd = h.window as u32;
                    self.cwnd = self.cfg.init_cwnd_segs * self.mss;
                    self.rtx_deadline = None;
                    self.retries = 0;
                    self.state = TcpState::Established;
                    self.send_pure_ack(out);
                    out.ev(ConnEvent::Connected);
                    self.try_output(now, out);
                }
                return;
            }
            TcpState::SynRcvd => {
                if h.flags.ack && h.ack == self.snd_nxt {
                    self.snd_una = h.ack;
                    self.snd_wnd = h.window as u32;
                    self.rtx_deadline = None;
                    self.retries = 0;
                    self.state = TcpState::Established;
                    out.ev(ConnEvent::Connected);
                    // Fall through: the ACK may carry data.
                } else if h.flags.syn {
                    // Retransmitted SYN: re-send SYN-ACK.
                    let mut sa = self.header(TcpFlags {
                        syn: true,
                        ack: true,
                        ..Default::default()
                    });
                    sa.seq = self.snd_una;
                    sa.mss = Some(self.cfg.mss as u16);
                    out.seg(sa, Vec::new());
                    return;
                } else {
                    return;
                }
            }
            TcpState::TimeWait => {
                // Peer retransmitted its FIN; re-ack it.
                if h.flags.fin {
                    self.send_pure_ack(out);
                }
                return;
            }
            _ => {}
        }

        if h.flags.ack {
            self.process_ack(h, payload.len(), now, out);
        }
        if self.state == TcpState::Closed {
            return;
        }

        let mut data_advanced = false;
        if !payload.is_empty() {
            data_advanced = self.process_data(h.seq, payload, out);
        }
        if h.flags.fin {
            let fin_seq = h.seq.wrapping_add(payload.len() as u32);
            self.fin_rcvd_seq = Some(fin_seq);
        }
        self.maybe_consume_fin(now, out);

        // ACK generation policy.
        if data_advanced {
            self.segs_since_ack += 1;
            if self.segs_since_ack >= 2 {
                self.send_pure_ack(out);
            } else if self.delack_deadline.is_none() {
                self.delack_deadline = Some(now + self.cfg.delack);
            }
        } else if !payload.is_empty() {
            // Out-of-order or duplicate data: immediate (dup) ACK.
            self.send_pure_ack(out);
        }
    }

    fn process_ack(&mut self, h: &TcpHeader, payload_len: usize, now: SimTime, out: &mut Out) {
        let ack = h.ack;
        if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt) {
            // New data acknowledged.
            let mut acked = ack.wrapping_sub(self.snd_una) as usize;
            // FIN consumes one sequence number beyond the data.
            if self.fin_sent && ack == self.snd_nxt && acked > self.rtx_q.len() {
                acked -= 1;
                self.on_fin_acked(now, out);
            }
            let take = acked.min(self.rtx_q.len());
            self.rtx_q.drain(..take);
            self.snd_una = ack;
            self.snd_wnd = h.window as u32;
            self.retries = 0;

            // RTT sampling (Karn's: sample invalidated on retransmit).
            if let Some((seq, sent)) = self.rtt_sample {
                if seq_le(seq, ack) {
                    self.rtt.sample(now.since(sent));
                    self.rtt_sample = None;
                }
            }
            self.rtt.reset_backoff();

            if self.in_fast_recovery {
                // Reno: leave recovery on the first new ACK.
                self.in_fast_recovery = false;
                self.cwnd = self.ssthresh.max(2 * self.mss);
            } else if self.cwnd < self.ssthresh {
                self.cwnd += take.min(self.mss); // slow start
            } else {
                self.cwnd += (self.mss * self.mss / self.cwnd.max(1)).max(1);
            }
            self.dup_acks = 0;

            if self.flight() == 0 {
                self.rtx_deadline = None;
            } else {
                self.arm_rtx(now);
            }

            if self.app_blocked && self.send_space() > 0 {
                self.app_blocked = false;
                out.ev(ConnEvent::SendSpace);
            }
        } else if ack == self.snd_una
            && payload_len == 0
            && !h.flags.syn
            && !h.flags.fin
            && self.flight() > 0
        {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                // Fast retransmit + fast recovery (Reno).
                let flight = self.flight() as usize;
                self.ssthresh = (flight / 2).max(2 * self.mss);
                self.retransmit_front(now, out);
                self.cwnd = self.ssthresh + 3 * self.mss;
                self.in_fast_recovery = true;
                self.fast_retransmits += 1;
            } else if self.dup_acks > 3 && self.in_fast_recovery {
                self.cwnd += self.mss; // window inflation
            }
        } else {
            // Old ACK or window update.
            self.snd_wnd = h.window as u32;
        }

        self.try_output(now, out);
    }

    fn on_fin_acked(&mut self, now: SimTime, out: &mut Out) {
        match self.state {
            TcpState::FinWait1 => self.state = TcpState::FinWait2,
            TcpState::Closing => self.enter_timewait(now),
            TcpState::LastAck => {
                self.state = TcpState::Closed;
                self.clear_timers();
                out.ev(ConnEvent::Closed);
            }
            _ => {}
        }
    }

    fn enter_timewait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.rtx_deadline = None;
        self.delack_deadline = None;
        self.timewait_deadline = Some(now + self.cfg.time_wait);
    }

    /// Returns true if `rcv_nxt` advanced (in-order data was delivered).
    fn process_data(&mut self, seq: u32, payload: &[u8], out: &mut Out) -> bool {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        ) {
            return false;
        }
        let end = seq.wrapping_add(payload.len() as u32);
        if seq_le(end, self.rcv_nxt) {
            return false; // entirely old
        }
        if seq_le(seq, self.rcv_nxt) {
            // In-order (possibly with old prefix to trim).
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            let mut data = payload[skip..].to_vec();
            self.rcv_nxt = end;
            // Pull anything now contiguous out of reassembly.
            let (more, nxt) = self.reasm.drain(self.rcv_nxt);
            data.extend_from_slice(&more);
            self.rcv_nxt = nxt;
            out.ev(ConnEvent::Data(data));
            true
        } else {
            // Gap: hold for reassembly.
            self.reasm.insert(seq, payload.to_vec());
            false
        }
    }

    fn maybe_consume_fin(&mut self, now: SimTime, out: &mut Out) {
        let Some(fin_seq) = self.fin_rcvd_seq else {
            return;
        };
        if self.peer_closed_reported || self.rcv_nxt != fin_seq {
            return; // data before the FIN still missing
        }
        self.rcv_nxt = fin_seq.wrapping_add(1);
        self.peer_closed_reported = true;
        out.ev(ConnEvent::PeerClosed);
        match self.state {
            TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => self.state = TcpState::Closing,
            TcpState::FinWait2 => {
                self.enter_timewait(now);
            }
            _ => {}
        }
        self.send_pure_ack(out);
    }

    // ------------------------------------------------------------------
    // Output engine
    // ------------------------------------------------------------------

    fn usable_window(&self) -> usize {
        let wnd = (self.cwnd).min(self.snd_wnd as usize);
        wnd.saturating_sub(self.flight() as usize)
    }

    fn try_output(&mut self, now: SimTime, out: &mut Out) {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::Closing
        ) {
            // FIN may still need to move us out of Established-adjacent
            // states, handled below; data only flows in the above states.
            if !matches!(self.state, TcpState::Established | TcpState::CloseWait) {
                return;
            }
        }
        // Zero-window probe: one byte past the window keeps things alive.
        if self.snd_wnd == 0
            && self.flight() == 0
            && !self.send_q.is_empty()
            && matches!(self.state, TcpState::Established | TcpState::CloseWait)
        {
            self.emit_data_segment(1, now, out);
            return;
        }
        loop {
            let room = self.usable_window();
            let n = room.min(self.mss).min(self.send_q.len());
            if n == 0 {
                break;
            }
            // Nagle-lite: send sub-MSS only if nothing is in flight.
            if n < self.mss && self.flight() > 0 && self.send_q.len() < self.mss && !self.fin_queued
            {
                break;
            }
            self.emit_data_segment(n, now, out);
        }
        // Emit FIN once all data is out.
        if self.fin_queued
            && !self.fin_sent
            && self.send_q.is_empty()
            && matches!(self.state, TcpState::Established | TcpState::CloseWait)
        {
            let mut h = self.header(TcpFlags {
                fin: true,
                ack: true,
                ..Default::default()
            });
            h.seq = self.snd_nxt;
            out.seg(h, Vec::new());
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_sent = true;
            self.state = match self.state {
                TcpState::Established => TcpState::FinWait1,
                TcpState::CloseWait => TcpState::LastAck,
                s => s,
            };
            self.arm_rtx(now);
            self.delack_deadline = None;
        }
    }

    fn emit_data_segment(&mut self, n: usize, now: SimTime, out: &mut Out) {
        let payload: Vec<u8> = self.send_q.drain(..n).collect();
        let mut h = self.header(TcpFlags {
            ack: true,
            psh: self.send_q.is_empty(),
            ..Default::default()
        });
        h.seq = self.snd_nxt;
        if self.rtt_sample.is_none() {
            self.rtt_sample = Some((self.snd_nxt.wrapping_add(n as u32), now));
        }
        self.rtx_q.extend(payload.iter().copied());
        self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
        out.seg(h, payload);
        if self.rtx_deadline.is_none() {
            self.arm_rtx(now);
        }
        self.segs_since_ack = 0;
        self.delack_deadline = None; // data segments carry the ACK
    }

    fn retransmit_front(&mut self, now: SimTime, out: &mut Out) {
        if self.rtx_q.is_empty() {
            // Handshake or FIN retransmission.
            match self.state {
                TcpState::SynSent => {
                    let mut h = self.header(TcpFlags::SYN);
                    h.seq = self.snd_una;
                    h.mss = Some(self.cfg.mss as u16);
                    out.seg(h, Vec::new());
                }
                TcpState::SynRcvd => {
                    let mut h = self.header(TcpFlags {
                        syn: true,
                        ack: true,
                        ..Default::default()
                    });
                    h.seq = self.snd_una;
                    h.mss = Some(self.cfg.mss as u16);
                    out.seg(h, Vec::new());
                }
                _ if self.fin_sent => {
                    let mut h = self.header(TcpFlags {
                        fin: true,
                        ack: true,
                        ..Default::default()
                    });
                    h.seq = self.snd_nxt.wrapping_sub(1);
                    out.seg(h, Vec::new());
                }
                _ => {}
            }
        } else {
            let n = self.rtx_q.len().min(self.mss);
            let payload: Vec<u8> = self.rtx_q.iter().take(n).copied().collect();
            let mut h = self.header(TcpFlags {
                ack: true,
                ..Default::default()
            });
            h.seq = self.snd_una;
            self.retransmitted_bytes += n as u64;
            out.seg(h, payload);
        }
        // Karn: never sample a retransmitted sequence range.
        self.rtt_sample = None;
        self.arm_rtx(now);
    }

    fn arm_rtx(&mut self, now: SimTime) {
        self.rtx_deadline = Some(now + self.rtt.rto());
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.rtx_deadline,
            self.delack_deadline,
            self.timewait_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Service any deadlines due at `now`.
    pub fn on_timer(&mut self, now: SimTime, out: &mut Out) {
        if matches!(self.timewait_deadline, Some(t) if t <= now) {
            self.timewait_deadline = None;
            self.state = TcpState::Closed;
            self.clear_timers();
            out.ev(ConnEvent::Closed);
            return;
        }
        if matches!(self.delack_deadline, Some(t) if t <= now) {
            self.delack_deadline = None;
            self.send_pure_ack(out);
        }
        if matches!(self.rtx_deadline, Some(t) if t <= now) {
            self.rtx_deadline = None;
            self.timeouts += 1;
            self.retries += 1;
            let limit = match self.state {
                TcpState::SynSent | TcpState::SynRcvd => self.cfg.max_syn_retries,
                _ => self.cfg.max_retries,
            };
            if self.retries > limit {
                self.state = TcpState::Closed;
                self.clear_timers();
                out.ev(ConnEvent::Reset("retransmission limit exceeded"));
                return;
            }
            // RTO: collapse the window and back off.
            if matches!(
                self.state,
                TcpState::Established
                    | TcpState::CloseWait
                    | TcpState::FinWait1
                    | TcpState::Closing
                    | TcpState::LastAck
            ) {
                let flight = self.flight() as usize;
                if flight > 0 {
                    self.ssthresh = (flight / 2).max(2 * self.mss);
                    self.cwnd = self.mss;
                }
            }
            self.in_fast_recovery = false;
            self.dup_acks = 0;
            self.rtt.on_timeout();
            self.retransmit_front(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LP: u16 = 1000;
    const RP: u16 = 2000;

    fn rip() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Build a client/server pair with the handshake completed by feeding
    /// each side's segments to the other.
    fn established_pair() -> (TcpConn, TcpConn) {
        let mut out_c = Out::default();
        let mut client = TcpConn::connect(cfg(), LP, (rip(), RP), 1000, t(0), &mut out_c);
        let (syn, _) = out_c.segs.pop().unwrap();
        assert!(syn.flags.syn && !syn.flags.ack);

        let mut out_s = Out::default();
        let mut server = TcpConn::accept(cfg(), RP, (rip(), LP), 5000, &syn, t(1), &mut out_s);
        let (synack, _) = out_s.segs.pop().unwrap();
        assert!(synack.flags.syn && synack.flags.ack);

        let mut out_c = Out::default();
        client.on_segment(&synack, &[], t(2), &mut out_c);
        assert!(out_c.events.contains(&ConnEvent::Connected));
        let (ack, _) = out_c.segs.pop().unwrap();

        let mut out_s = Out::default();
        server.on_segment(&ack, &[], t(3), &mut out_s);
        assert!(out_s.events.contains(&ConnEvent::Connected));
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);
        (client, server)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let _ = established_pair();
    }

    #[test]
    fn data_transfer_and_ack() {
        let (mut c, mut s) = established_pair();
        let mut out = Out::default();
        let n = c.send(b"hello world", t(10), &mut out);
        assert_eq!(n, 11);
        assert_eq!(out.segs.len(), 1);
        let (h, p) = &out.segs[0];
        assert_eq!(p.as_slice(), b"hello world");

        let mut sout = Out::default();
        s.on_segment(h, p, t(11), &mut sout);
        assert!(sout
            .events
            .iter()
            .any(|e| matches!(e, ConnEvent::Data(d) if d == b"hello world")));
        // Single segment: delayed ACK armed, not sent yet.
        assert!(sout.segs.is_empty());
        assert!(s.next_deadline().is_some());

        // Fire the delayed-ACK timer.
        let mut sout = Out::default();
        s.on_timer(t(300), &mut sout);
        assert_eq!(sout.segs.len(), 1);
        let (ack, _) = &sout.segs[0];
        assert!(ack.flags.ack);

        let mut cout = Out::default();
        c.on_segment(ack, &[], t(301), &mut cout);
        assert_eq!(c.flight(), 0);
        assert!(c.next_deadline().is_none()); // rtx cancelled
    }

    #[test]
    fn second_segment_triggers_immediate_ack() {
        let (mut c, mut s) = established_pair();
        let mut out = Out::default();
        c.send(&vec![0u8; 2920], t(10), &mut out); // exactly 2 MSS segments
        assert_eq!(out.segs.len(), 2);
        let mut sout = Out::default();
        for (h, p) in &out.segs {
            s.on_segment(h, p, t(11), &mut sout);
        }
        // Every-other-segment ACK policy.
        assert_eq!(sout.segs.len(), 1);
    }

    #[test]
    fn out_of_order_generates_dup_acks_and_fast_retransmit() {
        let (mut c, mut s) = established_pair();
        // Open the congestion window so several segments go out at once.
        c.cwnd = 100 * 1460;
        let mut out = Out::default();
        c.send(&vec![7u8; 1460 * 5], t(10), &mut out);
        assert_eq!(out.segs.len(), 5);

        // Drop the first segment; deliver 2..5.
        let mut sout = Out::default();
        for (h, p) in &out.segs[1..] {
            s.on_segment(h, p, t(11), &mut sout);
        }
        // Each out-of-order segment forces an immediate dup ACK.
        assert_eq!(sout.segs.len(), 4);
        for (h, _) in &sout.segs {
            assert_eq!(h.ack, out.segs[0].0.seq);
        }

        // Feed dup ACKs back: the third triggers fast retransmit.
        let mut cout = Out::default();
        for (h, _) in &sout.segs {
            c.on_segment(h, &[], t(12), &mut cout);
        }
        assert_eq!(c.fast_retransmits, 1);
        let rtx: Vec<_> = cout
            .segs
            .iter()
            .filter(|(h, p)| !p.is_empty() && h.seq == out.segs[0].0.seq)
            .collect();
        assert_eq!(rtx.len(), 1);

        // Deliver the retransmission: receiver drains reassembly fully.
        let (h, p) = rtx[0];
        let mut sout2 = Out::default();
        s.on_segment(h, p, t(13), &mut sout2);
        let delivered: usize = sout2
            .events
            .iter()
            .filter_map(|e| match e {
                ConnEvent::Data(d) => Some(d.len()),
                _ => None,
            })
            .sum();
        assert_eq!(delivered, 1460 * 5);
    }

    #[test]
    fn rto_collapses_cwnd_and_retransmits() {
        let (mut c, _s) = established_pair();
        let mut out = Out::default();
        c.send(&vec![1u8; 1460], t(10), &mut out);
        let cwnd_before = c.cwnd();
        let deadline = c.next_deadline().unwrap();
        let mut out2 = Out::default();
        c.on_timer(deadline, &mut out2);
        assert_eq!(c.timeouts, 1);
        assert_eq!(c.cwnd(), 1460);
        assert!(c.cwnd() <= cwnd_before);
        assert_eq!(out2.segs.len(), 1);
        assert_eq!(out2.segs[0].0.seq, out.segs[0].0.seq);
        assert_eq!(c.retransmitted_bytes, 1460);
        // Deadline re-armed with backoff.
        assert!(c.next_deadline().unwrap() > deadline);
    }

    #[test]
    fn retry_limit_aborts() {
        let (mut c, _s) = established_pair();
        let mut out = Out::default();
        c.send(&[1u8; 100], t(10), &mut out);
        let mut events = Vec::new();
        for _ in 0..40 {
            let Some(d) = c.next_deadline() else { break };
            let mut o = Out::default();
            c.on_timer(d, &mut o);
            events.extend(o.events);
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, ConnEvent::Reset("retransmission limit exceeded"))));
        assert!(c.is_closed());
    }

    #[test]
    fn graceful_close_active_side() {
        let (mut c, mut s) = established_pair();
        let mut cout = Out::default();
        c.close(t(10), &mut cout);
        assert_eq!(c.state(), TcpState::FinWait1);
        let (fin, _) = cout.segs.pop().unwrap();
        assert!(fin.flags.fin);

        let mut sout = Out::default();
        s.on_segment(&fin, &[], t(11), &mut sout);
        assert_eq!(s.state(), TcpState::CloseWait);
        assert!(sout.events.contains(&ConnEvent::PeerClosed));
        let (ack, _) = sout.segs.pop().unwrap();

        let mut cout = Out::default();
        c.on_segment(&ack, &[], t(12), &mut cout);
        assert_eq!(c.state(), TcpState::FinWait2);

        // Server closes its side.
        let mut sout = Out::default();
        s.close(t(13), &mut sout);
        assert_eq!(s.state(), TcpState::LastAck);
        let (fin2, _) = sout.segs.pop().unwrap();
        let mut cout = Out::default();
        c.on_segment(&fin2, &[], t(14), &mut cout);
        assert_eq!(c.state(), TcpState::TimeWait);
        assert!(cout.events.contains(&ConnEvent::PeerClosed));
        let (ack2, _) = cout.segs.pop().unwrap();

        let mut sout = Out::default();
        s.on_segment(&ack2, &[], t(15), &mut sout);
        assert!(s.is_closed());
        assert!(sout.events.contains(&ConnEvent::Closed));

        // Client's TIME-WAIT expires.
        let tw = c.next_deadline().unwrap();
        let mut cout = Out::default();
        c.on_timer(tw, &mut cout);
        assert!(c.is_closed());
        assert!(cout.events.contains(&ConnEvent::Closed));
    }

    #[test]
    fn fin_waits_for_missing_data() {
        let (mut c, mut s) = established_pair();
        c.cwnd = 100 * 1460;
        let mut out = Out::default();
        c.send(&vec![3u8; 2000], t(10), &mut out);
        let mut cout = Out::default();
        c.close(t(10), &mut cout);
        // Segments: data(1460), data(540), fin.
        let all: Vec<_> = out.segs.into_iter().chain(cout.segs).collect();
        assert_eq!(all.len(), 3);
        assert!(all[2].0.flags.fin);

        // Deliver FIN and second segment only.
        let mut sout = Out::default();
        s.on_segment(&all[2].0, &all[2].1, t(11), &mut sout);
        s.on_segment(&all[1].0, &all[1].1, t(11), &mut sout);
        // FIN must not be consumed: first 1460 bytes missing.
        assert_eq!(s.state(), TcpState::Established);
        assert!(!sout.events.contains(&ConnEvent::PeerClosed));

        // Now the missing first segment arrives.
        let mut sout = Out::default();
        s.on_segment(&all[0].0, &all[0].1, t(12), &mut sout);
        assert_eq!(s.state(), TcpState::CloseWait);
        let total: usize = sout
            .events
            .iter()
            .filter_map(|e| match e {
                ConnEvent::Data(d) => Some(d.len()),
                _ => None,
            })
            .sum();
        assert_eq!(total, 2000);
        assert!(sout.events.contains(&ConnEvent::PeerClosed));
    }

    #[test]
    fn send_buffer_backpressure_and_sendspace() {
        let (mut c, mut s) = established_pair();
        let big = vec![0u8; 200 * 1024];
        let mut out = Out::default();
        let n = c.send(&big, t(10), &mut out);
        assert!(n < big.len());
        assert!(n <= 64 * 1024);

        // ACK everything in flight; app should get SendSpace.
        let mut acked_events = Vec::new();
        let mut now = t(11);
        for _ in 0..100 {
            let mut sout = Out::default();
            let segs = std::mem::take(&mut out.segs);
            if segs.is_empty() {
                break;
            }
            for (h, p) in &segs {
                s.on_segment(h, p, now, &mut sout);
            }
            // Flush server's delayed ack if armed.
            let mut fl = Out::default();
            s.on_timer(now + SimDuration::from_millis(250), &mut fl);
            for (h, p) in sout.segs.iter().chain(fl.segs.iter()) {
                c.on_segment(h, p, now + SimDuration::from_millis(260), &mut out);
            }
            acked_events.append(&mut out.events);
            now += SimDuration::from_millis(500);
        }
        assert!(acked_events.contains(&ConnEvent::SendSpace));
    }

    #[test]
    fn peer_rst_resets() {
        let (mut c, _s) = established_pair();
        let rst = TcpHeader {
            src_port: RP,
            dst_port: LP,
            seq: 0,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..Default::default()
            },
            window: 0,
            mss: None,
        };
        let mut out = Out::default();
        c.on_segment(&rst, &[], t(10), &mut out);
        assert!(c.is_closed());
        assert!(out
            .events
            .contains(&ConnEvent::Reset("connection reset by peer")));
    }

    #[test]
    fn slow_start_grows_cwnd() {
        let (mut c, mut s) = established_pair();
        let initial = c.cwnd();
        let mut out = Out::default();
        c.send(&vec![0u8; 1460 * 2], t(10), &mut out);
        let mut sout = Out::default();
        for (h, p) in &out.segs {
            s.on_segment(h, p, t(11), &mut sout);
        }
        let mut cout = Out::default();
        for (h, p) in &sout.segs {
            c.on_segment(h, p, t(12), &mut cout);
        }
        assert!(c.cwnd() > initial, "{} vs {initial}", c.cwnd());
    }

    #[test]
    fn zero_window_probe() {
        let (mut c, _s) = established_pair();
        // Peer advertises zero window.
        let zw = TcpHeader {
            src_port: RP,
            dst_port: LP,
            seq: c.rcv_nxt,
            ack: c.snd_nxt,
            flags: TcpFlags::ACK,
            window: 0,
            mss: None,
        };
        let mut out = Out::default();
        c.on_segment(&zw, &[], t(10), &mut out);
        let mut out = Out::default();
        let n = c.send(b"stuck data", t(11), &mut out);
        assert_eq!(n, 10);
        // A 1-byte probe goes out despite the zero window.
        assert_eq!(out.segs.len(), 1);
        assert_eq!(out.segs[0].1.len(), 1);
    }

    #[test]
    fn syn_retransmission() {
        let mut out = Out::default();
        let mut c = TcpConn::connect(cfg(), LP, (rip(), RP), 1, t(0), &mut out);
        let d1 = c.next_deadline().unwrap();
        let mut o = Out::default();
        c.on_timer(d1, &mut o);
        assert_eq!(o.segs.len(), 1);
        assert!(o.segs[0].0.flags.syn);
        assert_eq!(o.segs[0].0.seq, 1);
    }

    #[test]
    fn mss_negotiated_to_min() {
        let mut out = Out::default();
        let mut c = TcpConn::connect(cfg(), LP, (rip(), RP), 1, t(0), &mut out);
        let synack = TcpHeader {
            src_port: RP,
            dst_port: LP,
            seq: 100,
            ack: 2,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            window: 30000,
            mss: Some(512),
        };
        let mut o = Out::default();
        c.on_segment(&synack, &[], t(1), &mut o);
        assert_eq!(c.mss, 512);
        // Large send is chunked at the negotiated MSS.
        let mut o = Out::default();
        c.send(&vec![0u8; 2000], t(2), &mut o);
        assert!(o.segs.iter().all(|(_, p)| p.len() <= 512));
    }
}
