//! Out-of-order segment reassembly for the TCP receive path.

use std::collections::BTreeMap;

/// Compare sequence numbers with wraparound (RFC 793 arithmetic).
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
pub fn seq_le(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) <= 0
}

/// Buffer of segments received above `rcv_nxt`, keyed by sequence number.
///
/// Capacity is bounded in bytes; segments that would exceed it are
/// discarded (the sender will retransmit).
#[derive(Debug, Default)]
pub struct Reassembly {
    segs: BTreeMap<u32, Vec<u8>>,
    buffered: usize,
    capacity: usize,
}

impl Reassembly {
    /// Buffer with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        Reassembly {
            segs: BTreeMap::new(),
            buffered: 0,
            capacity,
        }
    }

    /// Bytes currently buffered out of order.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Store an out-of-order segment starting at `seq`. Overlapping or
    /// duplicate segments are handled by keeping the first arrival for any
    /// given start (retransmissions carry identical data). Returns whether
    /// the segment was kept.
    pub fn insert(&mut self, seq: u32, data: Vec<u8>) -> bool {
        if data.is_empty() || self.segs.contains_key(&seq) {
            return false;
        }
        if self.buffered + data.len() > self.capacity {
            return false;
        }
        self.buffered += data.len();
        self.segs.insert(seq, data);
        true
    }

    /// Pop every segment now contiguous with `rcv_nxt`, returning the
    /// in-order bytes and the new `rcv_nxt`. Segments that start below
    /// `rcv_nxt` have their overlap trimmed; stale ones are dropped.
    pub fn drain(&mut self, mut rcv_nxt: u32) -> (Vec<u8>, u32) {
        let mut out = Vec::new();
        loop {
            // Find any segment that starts at or below rcv_nxt and still
            // has useful bytes. BTreeMap is keyed by raw u32, which does
            // not follow wrapping order, so scan for a usable segment.
            let key = self
                .segs
                .iter()
                .find(|(&s, d)| {
                    seq_le(s, rcv_nxt) && seq_lt(rcv_nxt, s.wrapping_add(d.len() as u32))
                })
                .map(|(&s, _)| s);
            let Some(start) = key else { break };
            let data = self.segs.remove(&start).unwrap();
            self.buffered -= data.len();
            let skip = rcv_nxt.wrapping_sub(start) as usize;
            out.extend_from_slice(&data[skip..]);
            rcv_nxt = rcv_nxt.wrapping_add((data.len() - skip) as u32);
            // Remove any segments made entirely stale by this advance.
            let stale: Vec<u32> = self
                .segs
                .iter()
                .filter(|(&s, d)| seq_le(s.wrapping_add(d.len() as u32), rcv_nxt))
                .map(|(&s, _)| s)
                .collect();
            for s in stale {
                let d = self.segs.remove(&s).unwrap();
                self.buffered -= d.len();
            }
        }
        (out, rcv_nxt)
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_comparisons_wrap() {
        assert!(seq_lt(0xffff_fff0, 0x10));
        assert!(!seq_lt(0x10, 0xffff_fff0));
        assert!(seq_le(5, 5));
        assert!(seq_lt(5, 6));
    }

    #[test]
    fn in_order_drain_after_gap_fill() {
        let mut r = Reassembly::new(4096);
        r.insert(100, vec![2u8; 10]); // gap at 90..100
        let (out, nxt) = r.drain(90);
        assert!(out.is_empty());
        assert_eq!(nxt, 90);
        // Fill arrives (delivered directly by caller); drain from 100.
        let (out, nxt) = r.drain(100);
        assert_eq!(out, vec![2u8; 10]);
        assert_eq!(nxt, 110);
        assert!(r.is_empty());
    }

    #[test]
    fn multiple_contiguous_segments_drain_together() {
        let mut r = Reassembly::new(4096);
        r.insert(110, vec![2u8; 10]);
        r.insert(100, vec![1u8; 10]);
        r.insert(130, vec![4u8; 5]); // still a gap at 120..130
        let (out, nxt) = r.drain(100);
        assert_eq!(out.len(), 20);
        assert_eq!(nxt, 120);
        assert_eq!(r.buffered(), 5);
    }

    #[test]
    fn overlap_trimmed() {
        let mut r = Reassembly::new(4096);
        // Segment covering 95..115 when rcv_nxt is 100: skip 5.
        r.insert(95, (0..20).collect());
        let (out, nxt) = r.drain(100);
        assert_eq!(out, (5..20).collect::<Vec<u8>>());
        assert_eq!(nxt, 115);
    }

    #[test]
    fn stale_segments_discarded() {
        let mut r = Reassembly::new(4096);
        r.insert(100, vec![1u8; 20]);
        r.insert(105, vec![9u8; 5]); // entirely inside the first
        let (out, nxt) = r.drain(100);
        assert_eq!(out.len(), 20);
        assert_eq!(nxt, 120);
        assert!(r.is_empty());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn capacity_enforced() {
        let mut r = Reassembly::new(15);
        assert!(r.insert(100, vec![0u8; 10]));
        assert!(!r.insert(200, vec![0u8; 10]));
        assert!(r.insert(200, vec![0u8; 5]));
        assert_eq!(r.buffered(), 15);
    }

    #[test]
    fn duplicate_starts_ignored() {
        let mut r = Reassembly::new(100);
        assert!(r.insert(100, vec![1u8; 10]));
        assert!(!r.insert(100, vec![2u8; 10]));
        let (out, _) = r.drain(100);
        assert_eq!(out, vec![1u8; 10]);
    }

    #[test]
    fn wraparound_drain() {
        let mut r = Reassembly::new(4096);
        let start = u32::MAX - 4; // 5 bytes before wrap
        r.insert(start, vec![7u8; 10]);
        let (out, nxt) = r.drain(start);
        assert_eq!(out.len(), 10);
        assert_eq!(nxt, 5);
    }

    #[test]
    fn empty_insert_rejected() {
        let mut r = Reassembly::new(10);
        assert!(!r.insert(1, vec![]));
    }
}
