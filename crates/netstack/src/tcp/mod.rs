//! TCP: connection state machines plus the per-host engine that demuxes
//! segments, allocates ports, and serializes wire bytes.

mod conn;
mod reasm;
mod rtt;

pub use conn::{ConnEvent, Out, TcpConn, TcpState};
pub use reasm::{seq_le, seq_lt, Reassembly};
pub use rtt::RttEstimator;

use crate::config::TcpConfig;
use netsim::{SimRng, SimTime};
use packet::{TcpFlags, TcpHeader};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Handle identifying a connection to the application layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TcpHandle(pub u32);

/// Output of one engine operation: wire segments (destination IP + raw TCP
/// bytes) and application events tagged with their connection.
#[derive(Debug, Default)]
pub struct EngineOut {
    /// `(dst_ip, tcp_segment_bytes)` ready for the IP layer.
    pub segments: Vec<(Ipv4Addr, Vec<u8>)>,
    /// `(conn, event)` for the application layer.
    pub events: Vec<(TcpHandle, ConnEvent)>,
    /// Connections freshly created by an incoming SYN on a listening
    /// port; the host routes these to the listener's owner.
    pub accepted: Vec<(u16, TcpHandle)>,
}

/// The per-host TCP engine.
pub struct TcpEngine {
    cfg: TcpConfig,
    local_ip: Ipv4Addr,
    conns: Vec<Option<TcpConn>>,
    by_tuple: HashMap<(u16, Ipv4Addr, u16), usize>,
    listeners: HashMap<u16, ()>,
    next_ephemeral: u16,
}

impl TcpEngine {
    /// Engine for a host with address `local_ip`.
    pub fn new(local_ip: Ipv4Addr, cfg: TcpConfig) -> Self {
        TcpEngine {
            cfg,
            local_ip,
            conns: Vec::new(),
            by_tuple: HashMap::new(),
            listeners: HashMap::new(),
            next_ephemeral: 40_000,
        }
    }

    fn alloc_slot(&mut self, conn: TcpConn, tuple: (u16, Ipv4Addr, u16)) -> TcpHandle {
        let idx = self
            .conns
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
        self.conns[idx] = Some(conn);
        self.by_tuple.insert(tuple, idx);
        TcpHandle(idx as u32)
    }

    fn alloc_port(&mut self) -> u16 {
        // Linear scan from the ephemeral base; fine at simulation scale.
        for _ in 0..25_000 {
            let p = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral >= 65_000 {
                40_000
            } else {
                self.next_ephemeral + 1
            };
            if !self.listeners.contains_key(&p) && !self.by_tuple.keys().any(|&(lp, _, _)| lp == p)
            {
                return p;
            }
        }
        panic!("ephemeral port space exhausted");
    }

    /// Start listening on `port`.
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port, ());
    }

    /// Stop listening on `port`.
    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    /// Active open to `remote`. Returns the handle; the SYN lands in
    /// `out`.
    pub fn connect(
        &mut self,
        remote: (Ipv4Addr, u16),
        now: SimTime,
        rng: &mut SimRng,
        out: &mut EngineOut,
    ) -> TcpHandle {
        let port = self.alloc_port();
        let iss = rng.u64() as u32;
        let mut cout = Out::default();
        let conn = TcpConn::connect(self.cfg.clone(), port, remote, iss, now, &mut cout);
        let handle = self.alloc_slot(conn, (port, remote.0, remote.1));
        self.merge(handle, cout, out);
        handle
    }

    fn merge(&mut self, handle: TcpHandle, cout: Out, out: &mut EngineOut) {
        let idx = handle.0 as usize;
        let (remote, local_port) = {
            let c = self.conns[idx].as_ref().expect("merged for live conn");
            (c.remote, c.local_port())
        };
        for (h, p) in cout.segs {
            debug_assert_eq!(h.src_port, local_port);
            out.segments
                .push((remote.0, h.emit(&p, self.local_ip, remote.0)));
        }
        for e in cout.events {
            out.events.push((handle, e));
        }
        // Reap fully closed connections once their events are out.
        if self.conns[idx].as_ref().is_some_and(TcpConn::is_closed) {
            self.by_tuple.remove(&(local_port, remote.0, remote.1));
            self.conns[idx] = None;
        }
    }

    fn with_conn(
        &mut self,
        handle: TcpHandle,
        out: &mut EngineOut,
        f: impl FnOnce(&mut TcpConn, &mut Out),
    ) {
        let idx = handle.0 as usize;
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return; // stale handle: connection already reaped
        };
        let mut cout = Out::default();
        f(conn, &mut cout);
        self.merge(handle, cout, out);
    }

    /// Queue application data; returns bytes accepted.
    pub fn send(
        &mut self,
        handle: TcpHandle,
        data: &[u8],
        now: SimTime,
        out: &mut EngineOut,
    ) -> usize {
        let mut n = 0;
        self.with_conn(handle, out, |c, cout| {
            n = c.send(data, now, cout);
        });
        n
    }

    /// Free space in the connection's send buffer (0 for stale handles).
    pub fn send_space(&self, handle: TcpHandle) -> usize {
        self.conns
            .get(handle.0 as usize)
            .and_then(Option::as_ref)
            .map_or(0, TcpConn::send_space)
    }

    /// State of a connection, if it still exists.
    pub fn state(&self, handle: TcpHandle) -> Option<TcpState> {
        self.conns
            .get(handle.0 as usize)
            .and_then(Option::as_ref)
            .map(TcpConn::state)
    }

    /// Borrow a live connection (diagnostics/tests).
    pub fn conn(&self, handle: TcpHandle) -> Option<&TcpConn> {
        self.conns.get(handle.0 as usize).and_then(Option::as_ref)
    }

    /// Graceful close.
    pub fn close(&mut self, handle: TcpHandle, now: SimTime, out: &mut EngineOut) {
        self.with_conn(handle, out, |c, cout| c.close(now, cout));
    }

    /// Abortive close (RST).
    pub fn abort(&mut self, handle: TcpHandle, out: &mut EngineOut) {
        self.with_conn(handle, out, |c, cout| c.abort(cout));
    }

    /// Process an incoming TCP segment (raw bytes, already validated by
    /// the IP layer checksum-wise at parse time).
    pub fn on_segment(
        &mut self,
        src_ip: Ipv4Addr,
        bytes: &[u8],
        now: SimTime,
        rng: &mut SimRng,
        out: &mut EngineOut,
    ) {
        let Ok((h, payload)) = TcpHeader::parse(bytes, src_ip, self.local_ip) else {
            return; // corrupt segment: the model coerces it to a loss
        };
        let tuple = (h.dst_port, src_ip, h.src_port);
        if let Some(&idx) = self.by_tuple.get(&tuple) {
            let handle = TcpHandle(idx as u32);
            let mut cout = Out::default();
            self.conns[idx]
                .as_mut()
                .expect("tuple table points at live conn")
                .on_segment(&h, payload, now, &mut cout);
            self.merge(handle, cout, out);
            return;
        }
        if h.flags.syn && !h.flags.ack && self.listeners.contains_key(&h.dst_port) {
            let iss = rng.u64() as u32;
            let mut cout = Out::default();
            let conn = TcpConn::accept(
                self.cfg.clone(),
                h.dst_port,
                (src_ip, h.src_port),
                iss,
                &h,
                now,
                &mut cout,
            );
            let handle = self.alloc_slot(conn, tuple);
            out.accepted.push((h.dst_port, handle));
            self.merge(handle, cout, out);
            return;
        }
        // No connection and not a valid listen: RST (unless it was a RST).
        if !h.flags.rst {
            let rst = TcpHeader {
                src_port: h.dst_port,
                dst_port: h.src_port,
                seq: if h.flags.ack { h.ack } else { 0 },
                ack: h
                    .seq
                    .wrapping_add(payload.len() as u32 + h.flags.syn as u32),
                flags: TcpFlags {
                    rst: true,
                    ack: true,
                    ..Default::default()
                },
                window: 0,
                mss: None,
            };
            out.segments
                .push((src_ip, rst.emit(&[], self.local_ip, src_ip)));
        }
    }

    /// Earliest deadline across all connections.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.conns
            .iter()
            .flatten()
            .filter_map(TcpConn::next_deadline)
            .min()
    }

    /// Service every connection whose deadline is due.
    pub fn on_timer(&mut self, now: SimTime, out: &mut EngineOut) {
        let due: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.as_ref()
                    .and_then(TcpConn::next_deadline)
                    .filter(|&d| d <= now)
                    .map(|_| i)
            })
            .collect();
        for idx in due {
            let handle = TcpHandle(idx as u32);
            let mut cout = Out::default();
            if let Some(c) = self.conns[idx].as_mut() {
                c.on_timer(now, &mut cout);
            }
            self.merge(handle, cout, out);
        }
    }

    /// Number of live connections (diagnostics).
    pub fn live_connections(&self) -> usize {
        self.conns.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    type SegQueue = Vec<(bool, Vec<(Ipv4Addr, Vec<u8>)>)>;

    /// Shuttle segments between two engines until quiescent.
    fn pump(
        client: &mut TcpEngine,
        server: &mut TcpEngine,
        now: SimTime,
        events: &mut Vec<(bool, TcpHandle, ConnEvent)>,
        accepted: &mut Vec<TcpHandle>,
        initial: EngineOut,
        from_client: bool,
    ) {
        let mut queue: SegQueue = vec![(from_client, initial.segments)];
        for (h, e) in initial.events {
            events.push((from_client, h, e));
        }
        for (_, h) in initial.accepted {
            accepted.push(h);
        }
        let mut rng = SimRng::seed_from_u64(9);
        let mut steps = 0;
        while let Some((from_c, segs)) = queue.pop() {
            steps += 1;
            assert!(steps < 10_000, "pump did not quiesce");
            for (_dst, bytes) in segs {
                let mut out = EngineOut::default();
                if from_c {
                    server.on_segment(CLIENT_IP, &bytes, now, &mut rng, &mut out);
                    for (h, e) in out.events {
                        events.push((false, h, e));
                    }
                    for (_, h) in out.accepted {
                        accepted.push(h);
                    }
                    if !out.segments.is_empty() {
                        queue.push((false, out.segments));
                    }
                } else {
                    client.on_segment(SERVER_IP, &bytes, now, &mut rng, &mut out);
                    for (h, e) in out.events {
                        events.push((true, h, e));
                    }
                    if !out.segments.is_empty() {
                        queue.push((true, out.segments));
                    }
                }
            }
        }
    }

    #[test]
    fn end_to_end_connect_and_transfer() {
        let mut client = TcpEngine::new(CLIENT_IP, TcpConfig::default());
        let mut server = TcpEngine::new(SERVER_IP, TcpConfig::default());
        server.listen(80);

        let mut rng = SimRng::seed_from_u64(1);
        let mut out = EngineOut::default();
        let ch = client.connect((SERVER_IP, 80), t(0), &mut rng, &mut out);

        let mut events = Vec::new();
        let mut accepted = Vec::new();
        pump(
            &mut client,
            &mut server,
            t(1),
            &mut events,
            &mut accepted,
            out,
            true,
        );

        assert_eq!(accepted.len(), 1);
        let sh = accepted[0];
        assert!(events.contains(&(true, ch, ConnEvent::Connected)));
        assert!(events.contains(&(false, sh, ConnEvent::Connected)));

        // Client sends; server receives.
        let mut out = EngineOut::default();
        let n = client.send(ch, b"GET / HTTP/1.0\r\n\r\n", t(2), &mut out);
        assert_eq!(n, 18);
        let mut events = Vec::new();
        pump(
            &mut client,
            &mut server,
            t(3),
            &mut events,
            &mut accepted,
            out,
            true,
        );
        let got: Vec<u8> = events
            .iter()
            .filter_map(|(_, h, e)| match e {
                ConnEvent::Data(d) if *h == sh => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(got, b"GET / HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let mut client = TcpEngine::new(CLIENT_IP, TcpConfig::default());
        let mut server = TcpEngine::new(SERVER_IP, TcpConfig::default());
        // No listener on 81.
        let mut rng = SimRng::seed_from_u64(2);
        let mut out = EngineOut::default();
        let ch = client.connect((SERVER_IP, 81), t(0), &mut rng, &mut out);

        let mut events = Vec::new();
        let mut accepted = Vec::new();
        pump(
            &mut client,
            &mut server,
            t(1),
            &mut events,
            &mut accepted,
            out,
            true,
        );
        assert!(events.contains(&(true, ch, ConnEvent::Reset("connection refused"))));
        assert_eq!(client.live_connections(), 0);
    }

    #[test]
    fn full_close_reaps_both_sides() {
        let mut client = TcpEngine::new(CLIENT_IP, TcpConfig::default());
        let mut server = TcpEngine::new(SERVER_IP, TcpConfig::default());
        server.listen(80);
        let mut rng = SimRng::seed_from_u64(3);
        let mut out = EngineOut::default();
        let ch = client.connect((SERVER_IP, 80), t(0), &mut rng, &mut out);
        let mut events = Vec::new();
        let mut accepted = Vec::new();
        pump(
            &mut client,
            &mut server,
            t(1),
            &mut events,
            &mut accepted,
            out,
            true,
        );
        let sh = accepted[0];

        // Close both directions.
        let mut out = EngineOut::default();
        client.close(ch, t(2), &mut out);
        let mut events = Vec::new();
        pump(
            &mut client,
            &mut server,
            t(3),
            &mut events,
            &mut accepted,
            out,
            true,
        );
        let mut out = EngineOut::default();
        server.close(sh, t(4), &mut out);
        let mut events2 = Vec::new();
        pump(
            &mut client,
            &mut server,
            t(5),
            &mut events2,
            &mut accepted,
            out,
            false,
        );

        assert_eq!(server.live_connections(), 0);
        // Client is in TIME-WAIT; fire its timer.
        assert_eq!(client.state(ch), Some(TcpState::TimeWait));
        let dl = client.next_deadline().unwrap();
        let mut out = EngineOut::default();
        client.on_timer(dl, &mut out);
        assert!(out.events.contains(&(ch, ConnEvent::Closed)));
        assert_eq!(client.live_connections(), 0);
    }

    #[test]
    fn distinct_ephemeral_ports() {
        let mut client = TcpEngine::new(CLIENT_IP, TcpConfig::default());
        let mut rng = SimRng::seed_from_u64(4);
        let mut out = EngineOut::default();
        let h1 = client.connect((SERVER_IP, 80), t(0), &mut rng, &mut out);
        let h2 = client.connect((SERVER_IP, 80), t(0), &mut rng, &mut out);
        let p1 = client.conn(h1).unwrap().local_port();
        let p2 = client.conn(h2).unwrap().local_port();
        assert_ne!(p1, p2);
    }

    #[test]
    fn stale_handle_operations_are_noops() {
        let mut client = TcpEngine::new(CLIENT_IP, TcpConfig::default());
        let mut out = EngineOut::default();
        let stale = TcpHandle(17);
        assert_eq!(client.send(stale, b"x", t(0), &mut out), 0);
        client.close(stale, t(0), &mut out);
        client.abort(stale, &mut out);
        assert!(out.segments.is_empty());
        assert_eq!(client.send_space(stale), 0);
        assert_eq!(client.state(stale), None);
    }

    #[test]
    fn corrupt_segment_ignored() {
        let mut server = TcpEngine::new(SERVER_IP, TcpConfig::default());
        server.listen(80);
        let mut rng = SimRng::seed_from_u64(5);
        let mut out = EngineOut::default();
        server.on_segment(
            CLIENT_IP,
            &[0xde, 0xad, 0xbe, 0xef],
            t(0),
            &mut rng,
            &mut out,
        );
        assert!(out.segments.is_empty());
        assert!(out.accepted.is_empty());
    }
}
