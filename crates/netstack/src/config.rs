//! Host and TCP tuning parameters.

use netsim::SimDuration;
use packet::MacAddr;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Parameters of the TCP implementation (1997-era BSD Reno defaults).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size announced and used.
    pub mss: usize,
    /// Send buffer size in bytes (unsent + unacknowledged).
    pub send_buf: usize,
    /// Receive window advertised (bytes, ≤ 65535 without window scaling).
    pub recv_wnd: usize,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// Delayed-ACK timeout.
    pub delack: SimDuration,
    /// Initial congestion window in segments.
    pub init_cwnd_segs: usize,
    /// Initial RTO before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// How long a connection waits in TIME-WAIT (shortened from 2MSL for
    /// simulation turnaround; benchmarks never reuse 4-tuples).
    pub time_wait: SimDuration,
    /// SYN retransmission limit before giving up.
    pub max_syn_retries: u32,
    /// Data retransmission limit before aborting.
    pub max_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf: 64 * 1024,
            recv_wnd: 48 * 1024,
            min_rto: SimDuration::from_millis(500),
            max_rto: SimDuration::from_secs(64),
            delack: SimDuration::from_millis(200),
            init_cwnd_segs: 2,
            initial_rto: SimDuration::from_secs(3),
            time_wait: SimDuration::from_secs(5),
            max_syn_retries: 8,
            max_retries: 16,
        }
    }
}

/// Static configuration of a simulated host.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host's IPv4 address.
    pub ip: Ipv4Addr,
    /// Host's MAC address.
    pub mac: MacAddr,
    /// Static ARP table: next-hop MAC per destination IP. Destinations not
    /// listed are sent to the broadcast MAC (our single-segment topologies
    /// deliver those fine).
    pub arp: HashMap<Ipv4Addr, MacAddr>,
    /// Per-frame host processing cost (driver + protocol + copy overhead).
    /// Models the paper's 75 MHz 486 laptop, which kept a 10 Mb/s Ethernet
    /// from ever running at wire speed. Applied as output pacing.
    pub cpu_per_frame: SimDuration,
    /// Maximum IP datagram size on the link (Ethernet: 1500). Larger
    /// datagrams are fragmented on output and reassembled on input.
    pub mtu: usize,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Diagnostic name.
    pub name: String,
}

impl HostConfig {
    /// A host with the given address and no CPU cost.
    pub fn new(name: &str, ip: Ipv4Addr, mac: MacAddr) -> Self {
        HostConfig {
            ip,
            mac,
            arp: HashMap::new(),
            cpu_per_frame: SimDuration::ZERO,
            mtu: 1500,
            tcp: TcpConfig::default(),
            name: name.to_string(),
        }
    }

    /// Set the per-frame CPU cost.
    pub fn with_cpu(mut self, cost: SimDuration) -> Self {
        self.cpu_per_frame = cost;
        self
    }

    /// Add a static ARP entry.
    pub fn with_arp(mut self, ip: Ipv4Addr, mac: MacAddr) -> Self {
        self.arp.insert(ip, mac);
        self
    }

    /// Replace the TCP parameters.
    pub fn with_tcp(mut self, tcp: TcpConfig) -> Self {
        self.tcp = tcp;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = HostConfig::new("h", Ipv4Addr::new(10, 0, 0, 1), MacAddr::local(1))
            .with_cpu(SimDuration::from_millis(1))
            .with_arp(Ipv4Addr::new(10, 0, 0, 2), MacAddr::local(2));
        assert_eq!(cfg.cpu_per_frame, SimDuration::from_millis(1));
        assert_eq!(cfg.arp[&Ipv4Addr::new(10, 0, 0, 2)], MacAddr::local(2));
        assert_eq!(cfg.tcp.mss, 1460);
    }

    #[test]
    fn default_tcp_sane() {
        let t = TcpConfig::default();
        assert!(t.recv_wnd <= 65535);
        assert!(t.min_rto < t.max_rto);
        assert!(t.init_cwnd_segs >= 1);
    }
}
