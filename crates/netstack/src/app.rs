//! The application programming surface of a simulated host.
//!
//! Applications (benchmarks, servers, the ping collector) are state
//! machines driven by [`AppEvent`]s; they act through the `HostApi`
//! passed to every callback. This mirrors the paper's setup where
//! *unmodified application software* runs above the socket layer — the
//! tracing and modulation machinery below is invisible to it.

use crate::tcp::TcpHandle;
use std::any::Any;
use std::net::Ipv4Addr;

/// Identifies an application registered on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub usize);

/// Everything a host can tell an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// The simulation started (fired once, at the host's start event).
    Start,
    /// An application timer set via `HostApi::set_timer` fired.
    Timer {
        /// The token passed to `set_timer`.
        token: u32,
    },
    /// A UDP datagram arrived on a bound port.
    UdpDatagram {
        /// Local port the datagram arrived on.
        port: u16,
        /// Sender address and port.
        from: (Ipv4Addr, u16),
        /// Payload.
        data: Vec<u8>,
    },
    /// An actively-opened TCP connection completed its handshake.
    TcpConnected {
        /// The connection.
        conn: TcpHandle,
    },
    /// A listener accepted a new connection (handshake complete happens
    /// separately; this fires at SYN acceptance, `TcpConnected` follows).
    TcpAccepted {
        /// The listening port.
        port: u16,
        /// The new connection.
        conn: TcpHandle,
    },
    /// In-order TCP data arrived.
    TcpData {
        /// The connection.
        conn: TcpHandle,
        /// The bytes, in order.
        data: Vec<u8>,
    },
    /// The connection's send buffer has room again after backpressure.
    TcpSendSpace {
        /// The connection.
        conn: TcpHandle,
    },
    /// Peer closed its sending direction (FIN received, all data
    /// delivered).
    TcpPeerClosed {
        /// The connection.
        conn: TcpHandle,
    },
    /// The connection is fully closed.
    TcpClosed {
        /// The connection.
        conn: TcpHandle,
    },
    /// The connection was aborted.
    TcpReset {
        /// The connection.
        conn: TcpHandle,
        /// Why.
        reason: &'static str,
    },
    /// An ICMP echo reply arrived (routed to the host's ICMP listener).
    IcmpEchoReply {
        /// Replying host.
        from: Ipv4Addr,
        /// Identifier from the request.
        ident: u16,
        /// Sequence from the request.
        seq: u16,
        /// Echoed payload (carries the send timestamp for ping).
        payload: Vec<u8>,
    },
}

/// An application running on a simulated host.
///
/// The `Api` type parameter is concretely `HostApi` — expressed as a
/// generic-free trait object boundary via the host module to keep the
/// borrow structure simple.
pub trait App: Any + Send {
    /// Handle one event.
    fn on_event(&mut self, event: AppEvent, api: &mut crate::host::HostApi<'_, '_>);

    /// Name for diagnostics.
    fn name(&self) -> &str {
        "app"
    }
}
