//! Trace records — what the collection hooks log (§3.1.1).
//!
//! The format follows the spirit of RFC 2041 ("Mobile Network Tracing"):
//! self-descriptive files carrying both packet records (with
//! protocol-specific fields) and device records (signal characteristics),
//! plus explicit accounting of records lost to kernel-buffer overrun.

use serde::{Deserialize, Serialize};

/// Direction of a traced packet relative to the traced host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    /// Transmitted by the traced host.
    Out,
    /// Received by the traced host.
    In,
}

/// Protocol-specific fields extracted from a traced packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtoInfo {
    /// ICMP echo request: the known workload's probes.
    IcmpEcho {
        /// The `id` field (the pinger's process id).
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Echo payload length — the probe "size" in the model.
        payload_len: u32,
        /// Generation timestamp carried in the payload (ns).
        gen_ts_ns: u64,
    },
    /// ICMP echo reply.
    IcmpEchoReply {
        /// The `id` field copied from the request.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Echo payload length.
        payload_len: u32,
        /// Round-trip time computed at capture from the payload
        /// timestamp (single-host clock: no synchronization needed).
        rtt_ns: u64,
    },
    /// UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Payload length.
        payload_len: u32,
    },
    /// TCP segment.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Flag byte (FIN|SYN|RST|PSH|ACK bits).
        flags: u8,
        /// Payload length.
        payload_len: u32,
    },
    /// Any other protocol.
    Other {
        /// IP protocol number.
        protocol: u8,
    },
}

/// One traced packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp (ns of simulation time).
    pub timestamp_ns: u64,
    /// Direction.
    pub dir: Dir,
    /// Bytes on the wire (full frame).
    pub wire_len: u32,
    /// Protocol fields.
    pub proto: ProtoInfo,
}

impl PacketRecord {
    /// Stable content key for the flight recorder: the parsed-record
    /// counterpart of [`obs::flight::frame_key`]. Every stage holding
    /// this record computes the same key independently; the collector
    /// ties it to the raw frame's key via `FlightRecorder::alias`.
    pub fn flight_key(&self) -> u64 {
        let (tag, a, b, c, d) = match &self.proto {
            ProtoInfo::IcmpEcho {
                ident,
                seq,
                payload_len,
                gen_ts_ns,
            } => (
                1,
                *ident as u64,
                *seq as u64,
                *payload_len as u64,
                *gen_ts_ns,
            ),
            ProtoInfo::IcmpEchoReply {
                ident,
                seq,
                payload_len,
                rtt_ns,
            } => (2, *ident as u64, *seq as u64, *payload_len as u64, *rtt_ns),
            ProtoInfo::Udp {
                src_port,
                dst_port,
                payload_len,
            } => (
                3,
                *src_port as u64,
                *dst_port as u64,
                *payload_len as u64,
                0,
            ),
            ProtoInfo::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                ..
            } => (
                4,
                *src_port as u64,
                *dst_port as u64,
                *seq as u64,
                *ack as u64,
            ),
            ProtoInfo::Other { protocol } => (5, *protocol as u64, 0, 0, 0),
        };
        obs::flight::mix_key(&[
            self.timestamp_ns,
            matches!(self.dir, Dir::In) as u64,
            self.wire_len as u64,
            tag,
            a,
            b,
            c,
            d,
        ])
    }
}

/// Periodic device-status sample (WaveLAN signal characteristics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceRecord {
    /// Sample timestamp (ns).
    pub timestamp_ns: u64,
    /// Signal level (device units).
    pub signal: u32,
    /// Signal quality (device units).
    pub quality: u32,
    /// Silence level (device units).
    pub silence: u32,
}

/// Marker emitted when the kernel buffer overran: how much was lost, by
/// record type (§3.1.2 "we are careful to keep track of the number and
/// type of lost records").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverrunRecord {
    /// When the overrun was noticed (at drain time, ns).
    pub timestamp_ns: u64,
    /// Packet records lost.
    pub lost_packets: u64,
    /// Device records lost.
    pub lost_device: u64,
}

/// Any record in a collected trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A traced packet.
    Packet(PacketRecord),
    /// A device-status sample.
    Device(DeviceRecord),
    /// An overrun marker.
    Overrun(OverrunRecord),
}

impl TraceRecord {
    /// Capture timestamp of any record kind.
    pub fn timestamp_ns(&self) -> u64 {
        match self {
            TraceRecord::Packet(p) => p.timestamp_ns,
            TraceRecord::Device(d) => d.timestamp_ns,
            TraceRecord::Overrun(o) => o.timestamp_ns,
        }
    }
}

/// A complete collected trace: self-descriptive header plus records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the traced host.
    pub host: String,
    /// Scenario name this trace was collected on.
    pub scenario: String,
    /// Trial number.
    pub trial: u32,
    /// The records, in capture order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace with the given provenance.
    pub fn new(host: &str, scenario: &str, trial: u32) -> Self {
        Trace {
            host: host.to_string(),
            scenario: scenario.to_string(),
            trial,
            records: Vec::new(),
        }
    }

    /// Iterate over packet records only.
    pub fn packets(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Packet(p) => Some(p),
            _ => None,
        })
    }

    /// Iterate over device records only.
    pub fn device_samples(&self) -> impl Iterator<Item = &DeviceRecord> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Device(d) => Some(d),
            _ => None,
        })
    }

    /// Total records lost to buffer overruns.
    pub fn lost_records(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Overrun(o) => Some(o.lost_packets + o.lost_device),
                _ => None,
            })
            .sum()
    }

    /// Duration spanned by the records.
    pub fn span_ns(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.timestamp_ns().saturating_sub(a.timestamp_ns()),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("thinkpad", "porter", 1);
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 100,
            dir: Dir::Out,
            wire_len: 98,
            proto: ProtoInfo::IcmpEcho {
                ident: 7,
                seq: 1,
                payload_len: 56,
                gen_ts_ns: 100,
            },
        }));
        t.records.push(TraceRecord::Device(DeviceRecord {
            timestamp_ns: 200,
            signal: 18,
            quality: 10,
            silence: 2,
        }));
        t.records.push(TraceRecord::Overrun(OverrunRecord {
            timestamp_ns: 300,
            lost_packets: 5,
            lost_device: 1,
        }));
        t
    }

    #[test]
    fn accessors() {
        let t = sample_trace();
        assert_eq!(t.packets().count(), 1);
        assert_eq!(t.device_samples().count(), 1);
        assert_eq!(t.lost_records(), 6);
        assert_eq!(t.span_ns(), 200);
    }

    #[test]
    fn timestamps() {
        let t = sample_trace();
        let ts: Vec<u64> = t.records.iter().map(TraceRecord::timestamp_ns).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn json_round_trip() {
        let t = sample_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_span_zero() {
        let t = Trace::new("h", "s", 0);
        assert_eq!(t.span_ns(), 0);
        assert_eq!(t.lost_records(), 0);
    }
}
