//! Compact self-descriptive binary encoding for traces and replay traces,
//! alongside the serde/JSON representation for human inspection.
//!
//! Two decoding styles share one record codec:
//!
//! * [`decode_trace`] — batch: the whole file is in memory;
//! * [`TraceDecoder`] — incremental: bytes are [fed](TraceDecoder::feed)
//!   in arbitrary chunks and records are pulled out as soon as they are
//!   complete, holding only the undecoded tail in memory. This is what
//!   the streaming file reader ([`crate::io::TraceFileStream`]) builds
//!   on.

use crate::record::{
    DeviceRecord, Dir, OverrunRecord, PacketRecord, ProtoInfo, Trace, TraceRecord,
};
use crate::replay::{QualityTuple, ReplayTrace};
use std::fmt;

/// Magic for collected traces ("Mobile Network TRace").
pub const TRACE_MAGIC: [u8; 4] = *b"MNTR";
/// Magic for replay traces.
pub const REPLAY_MAGIC: [u8; 4] = *b"MNRP";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors decoding a binary trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Ran out of bytes mid-record.
    Truncated,
    /// Unknown record/protocol tag.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadString,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "bad magic"),
            FormatError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FormatError::Truncated => write!(f, "truncated file"),
            FormatError::BadTag(t) => write!(f, "unknown tag {t}"),
            FormatError::BadString => write!(f, "invalid UTF-8 string"),
        }
    }
}

impl std::error::Error for FormatError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.data.len() {
            return Err(FormatError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, FormatError> {
        let b = <[u8; 2]>::try_from(self.take(2)?).map_err(|_| FormatError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> Result<u32, FormatError> {
        let b = <[u8; 4]>::try_from(self.take(4)?).map_err(|_| FormatError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, FormatError> {
        let b = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| FormatError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, FormatError> {
        let b = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| FormatError::Truncated)?;
        Ok(f64::from_le_bytes(b))
    }
    fn str(&mut self) -> Result<String, FormatError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FormatError::BadString)
    }
    fn done(&self) -> bool {
        self.pos >= self.data.len()
    }
}

/// Trace file header: provenance plus the declared record count.
///
/// On the wire: magic, version, `host`, `scenario`, `trial`, then the
/// record count as the final four (little-endian) bytes — the chunked
/// writer exploits that placement to patch the count in after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Hostname of the traced machine.
    pub host: String,
    /// Scenario label ("porter", "wean", ...).
    pub scenario: String,
    /// Trial number within the scenario.
    pub trial: u32,
    /// Number of records that follow the header.
    pub count: u32,
}

/// Encode a trace file header. The record count occupies the final four
/// bytes of the returned buffer.
pub fn encode_trace_header(host: &str, scenario: &str, trial: u32, count: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&TRACE_MAGIC);
    w.u16(VERSION);
    w.str(host);
    w.str(scenario);
    w.u32(trial);
    w.u32(count);
    w.buf
}

fn read_trace_header(r: &mut Reader<'_>) -> Result<TraceHeader, FormatError> {
    if r.take(4)? != TRACE_MAGIC {
        return Err(FormatError::BadMagic);
    }
    let v = r.u16()?;
    if v != VERSION {
        return Err(FormatError::BadVersion(v));
    }
    Ok(TraceHeader {
        host: r.str()?,
        scenario: r.str()?,
        trial: r.u32()?,
        count: r.u32()?,
    })
}

fn write_record(w: &mut Writer, r: &TraceRecord) {
    match r {
        TraceRecord::Packet(p) => {
            w.u8(1);
            w.u64(p.timestamp_ns);
            w.u8(match p.dir {
                Dir::Out => 0,
                Dir::In => 1,
            });
            w.u32(p.wire_len);
            match &p.proto {
                ProtoInfo::IcmpEcho {
                    ident,
                    seq,
                    payload_len,
                    gen_ts_ns,
                } => {
                    w.u8(1);
                    w.u16(*ident);
                    w.u16(*seq);
                    w.u32(*payload_len);
                    w.u64(*gen_ts_ns);
                }
                ProtoInfo::IcmpEchoReply {
                    ident,
                    seq,
                    payload_len,
                    rtt_ns,
                } => {
                    w.u8(2);
                    w.u16(*ident);
                    w.u16(*seq);
                    w.u32(*payload_len);
                    w.u64(*rtt_ns);
                }
                ProtoInfo::Udp {
                    src_port,
                    dst_port,
                    payload_len,
                } => {
                    w.u8(3);
                    w.u16(*src_port);
                    w.u16(*dst_port);
                    w.u32(*payload_len);
                }
                ProtoInfo::Tcp {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    payload_len,
                } => {
                    w.u8(4);
                    w.u16(*src_port);
                    w.u16(*dst_port);
                    w.u32(*seq);
                    w.u32(*ack);
                    w.u8(*flags);
                    w.u32(*payload_len);
                }
                ProtoInfo::Other { protocol } => {
                    w.u8(5);
                    w.u8(*protocol);
                }
            }
        }
        TraceRecord::Device(d) => {
            w.u8(2);
            w.u64(d.timestamp_ns);
            w.u32(d.signal);
            w.u32(d.quality);
            w.u32(d.silence);
        }
        TraceRecord::Overrun(o) => {
            w.u8(3);
            w.u64(o.timestamp_ns);
            w.u64(o.lost_packets);
            w.u64(o.lost_device);
        }
    }
}

/// Encode a single record exactly as it would appear inside a trace file.
pub fn encode_record(r: &TraceRecord) -> Vec<u8> {
    let mut w = Writer::new();
    write_record(&mut w, r);
    w.buf
}

fn read_record(r: &mut Reader<'_>) -> Result<TraceRecord, FormatError> {
    let tag = r.u8()?;
    let rec = match tag {
        1 => {
            let timestamp_ns = r.u64()?;
            let dir = match r.u8()? {
                0 => Dir::Out,
                1 => Dir::In,
                d => return Err(FormatError::BadTag(d)),
            };
            let wire_len = r.u32()?;
            let ptag = r.u8()?;
            let proto = match ptag {
                1 => ProtoInfo::IcmpEcho {
                    ident: r.u16()?,
                    seq: r.u16()?,
                    payload_len: r.u32()?,
                    gen_ts_ns: r.u64()?,
                },
                2 => ProtoInfo::IcmpEchoReply {
                    ident: r.u16()?,
                    seq: r.u16()?,
                    payload_len: r.u32()?,
                    rtt_ns: r.u64()?,
                },
                3 => ProtoInfo::Udp {
                    src_port: r.u16()?,
                    dst_port: r.u16()?,
                    payload_len: r.u32()?,
                },
                4 => ProtoInfo::Tcp {
                    src_port: r.u16()?,
                    dst_port: r.u16()?,
                    seq: r.u32()?,
                    ack: r.u32()?,
                    flags: r.u8()?,
                    payload_len: r.u32()?,
                },
                5 => ProtoInfo::Other { protocol: r.u8()? },
                t => return Err(FormatError::BadTag(t)),
            };
            TraceRecord::Packet(PacketRecord {
                timestamp_ns,
                dir,
                wire_len,
                proto,
            })
        }
        2 => TraceRecord::Device(DeviceRecord {
            timestamp_ns: r.u64()?,
            signal: r.u32()?,
            quality: r.u32()?,
            silence: r.u32()?,
        }),
        3 => TraceRecord::Overrun(OverrunRecord {
            timestamp_ns: r.u64()?,
            lost_packets: r.u64()?,
            lost_device: r.u64()?,
        }),
        t => return Err(FormatError::BadTag(t)),
    };
    Ok(rec)
}

/// Encode a collected trace to bytes.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut w = Writer {
        buf: encode_trace_header(
            &trace.host,
            &trace.scenario,
            trace.trial,
            trace.records.len() as u32,
        ),
    };
    for r in &trace.records {
        write_record(&mut w, r);
    }
    w.buf
}

/// Decode a collected trace.
pub fn decode_trace(data: &[u8]) -> Result<Trace, FormatError> {
    let mut r = Reader::new(data);
    let header = read_trace_header(&mut r)?;
    let count = header.count as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        records.push(read_record(&mut r)?);
    }
    Ok(Trace {
        host: header.host,
        scenario: header.scenario,
        trial: header.trial,
        records,
    })
}

/// Incremental (push) decoder for the binary trace format.
///
/// Feed it bytes in whatever chunk sizes arrive — a 64 KiB file read, a
/// network segment, one byte at a time — and pull decoded records out.
/// Only the not-yet-decoded tail is buffered, so memory stays bounded by
/// the chunk size plus one record, never the whole trace.
///
/// `next_record` returning `Ok(None)` means "need more bytes" (or, once
/// the declared record count has been decoded, "done"). A truncation
/// error is only reported by [`finish`](TraceDecoder::finish), when the
/// caller knows no more bytes are coming; mid-stream, an incomplete
/// record is simply held until its remaining bytes arrive.
///
/// # Quarantine mode
///
/// With [`quarantining`](TraceDecoder::quarantining) enabled, a
/// malformed record body (an unknown tag byte) no longer errors the
/// whole stream. The decoder instead skips forward one byte at a time
/// until a record decodes again, counting each contiguous skip run as
/// one quarantined record and every skipped byte in
/// [`quarantined_bytes`](TraceDecoder::quarantined_bytes). Header
/// corruption ([`FormatError::BadMagic`] / [`FormatError::BadVersion`])
/// is still a hard error: without a trusted header nothing downstream
/// is meaningful.
#[derive(Debug, Default)]
pub struct TraceDecoder {
    buf: Vec<u8>,
    pos: usize,
    header: Option<TraceHeader>,
    remaining: u32,
    quarantine: bool,
    skipping: bool,
    quarantined_records: u64,
    quarantined_bytes: u64,
}

impl TraceDecoder {
    /// A decoder with no bytes fed yet.
    pub fn new() -> Self {
        TraceDecoder::default()
    }

    /// Enable quarantine mode: malformed record bodies are skipped and
    /// counted instead of erroring the stream.
    pub fn quarantining(mut self) -> Self {
        self.quarantine = true;
        self
    }

    /// Contiguous runs of malformed record bytes skipped so far (each
    /// run counts as one lost record).
    pub fn quarantined_records(&self) -> u64 {
        self.quarantined_records
    }

    /// Total bytes skipped while resynchronizing after malformed
    /// records.
    pub fn quarantined_bytes(&self) -> u64 {
        self.quarantined_bytes
    }

    /// Append a chunk of the trace file.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// The file header, once enough bytes have been fed to decode it.
    pub fn header(&self) -> Option<&TraceHeader> {
        self.header.as_ref()
    }

    /// Bytes fed but not yet decoded (bounded by chunk size + one
    /// record once decoding is under way).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Have all records declared by the header been decoded?
    pub fn is_complete(&self) -> bool {
        self.header.is_some() && self.remaining == 0
    }

    /// Declare end-of-input: errors with [`FormatError::Truncated`] if
    /// the header or any declared record is still missing.
    pub fn finish(&self) -> Result<(), FormatError> {
        if self.is_complete() {
            Ok(())
        } else {
            Err(FormatError::Truncated)
        }
    }

    /// Attempt to decode the header from the buffered bytes. Returns
    /// `Ok(false)` if more bytes are needed.
    pub fn try_parse_header(&mut self) -> Result<bool, FormatError> {
        if self.header.is_some() {
            return Ok(true);
        }
        let mut r = Reader::new(&self.buf[self.pos..]);
        match read_trace_header(&mut r) {
            Ok(h) => {
                self.pos += r.pos;
                self.remaining = h.count;
                self.header = Some(h);
                self.compact();
                Ok(true)
            }
            Err(FormatError::Truncated) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Decode the next record, or `Ok(None)` if more bytes are needed
    /// (or all declared records have been produced).
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, FormatError> {
        if !self.try_parse_header()? {
            return Ok(None);
        }
        loop {
            if self.remaining == 0 {
                return Ok(None);
            }
            let mut r = Reader::new(&self.buf[self.pos..]);
            match read_record(&mut r) {
                Ok(rec) => {
                    self.pos += r.pos;
                    self.remaining -= 1;
                    self.skipping = false;
                    self.compact();
                    return Ok(Some(rec));
                }
                Err(FormatError::Truncated) => return Ok(None),
                Err(e) => {
                    if !self.quarantine {
                        return Err(e);
                    }
                    // Start of a new malformed run: charge one record
                    // against the declared count so the stream can
                    // still complete.
                    if !self.skipping {
                        self.skipping = true;
                        self.quarantined_records += 1;
                        self.remaining -= 1;
                    }
                    self.pos += 1;
                    self.quarantined_bytes += 1;
                    self.compact();
                }
            }
        }
    }

    // Reclaim consumed bytes once they dominate the buffer; amortized
    // O(1) per byte since each drain at least halves the buffer.
    fn compact(&mut self) {
        if self.pos > 0 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// How far the carry buffer is topped up per attempt while completing
/// an item that straddles a chunk boundary. Records are at most ~41
/// wire bytes, so one step almost always completes a record; headers
/// (variable-length strings) may take a few.
const CARRY_STEP: usize = 64;

/// One step of chunk decoding: a parsed item (header → `None`, record →
/// `Some`) plus the bytes it consumed, or a request for more input.
enum Parsed {
    Item(Option<TraceRecord>, usize),
    NeedMore,
}

/// Zero-copy incremental decoder for the binary trace format.
///
/// Where [`TraceDecoder`] copies every fed byte into an internal buffer
/// before parsing, this decoder parses records *directly from the
/// caller's chunk slice*. Only the bytes of an item that straddles a
/// chunk boundary are copied into a small carry buffer (bounded by one
/// record — or the header — plus a small top-up step); everything else is
/// decoded in place. That removes the per-chunk memcpy from the
/// distillation ingest path.
///
/// Decoded records are appended to a caller-owned `Vec`, so a streaming
/// reader can reuse one allocation across the whole file.
///
/// Malformed input is a hard error; for the fault-injection quarantine
/// mode, use [`TraceDecoder`].
#[derive(Debug, Default)]
pub struct ChunkDecoder {
    header: Option<TraceHeader>,
    remaining: u32,
    carry: Vec<u8>,
}

impl ChunkDecoder {
    /// A decoder with no bytes seen yet.
    pub fn new() -> Self {
        ChunkDecoder::default()
    }

    /// The file header, once enough bytes have been decoded.
    pub fn header(&self) -> Option<&TraceHeader> {
        self.header.as_ref()
    }

    /// Bytes held over from the last chunk (an incomplete item).
    pub fn buffered(&self) -> usize {
        self.carry.len()
    }

    /// Have all records declared by the header been decoded?
    pub fn is_complete(&self) -> bool {
        self.header.is_some() && self.remaining == 0
    }

    /// Declare end-of-input: errors with [`FormatError::Truncated`] if
    /// the header or any declared record is still missing.
    pub fn finish(&self) -> Result<(), FormatError> {
        if self.is_complete() {
            Ok(())
        } else {
            Err(FormatError::Truncated)
        }
    }

    /// Decode every complete record in `chunk` (plus whatever the carry
    /// buffer was holding), appending to `out`. The trailing incomplete
    /// item, if any, is carried into the next call.
    pub fn decode_chunk(
        &mut self,
        chunk: &[u8],
        out: &mut Vec<TraceRecord>,
    ) -> Result<(), FormatError> {
        let mut rest = chunk;
        if !self.carry.is_empty() {
            // Finish the straddling item: top the carry up in small
            // steps until it parses, then drain any complete items the
            // top-ups brought along.
            let mut carry = std::mem::take(&mut self.carry);
            loop {
                if self.is_complete() {
                    carry.clear();
                    break;
                }
                match self.parse_step(&carry)? {
                    Parsed::Item(rec, used) => {
                        if let Some(r) = rec {
                            out.push(r);
                        }
                        carry.drain(..used);
                        if carry.is_empty() {
                            break;
                        }
                    }
                    Parsed::NeedMore => {
                        if rest.is_empty() {
                            break;
                        }
                        let take = rest.len().min(CARRY_STEP);
                        carry.extend_from_slice(&rest[..take]);
                        rest = &rest[take..];
                    }
                }
            }
            self.carry = carry;
            if !self.carry.is_empty() {
                debug_assert!(rest.is_empty(), "carry persists only when input ran out");
                return Ok(());
            }
        }
        // Fast path: parse in place from the borrowed chunk.
        let mut pos = 0;
        while !self.is_complete() {
            match self.parse_step(&rest[pos..])? {
                Parsed::Item(rec, used) => {
                    if let Some(r) = rec {
                        out.push(r);
                    }
                    pos += used;
                }
                Parsed::NeedMore => {
                    self.carry.extend_from_slice(&rest[pos..]);
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Try to parse one item (header first, then records) from the
    /// front of `buf`.
    fn parse_step(&mut self, buf: &[u8]) -> Result<Parsed, FormatError> {
        let mut r = Reader::new(buf);
        if self.header.is_none() {
            return match read_trace_header(&mut r) {
                Ok(h) => {
                    self.remaining = h.count;
                    self.header = Some(h);
                    Ok(Parsed::Item(None, r.pos))
                }
                Err(FormatError::Truncated) => Ok(Parsed::NeedMore),
                Err(e) => Err(e),
            };
        }
        debug_assert!(self.remaining > 0, "callers check is_complete first");
        match read_record(&mut r) {
            Ok(rec) => {
                self.remaining -= 1;
                Ok(Parsed::Item(Some(rec), r.pos))
            }
            Err(FormatError::Truncated) => Ok(Parsed::NeedMore),
            Err(e) => Err(e),
        }
    }
}

/// Encode a replay trace (the list S of quality tuples) to bytes.
pub fn encode_replay(replay: &ReplayTrace) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&REPLAY_MAGIC);
    w.u16(VERSION);
    w.str(&replay.source);
    w.u32(replay.tuples.len() as u32);
    for t in &replay.tuples {
        w.u64(t.duration_ns);
        w.u64(t.latency_ns);
        w.f64(t.vb_ns_per_byte);
        w.f64(t.vr_ns_per_byte);
        w.f64(t.loss);
    }
    w.buf
}

/// Decode a replay trace.
pub fn decode_replay(data: &[u8]) -> Result<ReplayTrace, FormatError> {
    let mut r = Reader::new(data);
    if r.take(4)? != REPLAY_MAGIC {
        return Err(FormatError::BadMagic);
    }
    let v = r.u16()?;
    if v != VERSION {
        return Err(FormatError::BadVersion(v));
    }
    let source = r.str()?;
    let count = r.u32()? as usize;
    let mut tuples = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        tuples.push(QualityTuple {
            duration_ns: r.u64()?,
            latency_ns: r.u64()?,
            vb_ns_per_byte: r.f64()?,
            vr_ns_per_byte: r.f64()?,
            loss: r.f64()?,
        });
    }
    if !r.done() {
        // Trailing garbage is tolerated (future extension area), matching
        // the "flexible and extensible" goal of the trace format.
    }
    Ok(ReplayTrace { source, tuples })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("thinkpad", "wean", 2);
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 1,
            dir: Dir::Out,
            wire_len: 98,
            proto: ProtoInfo::IcmpEcho {
                ident: 9,
                seq: 4,
                payload_len: 56,
                gen_ts_ns: 1,
            },
        }));
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 5,
            dir: Dir::In,
            wire_len: 98,
            proto: ProtoInfo::IcmpEchoReply {
                ident: 9,
                seq: 4,
                payload_len: 56,
                rtt_ns: 4,
            },
        }));
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 9,
            dir: Dir::Out,
            wire_len: 600,
            proto: ProtoInfo::Tcp {
                src_port: 40001,
                dst_port: 21,
                seq: 1234,
                ack: 99,
                flags: 0x18,
                payload_len: 512,
            },
        }));
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 11,
            dir: Dir::In,
            wire_len: 142,
            proto: ProtoInfo::Udp {
                src_port: 2049,
                dst_port: 50001,
                payload_len: 100,
            },
        }));
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 12,
            dir: Dir::In,
            wire_len: 60,
            proto: ProtoInfo::Other { protocol: 89 },
        }));
        t.records.push(TraceRecord::Device(DeviceRecord {
            timestamp_ns: 15,
            signal: 18,
            quality: 10,
            silence: 2,
        }));
        t.records.push(TraceRecord::Overrun(OverrunRecord {
            timestamp_ns: 20,
            lost_packets: 3,
            lost_device: 0,
        }));
        t
    }

    #[test]
    fn trace_binary_round_trip() {
        let t = sample();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn trace_bad_magic() {
        let mut bytes = encode_trace(&sample());
        bytes[0] = b'X';
        assert_eq!(decode_trace(&bytes), Err(FormatError::BadMagic));
    }

    #[test]
    fn trace_truncation_detected() {
        let bytes = encode_trace(&sample());
        for cut in [5, 10, bytes.len() - 1] {
            assert!(decode_trace(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trace_bad_version() {
        let mut bytes = encode_trace(&sample());
        bytes[4] = 0xff;
        assert!(matches!(
            decode_trace(&bytes),
            Err(FormatError::BadVersion(_))
        ));
    }

    #[test]
    fn header_plus_records_equals_encode_trace() {
        let t = sample();
        let mut bytes = encode_trace_header(&t.host, &t.scenario, t.trial, t.records.len() as u32);
        for r in &t.records {
            bytes.extend_from_slice(&encode_record(r));
        }
        assert_eq!(bytes, encode_trace(&t));
    }

    #[test]
    fn incremental_decoder_single_byte_chunks() {
        let t = sample();
        let bytes = encode_trace(&t);
        let mut dec = TraceDecoder::new();
        let mut records = Vec::new();
        for b in &bytes {
            dec.feed(std::slice::from_ref(b));
            while let Some(rec) = dec.next_record().unwrap() {
                records.push(rec);
            }
        }
        dec.finish().unwrap();
        assert_eq!(records, t.records);
        let h = dec.header().unwrap();
        assert_eq!((h.host.as_str(), h.scenario.as_str()), ("thinkpad", "wean"));
        assert_eq!(h.count as usize, t.records.len());
    }

    #[test]
    fn incremental_decoder_bounded_buffer() {
        let mut t = Trace::new("h", "s", 1);
        for i in 0..10_000u64 {
            t.records.push(TraceRecord::Device(DeviceRecord {
                timestamp_ns: i,
                signal: 1,
                quality: 2,
                silence: 3,
            }));
        }
        let bytes = encode_trace(&t);
        let mut dec = TraceDecoder::new();
        let mut n = 0;
        let mut peak = 0;
        for chunk in bytes.chunks(256) {
            dec.feed(chunk);
            while let Some(_rec) = dec.next_record().unwrap() {
                n += 1;
            }
            peak = peak.max(dec.buffered());
        }
        dec.finish().unwrap();
        assert_eq!(n, 10_000);
        // The undecoded tail never grows past a chunk plus one record.
        assert!(peak < 256 + 64, "peak buffered {peak}");
    }

    #[test]
    fn incremental_decoder_truncation_only_at_finish() {
        let bytes = encode_trace(&sample());
        let cut = bytes.len() - 3;
        let mut dec = TraceDecoder::new();
        dec.feed(&bytes[..cut]);
        while dec.next_record().unwrap().is_some() {}
        assert!(!dec.is_complete());
        assert_eq!(dec.finish(), Err(FormatError::Truncated));
        // Feeding the missing tail completes the stream.
        dec.feed(&bytes[cut..]);
        assert!(dec.next_record().unwrap().is_some());
        dec.finish().unwrap();
    }

    #[test]
    fn incremental_decoder_bad_magic() {
        let mut dec = TraceDecoder::new();
        dec.feed(b"XXXX not a trace");
        assert_eq!(dec.next_record(), Err(FormatError::BadMagic));
    }

    #[test]
    fn chunk_decoder_matches_trace_decoder_at_every_chunk_size() {
        let t = sample();
        let bytes = encode_trace(&t);
        for chunk_size in [1usize, 2, 3, 7, 16, 64, 1024, bytes.len()] {
            let mut dec = ChunkDecoder::new();
            let mut records = Vec::new();
            for chunk in bytes.chunks(chunk_size) {
                dec.decode_chunk(chunk, &mut records).unwrap();
            }
            dec.finish().unwrap();
            assert_eq!(records, t.records, "chunk size {chunk_size}");
            let h = dec.header().unwrap();
            assert_eq!((h.host.as_str(), h.scenario.as_str()), ("thinkpad", "wean"));
        }
    }

    #[test]
    fn chunk_decoder_carry_stays_bounded() {
        let mut t = Trace::new("h", "s", 1);
        for i in 0..10_000u64 {
            t.records.push(TraceRecord::Device(DeviceRecord {
                timestamp_ns: i,
                signal: 1,
                quality: 2,
                silence: 3,
            }));
        }
        let bytes = encode_trace(&t);
        let mut dec = ChunkDecoder::new();
        let mut records = Vec::new();
        let mut peak = 0;
        for chunk in bytes.chunks(256) {
            dec.decode_chunk(chunk, &mut records).unwrap();
            peak = peak.max(dec.buffered());
        }
        dec.finish().unwrap();
        assert_eq!(records.len(), 10_000);
        // Only the straddling item is ever copied.
        assert!(peak < 64 + CARRY_STEP, "peak carry {peak}");
    }

    #[test]
    fn chunk_decoder_truncation_and_bad_magic() {
        let bytes = encode_trace(&sample());
        let mut dec = ChunkDecoder::new();
        let mut records = Vec::new();
        let cut = bytes.len() - 3;
        dec.decode_chunk(&bytes[..cut], &mut records).unwrap();
        assert!(!dec.is_complete());
        assert_eq!(dec.finish(), Err(FormatError::Truncated));
        dec.decode_chunk(&bytes[cut..], &mut records).unwrap();
        dec.finish().unwrap();
        assert_eq!(records, sample().records);

        let mut bad = ChunkDecoder::new();
        assert_eq!(
            bad.decode_chunk(b"XXXX not a trace", &mut Vec::new()),
            Err(FormatError::BadMagic)
        );
    }

    #[test]
    fn replay_binary_round_trip() {
        let r = ReplayTrace {
            source: "porter trial 3".into(),
            tuples: vec![
                QualityTuple {
                    duration_ns: 5_000_000_000,
                    latency_ns: 2_500_000,
                    vb_ns_per_byte: 4000.0,
                    vr_ns_per_byte: 800.0,
                    loss: 0.03,
                },
                QualityTuple {
                    duration_ns: 5_000_000_000,
                    latency_ns: 8_000_000,
                    vb_ns_per_byte: 5200.0,
                    vr_ns_per_byte: 790.0,
                    loss: 0.11,
                },
            ],
        };
        let bytes = encode_replay(&r);
        assert_eq!(decode_replay(&bytes).unwrap(), r);
    }

    #[test]
    fn replay_magic_distinct_from_trace() {
        let r = ReplayTrace {
            source: "x".into(),
            tuples: vec![],
        };
        let bytes = encode_replay(&r);
        assert_eq!(decode_trace(&bytes), Err(FormatError::BadMagic));
    }
}
