//! Replay traces: the distilled list `S` of network quality tuples
//! ⟨d, F, Vb, Vr, L⟩ (§3.2.1) that drives the modulation layer.

use netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One interval of invariant network behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityTuple {
    /// Interval duration `d` in nanoseconds.
    pub duration_ns: u64,
    /// One-way fixed latency `F` in nanoseconds.
    pub latency_ns: u64,
    /// Bottleneck per-byte cost `Vb` (ns per byte).
    pub vb_ns_per_byte: f64,
    /// Residual per-byte cost `Vr` (ns per byte).
    pub vr_ns_per_byte: f64,
    /// One-way loss probability `L` in [0, 1].
    pub loss: f64,
}

impl QualityTuple {
    /// Interval duration as a [`SimDuration`].
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.duration_ns)
    }

    /// Fixed latency as a [`SimDuration`].
    pub fn latency(&self) -> SimDuration {
        SimDuration::from_nanos(self.latency_ns)
    }

    /// Per-byte delay for a packet of `bytes` through the non-bottleneck
    /// part of the path: `s · Vr`.
    pub fn residual_delay(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos((self.vr_ns_per_byte * bytes as f64).round().max(0.0) as u64)
    }

    /// Bottleneck service time for a packet of `bytes`: `s · Vb`.
    pub fn bottleneck_service(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos((self.vb_ns_per_byte * bytes as f64).round().max(0.0) as u64)
    }

    /// Equivalent bottleneck bandwidth in bits per second.
    pub fn bottleneck_bandwidth_bps(&self) -> f64 {
        if self.vb_ns_per_byte <= 0.0 {
            f64::INFINITY
        } else {
            8e9 / self.vb_ns_per_byte
        }
    }

    /// Validity: finite, non-negative costs and a loss probability.
    pub fn is_valid(&self) -> bool {
        self.duration_ns > 0
            && self.vb_ns_per_byte.is_finite()
            && self.vr_ns_per_byte.is_finite()
            && self.vb_ns_per_byte >= 0.0
            && self.vr_ns_per_byte >= 0.0
            && (0.0..=1.0).contains(&self.loss)
    }
}

/// A whole replay trace: tuples played back in order. During modulation
/// the daemon may loop the list until the experiment ends.
///
/// ```
/// use tracekit::ReplayTrace;
/// use netsim::SimDuration;
///
/// let t = ReplayTrace::constant(
///     "wavelan-like", SimDuration::from_secs(30),
///     SimDuration::from_millis(2), 4000.0, 800.0, 0.01,
/// );
/// assert!(t.is_valid());
/// assert_eq!(t.total_duration(), SimDuration::from_secs(30));
/// // ~2 Mb/s bottleneck:
/// assert!((t.tuples[0].bottleneck_bandwidth_bps() - 2e6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReplayTrace {
    /// Provenance string ("porter trial 2", "synthetic step", ...).
    pub source: String,
    /// The tuples, in playback order.
    pub tuples: Vec<QualityTuple>,
}

impl ReplayTrace {
    /// An empty trace with a provenance label.
    pub fn new(source: &str) -> Self {
        ReplayTrace {
            source: source.to_string(),
            tuples: Vec::new(),
        }
    }

    /// A single-tuple constant-conditions trace spanning `span`.
    pub fn constant(
        source: &str,
        span: SimDuration,
        latency: SimDuration,
        vb_ns_per_byte: f64,
        vr_ns_per_byte: f64,
        loss: f64,
    ) -> Self {
        ReplayTrace {
            source: source.to_string(),
            tuples: vec![QualityTuple {
                duration_ns: span.as_nanos(),
                latency_ns: latency.as_nanos(),
                vb_ns_per_byte,
                vr_ns_per_byte,
                loss,
            }],
        }
    }

    /// Total duration of one pass through the trace.
    pub fn total_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.tuples.iter().map(|t| t.duration_ns).sum())
    }

    /// The tuple in effect at `elapsed` time since playback start, with
    /// looping. Returns `None` only for an empty trace.
    pub fn at(&self, elapsed: SimDuration) -> Option<&QualityTuple> {
        if self.tuples.is_empty() {
            return None;
        }
        let total = self.total_duration().as_nanos();
        if total == 0 {
            return self.tuples.first();
        }
        let mut pos = elapsed.as_nanos() % total;
        for t in &self.tuples {
            if pos < t.duration_ns {
                return Some(t);
            }
            pos -= t.duration_ns;
        }
        self.tuples.last()
    }

    /// Tuple in effect at absolute time `now` given playback began at
    /// `start`.
    pub fn at_time(&self, start: SimTime, now: SimTime) -> Option<&QualityTuple> {
        self.at(now.since(start))
    }

    /// Like [`at`](ReplayTrace::at) but without looping: past the end of
    /// the trace the final tuple stays in effect (the mobile user has
    /// stopped moving; conditions persist).
    pub fn at_clamped(&self, elapsed: SimDuration) -> Option<&QualityTuple> {
        if self.tuples.is_empty() {
            return None;
        }
        if elapsed >= self.total_duration() {
            return self.tuples.last();
        }
        self.at(elapsed)
    }

    /// Like [`at`](ReplayTrace::at) (when `looping`) or
    /// [`at_clamped`](ReplayTrace::at_clamped) (when not), but also
    /// returns the half-open window `[from_ns, until_ns)` of elapsed
    /// time over which the returned tuple stays in effect — so hot
    /// paths can cache one lookup per interval instead of scanning the
    /// tuple list per packet. `until_ns == u64::MAX` means "forever"
    /// (the clamped final tuple, or a zero-duration degenerate trace).
    pub fn window_at(
        &self,
        elapsed: SimDuration,
        looping: bool,
    ) -> Option<(QualityTuple, u64, u64)> {
        if self.tuples.is_empty() {
            return None;
        }
        let total = self.total_duration().as_nanos();
        if total == 0 {
            // Degenerate all-zero-duration trace: mirror `at` (first
            // tuple) and `at_clamped` (last tuple, since elapsed ≥ 0 =
            // total).
            let t = if looping {
                self.tuples[0]
            } else {
                *self.tuples.last().expect("non-empty")
            };
            return Some((t, 0, u64::MAX));
        }
        let e = elapsed.as_nanos();
        if !looping && e >= total {
            return Some((*self.tuples.last().expect("non-empty"), total, u64::MAX));
        }
        let pos = e % total;
        let base = e - pos; // start of the current cycle
        let mut cum = 0u64;
        for t in &self.tuples {
            if pos < cum + t.duration_ns {
                return Some((*t, base + cum, base + cum + t.duration_ns));
            }
            cum += t.duration_ns;
        }
        unreachable!("pos < total, so some tuple covers it")
    }

    /// All tuples valid?
    pub fn is_valid(&self) -> bool {
        !self.tuples.is_empty() && self.tuples.iter().all(QualityTuple::is_valid)
    }

    /// Long-term (duration-weighted) average bottleneck per-byte cost —
    /// the quantity delay compensation subtracts (§3.3, Figure 1).
    pub fn mean_vb(&self) -> f64 {
        let total: u64 = self.tuples.iter().map(|t| t.duration_ns).sum();
        if total == 0 {
            return 0.0;
        }
        self.tuples
            .iter()
            .map(|t| t.vb_ns_per_byte * t.duration_ns as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Duration-weighted average one-way latency.
    pub fn mean_latency(&self) -> SimDuration {
        let total: u64 = self.tuples.iter().map(|t| t.duration_ns).sum();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let sum: f64 = self
            .tuples
            .iter()
            .map(|t| t.latency_ns as f64 * t.duration_ns as f64)
            .sum();
        SimDuration::from_nanos((sum / total as f64).round() as u64)
    }

    /// Duration-weighted average loss rate.
    pub fn mean_loss(&self) -> f64 {
        let total: u64 = self.tuples.iter().map(|t| t.duration_ns).sum();
        if total == 0 {
            return 0.0;
        }
        self.tuples
            .iter()
            .map(|t| t.loss * t.duration_ns as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ReplayTrace {
        ReplayTrace {
            source: "t".into(),
            tuples: vec![
                QualityTuple {
                    duration_ns: 1_000,
                    latency_ns: 10,
                    vb_ns_per_byte: 4.0,
                    vr_ns_per_byte: 1.0,
                    loss: 0.0,
                },
                QualityTuple {
                    duration_ns: 3_000,
                    latency_ns: 30,
                    vb_ns_per_byte: 8.0,
                    vr_ns_per_byte: 2.0,
                    loss: 0.5,
                },
            ],
        }
    }

    #[test]
    fn lookup_by_elapsed_time_with_looping() {
        let t = trace();
        assert_eq!(t.at(SimDuration::from_nanos(0)).unwrap().latency_ns, 10);
        assert_eq!(t.at(SimDuration::from_nanos(999)).unwrap().latency_ns, 10);
        assert_eq!(t.at(SimDuration::from_nanos(1000)).unwrap().latency_ns, 30);
        assert_eq!(t.at(SimDuration::from_nanos(3999)).unwrap().latency_ns, 30);
        // Loops: 4000 → position 0.
        assert_eq!(t.at(SimDuration::from_nanos(4000)).unwrap().latency_ns, 10);
        assert_eq!(t.at(SimDuration::from_nanos(8500)).unwrap().latency_ns, 10);
    }

    #[test]
    fn weighted_means() {
        let t = trace();
        // mean Vb = (4*1000 + 8*3000) / 4000 = 7.0
        assert!((t.mean_vb() - 7.0).abs() < 1e-12);
        // mean latency = (10*1000 + 30*3000)/4000 = 25
        assert_eq!(t.mean_latency().as_nanos(), 25);
        // mean loss = (0*1000 + 0.5*3000)/4000 = 0.375
        assert!((t.mean_loss() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn tuple_helpers() {
        let q = QualityTuple {
            duration_ns: 1,
            latency_ns: 5_000_000,
            vb_ns_per_byte: 4000.0, // 2 Mb/s
            vr_ns_per_byte: 800.0,
            loss: 0.1,
        };
        assert_eq!(q.bottleneck_service(1000), SimDuration::from_millis(4));
        assert_eq!(q.residual_delay(1000), SimDuration::from_micros(800));
        assert!((q.bottleneck_bandwidth_bps() - 2_000_000.0).abs() < 1.0);
        assert!(q.is_valid());
    }

    #[test]
    fn validity_checks() {
        let mut q = QualityTuple {
            duration_ns: 1,
            latency_ns: 0,
            vb_ns_per_byte: 0.0,
            vr_ns_per_byte: 0.0,
            loss: 0.0,
        };
        assert!(q.is_valid());
        q.loss = 1.5;
        assert!(!q.is_valid());
        q.loss = 0.5;
        q.vb_ns_per_byte = -1.0;
        assert!(!q.is_valid());
        q.vb_ns_per_byte = f64::NAN;
        assert!(!q.is_valid());
        assert!(!ReplayTrace::new("empty").is_valid());
    }

    #[test]
    fn constant_constructor() {
        let t = ReplayTrace::constant(
            "c",
            SimDuration::from_secs(60),
            SimDuration::from_millis(2),
            4000.0,
            800.0,
            0.02,
        );
        assert_eq!(t.tuples.len(), 1);
        assert_eq!(t.total_duration(), SimDuration::from_secs(60));
        assert!(t.is_valid());
        assert_eq!(
            t.at(SimDuration::from_secs(120)).unwrap().latency_ns,
            2_000_000
        );
    }

    #[test]
    fn window_at_agrees_with_scans_and_bounds_are_tight() {
        let t = trace(); // durations 1000 + 3000
        for looping in [true, false] {
            for e in [0u64, 999, 1000, 3999, 4000, 8500, 123_456] {
                let elapsed = SimDuration::from_nanos(e);
                let (tuple, from, until) = t.window_at(elapsed, looping).unwrap();
                let expect = if looping {
                    *t.at(elapsed).unwrap()
                } else {
                    *t.at_clamped(elapsed).unwrap()
                };
                assert_eq!(tuple, expect, "e={e} looping={looping}");
                assert!(from <= e && e < until, "e={e} window [{from},{until})");
                // Every point of the window resolves to the same tuple.
                let probe = |x: u64| {
                    let d = SimDuration::from_nanos(x);
                    if looping {
                        *t.at(d).unwrap()
                    } else {
                        *t.at_clamped(d).unwrap()
                    }
                };
                assert_eq!(probe(from), tuple);
                if until != u64::MAX {
                    assert_eq!(probe(until - 1), tuple);
                    if looping {
                        // Looping windows are maximal: the tuple
                        // changes exactly at `until`. (Clamped lookups
                        // may split the final tuple's infinite span.)
                        assert_ne!(probe(until).latency_ns, tuple.latency_ns);
                    }
                }
            }
        }
        assert!(ReplayTrace::new("e")
            .window_at(SimDuration::ZERO, true)
            .is_none());
    }

    #[test]
    fn empty_trace_lookup() {
        let t = ReplayTrace::new("e");
        assert!(t.at(SimDuration::ZERO).is_none());
        assert_eq!(t.mean_vb(), 0.0);
        assert_eq!(t.mean_latency(), SimDuration::ZERO);
    }
}
