//! The fixed-size in-kernel circular buffer behind the tracing
//! pseudo-device (§3.1.2). When full it drops new records, counting the
//! losses by type so the drained stream can carry an explicit
//! [`OverrunRecord`].

use crate::record::{OverrunRecord, TraceRecord};
use std::collections::VecDeque;

/// A bounded record buffer with overrun accounting.
#[derive(Debug)]
pub struct RingBuffer {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    lost_packets: u64,
    lost_device: u64,
    total_pushed: u64,
}

impl RingBuffer {
    /// Buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity");
        RingBuffer {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            lost_packets: 0,
            lost_device: 0,
            total_pushed: 0,
        }
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever offered (including dropped).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Records lost since the last drain, by type (packets, device).
    pub fn lost(&self) -> (u64, u64) {
        (self.lost_packets, self.lost_device)
    }

    /// Offer a record. If the buffer is full the record is dropped and
    /// counted, mirroring a kernel buffer that cannot grow. Returns
    /// whether it was stored.
    pub fn push(&mut self, rec: TraceRecord) -> bool {
        self.total_pushed += 1;
        if self.buf.len() >= self.capacity {
            match rec {
                TraceRecord::Packet(_) => self.lost_packets += 1,
                TraceRecord::Device(_) => self.lost_device += 1,
                TraceRecord::Overrun(_) => {}
            }
            return false;
        }
        self.buf.push_back(rec);
        true
    }

    /// Remove up to `max` records. If any records were lost since the
    /// last drain, the result is prefixed with an [`OverrunRecord`]
    /// stamped `now_ns` and the loss counters reset.
    pub fn drain(&mut self, max: usize, now_ns: u64) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        if self.lost_packets > 0 || self.lost_device > 0 {
            out.push(TraceRecord::Overrun(OverrunRecord {
                timestamp_ns: now_ns,
                lost_packets: self.lost_packets,
                lost_device: self.lost_device,
            }));
            self.lost_packets = 0;
            self.lost_device = 0;
        }
        while out.len() < max {
            match self.buf.pop_front() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }

    /// Discard everything (used when the pseudo-device is closed).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.lost_packets = 0;
        self.lost_device = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DeviceRecord, Dir, PacketRecord, ProtoInfo};

    fn pkt(ts: u64) -> TraceRecord {
        TraceRecord::Packet(PacketRecord {
            timestamp_ns: ts,
            dir: Dir::Out,
            wire_len: 64,
            proto: ProtoInfo::Other { protocol: 1 },
        })
    }

    fn dev(ts: u64) -> TraceRecord {
        TraceRecord::Device(DeviceRecord {
            timestamp_ns: ts,
            signal: 10,
            quality: 5,
            silence: 2,
        })
    }

    #[test]
    fn push_and_drain_in_order() {
        let mut rb = RingBuffer::new(10);
        for i in 0..5 {
            assert!(rb.push(pkt(i)));
        }
        assert_eq!(rb.len(), 5);
        let out = rb.drain(10, 99);
        assert_eq!(out.len(), 5);
        let ts: Vec<u64> = out.iter().map(TraceRecord::timestamp_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
        assert!(rb.is_empty());
    }

    #[test]
    fn overrun_counts_by_type_and_reports_once() {
        let mut rb = RingBuffer::new(2);
        assert!(rb.push(pkt(0)));
        assert!(rb.push(pkt(1)));
        assert!(!rb.push(pkt(2)));
        assert!(!rb.push(dev(3)));
        assert!(!rb.push(dev(4)));
        assert_eq!(rb.lost(), (1, 2));
        let out = rb.drain(10, 50);
        match &out[0] {
            TraceRecord::Overrun(o) => {
                assert_eq!(o.timestamp_ns, 50);
                assert_eq!(o.lost_packets, 1);
                assert_eq!(o.lost_device, 2);
            }
            other => panic!("expected overrun first, got {other:?}"),
        }
        assert_eq!(out.len(), 3);
        // Counters reset: next drain carries no overrun.
        rb.push(pkt(5));
        let out = rb.drain(10, 60);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], TraceRecord::Packet(_)));
    }

    #[test]
    fn partial_drain_respects_max() {
        let mut rb = RingBuffer::new(100);
        for i in 0..10 {
            rb.push(pkt(i));
        }
        let first = rb.drain(4, 0);
        assert_eq!(first.len(), 4);
        assert_eq!(rb.len(), 6);
        let rest = rb.drain(100, 0);
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn clear_resets_everything() {
        let mut rb = RingBuffer::new(1);
        rb.push(pkt(0));
        rb.push(pkt(1)); // lost
        rb.clear();
        assert!(rb.is_empty());
        assert_eq!(rb.lost(), (0, 0));
        assert_eq!(rb.total_pushed(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        RingBuffer::new(0);
    }
}
