//! The in-kernel collection hook: a [`DeviceTap`] that parses every frame
//! crossing the device boundary into a [`PacketRecord`] and periodically
//! samples device signal status (§3.1).

use crate::pseudodev::PseudoDevice;
use crate::record::{DeviceRecord, Dir, PacketRecord, ProtoInfo, TraceRecord};
use netsim::SimTime;
use netstack::{DeviceTap, Direction};
use obs::flight::{frame_key, FlightHandle, Stage};
use packet::{EtherHeader, EtherType, IcmpMessage, IpProtocol, Ipv4Header, TcpHeader, UdpHeader};

/// A closure the collector calls to read the device's current signal
/// status: returns (signal, quality, silence) in device units.
pub type SignalSource = Box<dyn Fn() -> (u32, u32, u32) + Send>;

/// The device-layer trace collection hook.
pub struct Collector {
    dev: PseudoDevice,
    signal_source: Option<SignalSource>,
    parse_failures: u64,
    flight: Option<FlightHandle>,
}

impl Collector {
    /// Collector writing into `dev` (shared with the drain daemon).
    pub fn new(dev: PseudoDevice) -> Self {
        Collector {
            dev,
            signal_source: None,
            parse_failures: 0,
            flight: None,
        }
    }

    /// Attach a device signal source (the WaveLAN meter).
    pub fn with_signal_source(mut self, src: SignalSource) -> Self {
        self.signal_source = Some(src);
        self
    }

    /// Attach a flight recorder: each observed frame is assigned its
    /// [`obs::flight::PacketId`] here (collection is where a packet's
    /// identity is born), its parsed-record key is aliased to the same
    /// id, and a `collect` instant is stamped.
    pub fn with_flight(mut self, flight: FlightHandle) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Frames that could not be parsed into a record.
    pub fn parse_failures(&self) -> u64 {
        self.parse_failures
    }

    /// Parse one frame into a packet record. Public for tests and for the
    /// offline trace tools.
    pub fn parse_frame(bytes: &[u8], dir: Dir, now: SimTime) -> Option<PacketRecord> {
        let (eh, l3) = EtherHeader::parse(bytes).ok()?;
        if eh.ethertype != EtherType::Ipv4 {
            return None;
        }
        let (ih, l4) = Ipv4Header::parse(l3).ok()?;
        if ih.is_fragment() {
            // Fragments carry no (complete) transport header; record the
            // wire bytes under the raw protocol number.
            return Some(PacketRecord {
                timestamp_ns: now.as_nanos(),
                dir,
                wire_len: bytes.len() as u32,
                proto: ProtoInfo::Other {
                    protocol: u8::from(ih.protocol),
                },
            });
        }
        let proto = match ih.protocol {
            IpProtocol::Icmp => {
                let msg = IcmpMessage::parse(l4).ok()?;
                match msg {
                    IcmpMessage::Echo {
                        ident,
                        seq,
                        payload,
                    } => {
                        let gen_ts_ns = payload
                            .get(..8)
                            .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
                            .unwrap_or(0);
                        ProtoInfo::IcmpEcho {
                            ident,
                            seq,
                            payload_len: payload.len() as u32,
                            gen_ts_ns,
                        }
                    }
                    IcmpMessage::EchoReply {
                        ident,
                        seq,
                        payload,
                    } => {
                        // Round-trip time from the timestamp the sender
                        // placed in the payload — all timestamps from one
                        // host, so no clock synchronization needed.
                        let gen = payload
                            .get(..8)
                            .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
                            .unwrap_or(0);
                        ProtoInfo::IcmpEchoReply {
                            ident,
                            seq,
                            payload_len: payload.len() as u32,
                            rtt_ns: now.as_nanos().saturating_sub(gen),
                        }
                    }
                    IcmpMessage::Other { icmp_type, .. } => ProtoInfo::Other {
                        protocol: icmp_type,
                    },
                }
            }
            IpProtocol::Udp => {
                let (uh, payload) = UdpHeader::parse(l4, ih.src, ih.dst).ok()?;
                ProtoInfo::Udp {
                    src_port: uh.src_port,
                    dst_port: uh.dst_port,
                    payload_len: payload.len() as u32,
                }
            }
            IpProtocol::Tcp => {
                let (th, payload) = TcpHeader::parse(l4, ih.src, ih.dst).ok()?;
                let flags = (th.flags.fin as u8)
                    | (th.flags.syn as u8) << 1
                    | (th.flags.rst as u8) << 2
                    | (th.flags.psh as u8) << 3
                    | (th.flags.ack as u8) << 4;
                ProtoInfo::Tcp {
                    src_port: th.src_port,
                    dst_port: th.dst_port,
                    seq: th.seq,
                    ack: th.ack,
                    flags,
                    payload_len: payload.len() as u32,
                }
            }
            IpProtocol::Other(p) => ProtoInfo::Other { protocol: p },
        };
        Some(PacketRecord {
            timestamp_ns: now.as_nanos(),
            dir,
            wire_len: bytes.len() as u32,
            proto,
        })
    }
}

impl DeviceTap for Collector {
    fn on_frame(&mut self, dir: Direction, bytes: &[u8], now: SimTime) {
        let d = match dir {
            Direction::Outbound => Dir::Out,
            Direction::Inbound => Dir::In,
        };
        match Collector::parse_frame(bytes, d, now) {
            Some(rec) => {
                if let Some(fl) = &self.flight {
                    fl.with(|r| {
                        let id = r.assign(frame_key(bytes));
                        r.alias(rec.flight_key(), id);
                        r.instant(
                            Stage::Collect,
                            "collect",
                            Some(frame_key(bytes)),
                            None,
                            now.as_nanos(),
                            describe(&rec),
                        );
                    });
                }
                self.dev.offer(TraceRecord::Packet(rec));
            }
            None => self.parse_failures += 1,
        }
    }

    fn on_poll(&mut self, now: SimTime) {
        if let Some(src) = &self.signal_source {
            let (signal, quality, silence) = src();
            self.dev.offer(TraceRecord::Device(DeviceRecord {
                timestamp_ns: now.as_nanos(),
                signal,
                quality,
                silence,
            }));
        }
    }
}

/// Short deterministic description for flight-recorder details.
fn describe(rec: &PacketRecord) -> String {
    let dir = match rec.dir {
        Dir::Out => "out",
        Dir::In => "in",
    };
    match &rec.proto {
        ProtoInfo::IcmpEcho { ident, seq, .. } => format!("{dir} echo id={ident} seq={seq}"),
        ProtoInfo::IcmpEchoReply { ident, seq, .. } => {
            format!("{dir} echo-reply id={ident} seq={seq}")
        }
        ProtoInfo::Udp {
            src_port, dst_port, ..
        } => format!("{dir} udp {src_port}->{dst_port}"),
        ProtoInfo::Tcp {
            src_port, dst_port, ..
        } => format!("{dir} tcp {src_port}->{dst_port}"),
        ProtoInfo::Other { protocol } => format!("{dir} proto {protocol}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn echo_frame(seq: u16, ts: u64) -> Vec<u8> {
        let mut payload = vec![0u8; 64];
        payload[..8].copy_from_slice(&ts.to_be_bytes());
        let icmp = IcmpMessage::Echo {
            ident: 42,
            seq,
            payload,
        }
        .emit();
        let ip = Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            protocol: IpProtocol::Icmp,
            ttl: 64,
            ident: 1,
            total_len: 0,
            more_fragments: false,
            frag_offset: 0,
        }
        .emit(&icmp);
        EtherHeader {
            dst: packet::MacAddr::local(2),
            src: packet::MacAddr::local(1),
            ethertype: EtherType::Ipv4,
        }
        .emit(&ip)
    }

    #[test]
    fn parses_echo_with_generation_timestamp() {
        let frame = echo_frame(3, 12345);
        let rec = Collector::parse_frame(&frame, Dir::Out, SimTime::from_nanos(12345)).unwrap();
        match rec.proto {
            ProtoInfo::IcmpEcho {
                ident,
                seq,
                payload_len,
                gen_ts_ns,
            } => {
                assert_eq!((ident, seq), (42, 3));
                assert_eq!(payload_len, 64);
                assert_eq!(gen_ts_ns, 12345);
            }
            other => panic!("wrong proto {other:?}"),
        }
        assert_eq!(rec.wire_len as usize, frame.len());
    }

    #[test]
    fn reply_rtt_computed_from_payload_timestamp() {
        let mut payload = vec![0u8; 64];
        payload[..8].copy_from_slice(&1_000u64.to_be_bytes());
        let icmp = IcmpMessage::EchoReply {
            ident: 42,
            seq: 3,
            payload,
        }
        .emit();
        let ip = Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            protocol: IpProtocol::Icmp,
            ttl: 64,
            ident: 1,
            total_len: 0,
            more_fragments: false,
            frag_offset: 0,
        }
        .emit(&icmp);
        let frame = EtherHeader {
            dst: packet::MacAddr::local(1),
            src: packet::MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        }
        .emit(&ip);
        let rec = Collector::parse_frame(&frame, Dir::In, SimTime::from_nanos(5_000)).unwrap();
        match rec.proto {
            ProtoInfo::IcmpEchoReply { rtt_ns, .. } => assert_eq!(rtt_ns, 4_000),
            other => panic!("wrong proto {other:?}"),
        }
    }

    #[test]
    fn tap_pushes_into_open_device_only() {
        let dev = PseudoDevice::new(16);
        let mut c = Collector::new(dev.clone());
        let frame = echo_frame(1, 0);
        c.on_frame(Direction::Outbound, &frame, SimTime::from_nanos(10));
        assert_eq!(dev.buffered(), 0); // closed
        dev.open();
        c.on_frame(Direction::Outbound, &frame, SimTime::from_nanos(20));
        assert_eq!(dev.buffered(), 1);
    }

    #[test]
    fn poll_emits_device_records() {
        let dev = PseudoDevice::new(16);
        dev.open();
        let mut c = Collector::new(dev.clone()).with_signal_source(Box::new(|| (17, 9, 2)));
        c.on_poll(SimTime::from_nanos(500));
        let recs = dev.read(10, 501);
        assert_eq!(recs.len(), 1);
        match &recs[0] {
            TraceRecord::Device(d) => {
                assert_eq!((d.signal, d.quality, d.silence), (17, 9, 2));
                assert_eq!(d.timestamp_ns, 500);
            }
            other => panic!("expected device record, got {other:?}"),
        }
    }

    #[test]
    fn garbage_counts_as_parse_failure() {
        let dev = PseudoDevice::new(16);
        dev.open();
        let mut c = Collector::new(dev.clone());
        c.on_frame(Direction::Inbound, &[1, 2, 3], SimTime::ZERO);
        assert_eq!(c.parse_failures(), 1);
        assert_eq!(dev.buffered(), 0);
    }
}
