//! The user-level collection daemon (§3.1.2): periodically extracts
//! records from the tracing pseudo-device and appends them to the
//! on-"disk" trace.

use crate::pseudodev::PseudoDevice;
use crate::record::Trace;
use netsim::SimDuration;
use netstack::{App, AppEvent, HostApi};

const DRAIN_TIMER: u32 = 0xD5A1;

/// The drain daemon, run as an application on the traced host.
pub struct CollectionDaemon {
    dev: PseudoDevice,
    /// The accumulated trace ("written to disk").
    pub trace: Trace,
    /// Drain cadence.
    pub interval: SimDuration,
    /// Max records extracted per drain.
    pub batch: usize,
    /// Open the pseudo-device (enable tracing) at Start.
    pub open_on_start: bool,
}

impl CollectionDaemon {
    /// Daemon draining `dev` into a trace labeled with provenance.
    pub fn new(dev: PseudoDevice, host: &str, scenario: &str, trial: u32) -> Self {
        CollectionDaemon {
            dev,
            trace: Trace::new(host, scenario, trial),
            interval: SimDuration::from_millis(100),
            batch: 1024,
            open_on_start: true,
        }
    }

    fn drain(&mut self, now_ns: u64) {
        loop {
            let recs = self.dev.read(self.batch, now_ns);
            let done = recs.len() < self.batch;
            self.trace.records.extend(recs);
            if done {
                break;
            }
        }
    }

    /// Final drain + snapshot of the collected trace.
    pub fn finish(&mut self, now_ns: u64) -> Trace {
        self.drain(now_ns);
        self.trace.clone()
    }
}

impl App for CollectionDaemon {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                if self.open_on_start {
                    self.dev.open();
                }
                api.set_timer(self.interval, DRAIN_TIMER);
            }
            AppEvent::Timer { token } if token == DRAIN_TIMER => {
                self.drain(api.now().as_nanos());
                api.set_timer(self.interval, DRAIN_TIMER);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "trace-daemon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Dir, PacketRecord, ProtoInfo, TraceRecord};

    fn pkt(ts: u64) -> TraceRecord {
        TraceRecord::Packet(PacketRecord {
            timestamp_ns: ts,
            dir: Dir::Out,
            wire_len: 64,
            proto: ProtoInfo::Other { protocol: 1 },
        })
    }

    #[test]
    fn drain_collects_everything_in_order() {
        let dev = PseudoDevice::new(4096);
        dev.open();
        let mut d = CollectionDaemon::new(dev.clone(), "h", "s", 1);
        d.batch = 16;
        for i in 0..100 {
            dev.offer(pkt(i));
        }
        d.drain(1000);
        assert_eq!(d.trace.records.len(), 100);
        let ts: Vec<u64> = d.trace.records.iter().map(|r| r.timestamp_ns()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn finish_snapshots() {
        let dev = PseudoDevice::new(64);
        dev.open();
        let mut d = CollectionDaemon::new(dev.clone(), "h", "s", 2);
        dev.offer(pkt(5));
        let t = d.finish(10);
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.trial, 2);
        assert_eq!(t.host, "h");
    }

    #[test]
    fn overrun_marker_lands_in_trace() {
        let dev = PseudoDevice::new(2);
        dev.open();
        let mut d = CollectionDaemon::new(dev.clone(), "h", "s", 1);
        for i in 0..10 {
            dev.offer(pkt(i));
        }
        d.drain(99);
        assert!(matches!(d.trace.records[0], TraceRecord::Overrun(_)));
        assert_eq!(d.trace.lost_records(), 8);
    }
}
