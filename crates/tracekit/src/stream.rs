//! Pull-based streaming abstractions for the trace pipeline.
//!
//! The paper's dataflow is inherently streaming: the collection daemon
//! drains a fixed ring buffer (§3.1.2) while the distiller is "a simple
//! one-pass filter" (§3.2) feeding the modulation layer. These traits
//! make that shape explicit:
//!
//! * [`RecordStream`] — a pull source of [`TraceRecord`]s: an in-memory
//!   trace ([`VecStream`]), the tracing pseudo-device ([`DeviceStream`]),
//!   or a chunked binary file ([`crate::io::TraceFileStream`]);
//! * [`TupleSink`] — a push sink for distilled ⟨d, F, Vb, Vr, L⟩
//!   [`QualityTuple`]s: a plain `Vec`, a [`ReplayTrace`], or the
//!   modulation layer's live tuple feed.
//!
//! The batch API (`Trace` in, `ReplayTrace` out) survives as a thin
//! adapter over these, so figures and ablations stay byte-identical.

use crate::format::FormatError;
use crate::pseudodev::PseudoDevice;
use crate::record::{Trace, TraceRecord};
use crate::replay::{QualityTuple, ReplayTrace};
use std::collections::VecDeque;
use std::fmt;

/// Errors produced while pulling records from a stream: a malformed
/// encoding, or the I/O layer underneath it failing.
#[derive(Debug)]
pub enum StreamError {
    /// The byte stream did not decode as a valid trace.
    Format(FormatError),
    /// Reading the underlying source failed.
    Io(std::io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Format(e) => write!(f, "format error: {e}"),
            StreamError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Format(e) => Some(e),
            StreamError::Io(e) => Some(e),
        }
    }
}

impl From<FormatError> for StreamError {
    fn from(e: FormatError) -> Self {
        StreamError::Format(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<StreamError> for std::io::Error {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Io(e) => e,
            StreamError::Format(e) => std::io::Error::new(std::io::ErrorKind::InvalidData, e),
        }
    }
}

/// A pull source of trace records.
///
/// `Ok(None)` means the source has (currently) nothing more to give.
/// For finite sources (files, in-memory traces) that is end-of-stream;
/// for live sources ([`DeviceStream`]) it only means "nothing buffered
/// right now" and the caller decides when collection is over.
pub trait RecordStream {
    /// Pull the next record.
    fn next_record(&mut self) -> Result<Option<TraceRecord>, StreamError>;
}

/// A push sink for distilled quality tuples.
///
/// Implemented by `Vec<QualityTuple>` (collect), [`ReplayTrace`]
/// (batch result), and the modulation layer's live feed — so the
/// incremental distiller can emit tuples without caring whether they
/// are being materialized or consumed concurrently.
pub trait TupleSink {
    /// Accept one distilled tuple.
    fn push_tuple(&mut self, tuple: QualityTuple);
}

impl TupleSink for Vec<QualityTuple> {
    fn push_tuple(&mut self, tuple: QualityTuple) {
        self.push(tuple);
    }
}

impl TupleSink for ReplayTrace {
    fn push_tuple(&mut self, tuple: QualityTuple) {
        self.tuples.push(tuple);
    }
}

impl<S: TupleSink + ?Sized> TupleSink for &mut S {
    fn push_tuple(&mut self, tuple: QualityTuple) {
        (**self).push_tuple(tuple);
    }
}

/// A finite stream over an owned record sequence — the adapter that
/// lets batch `Trace`s flow through the streaming pipeline.
#[derive(Debug)]
pub struct VecStream {
    records: std::vec::IntoIter<TraceRecord>,
}

impl VecStream {
    /// Stream over a record vector.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        VecStream {
            records: records.into_iter(),
        }
    }

    /// Stream over a collected trace's records.
    pub fn from_trace(trace: Trace) -> Self {
        VecStream::new(trace.records)
    }
}

impl RecordStream for VecStream {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        Ok(self.records.next())
    }
}

/// A finite stream over borrowed records (clones each one out).
#[derive(Debug)]
pub struct SliceStream<'a> {
    records: std::slice::Iter<'a, TraceRecord>,
}

impl<'a> SliceStream<'a> {
    /// Stream over a borrowed record slice.
    pub fn new(records: &'a [TraceRecord]) -> Self {
        SliceStream {
            records: records.iter(),
        }
    }
}

impl RecordStream for SliceStream<'_> {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        Ok(self.records.next().cloned())
    }
}

/// A live stream draining the tracing [`PseudoDevice`] — the user-level
/// side of §3.1.2, but feeding a consumer directly instead of writing
/// records to disk first.
///
/// `Ok(None)` is non-terminal here: it means the ring buffer is empty
/// *right now*. The driver advances [`set_now`](DeviceStream::set_now)
/// as simulated time progresses (drain timestamps mark any overrun
/// records the ring prepends) and keeps pulling until it decides
/// collection is over.
#[derive(Debug)]
pub struct DeviceStream {
    dev: PseudoDevice,
    pending: VecDeque<TraceRecord>,
    batch: usize,
    now_ns: u64,
}

impl DeviceStream {
    /// Stream draining `dev` in batches of `batch` records.
    pub fn new(dev: PseudoDevice, batch: usize) -> Self {
        DeviceStream {
            dev,
            pending: VecDeque::new(),
            batch: batch.max(1),
            now_ns: 0,
        }
    }

    /// Advance the drain clock (stamps overrun markers).
    pub fn set_now(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Records drained from the ring but not yet pulled.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

impl RecordStream for DeviceStream {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        if self.pending.is_empty() {
            self.pending.extend(self.dev.read(self.batch, self.now_ns));
        }
        Ok(self.pending.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Dir, PacketRecord, ProtoInfo};

    fn pkt(ts: u64) -> TraceRecord {
        TraceRecord::Packet(PacketRecord {
            timestamp_ns: ts,
            dir: Dir::In,
            wire_len: 60,
            proto: ProtoInfo::Other { protocol: 6 },
        })
    }

    #[test]
    fn vec_stream_yields_in_order() {
        let mut s = VecStream::new(vec![pkt(1), pkt(2), pkt(3)]);
        let mut ts = Vec::new();
        while let Some(r) = s.next_record().expect("stream ok") {
            ts.push(r.timestamp_ns());
        }
        assert_eq!(ts, vec![1, 2, 3]);
        assert!(s.next_record().expect("stream ok").is_none());
    }

    #[test]
    fn slice_stream_matches_vec_stream() {
        let records = vec![pkt(5), pkt(9)];
        let mut s = SliceStream::new(&records);
        assert_eq!(
            s.next_record()
                .expect("stream ok")
                .expect("record present")
                .timestamp_ns(),
            5
        );
        assert_eq!(
            s.next_record()
                .expect("stream ok")
                .expect("record present")
                .timestamp_ns(),
            9
        );
        assert!(s.next_record().expect("stream ok").is_none());
    }

    #[test]
    fn tuple_sink_impls_collect() {
        let q = QualityTuple {
            duration_ns: 1,
            latency_ns: 2,
            vb_ns_per_byte: 3.0,
            vr_ns_per_byte: 4.0,
            loss: 0.5,
        };
        let mut v: Vec<QualityTuple> = Vec::new();
        v.push_tuple(q);
        assert_eq!(v.len(), 1);
        let mut r = ReplayTrace::new("sink");
        r.push_tuple(q);
        assert_eq!(r.tuples.len(), 1);
    }

    #[test]
    fn device_stream_drains_live() {
        let dev = PseudoDevice::new(16);
        dev.open();
        let mut s = DeviceStream::new(dev.clone(), 4);
        // Empty now — non-terminal None.
        assert!(s.next_record().expect("stream ok").is_none());
        dev.offer(pkt(1));
        dev.offer(pkt(2));
        s.set_now(10);
        assert_eq!(
            s.next_record()
                .expect("stream ok")
                .expect("record present")
                .timestamp_ns(),
            1
        );
        assert_eq!(
            s.next_record()
                .expect("stream ok")
                .expect("record present")
                .timestamp_ns(),
            2
        );
        assert!(s.next_record().expect("stream ok").is_none());
        // More records arrive later; the stream picks them up.
        dev.offer(pkt(3));
        assert_eq!(
            s.next_record()
                .expect("stream ok")
                .expect("record present")
                .timestamp_ns(),
            3
        );
    }

    #[test]
    fn device_stream_surfaces_overruns() {
        let dev = PseudoDevice::new(2);
        dev.open();
        let mut s = DeviceStream::new(dev.clone(), 8);
        for i in 0..5 {
            dev.offer(pkt(i));
        }
        s.set_now(99);
        let first = s.next_record().expect("stream ok").expect("record present");
        assert!(matches!(first, TraceRecord::Overrun(_)));
    }
}
