//! The tracing pseudo-device (§3.1.2): opening it enables tracing,
//! closing it disables tracing, reading extracts buffered records. The
//! kernel side (the collector hook) and the user side (the daemon) share
//! it through a handle.

use crate::record::TraceRecord;
use crate::ringbuf::RingBuffer;
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug)]
struct DevState {
    ring: RingBuffer,
    open: bool,
}

/// A shared handle to the tracing pseudo-device.
#[derive(Debug, Clone)]
pub struct PseudoDevice {
    state: Arc<Mutex<DevState>>,
}

impl PseudoDevice {
    /// Create a device backed by a ring of `capacity` records.
    pub fn new(capacity: usize) -> Self {
        PseudoDevice {
            state: Arc::new(Mutex::new(DevState {
                ring: RingBuffer::new(capacity),
                open: false,
            })),
        }
    }

    /// Open the device: tracing becomes enabled.
    pub fn open(&self) {
        self.state.lock().open = true;
    }

    /// Close the device: tracing disabled, buffer discarded.
    pub fn close(&self) {
        let mut s = self.state.lock();
        s.open = false;
        s.ring.clear();
    }

    /// Is tracing currently enabled?
    pub fn is_open(&self) -> bool {
        self.state.lock().open
    }

    /// Kernel side: offer a record (no-op while closed). Returns whether
    /// it was buffered.
    pub fn offer(&self, rec: TraceRecord) -> bool {
        let mut s = self.state.lock();
        if !s.open {
            return false;
        }
        s.ring.push(rec)
    }

    /// User side: read up to `max` records (an overrun marker may be
    /// prepended, see [`RingBuffer::drain`]).
    pub fn read(&self, max: usize, now_ns: u64) -> Vec<TraceRecord> {
        self.state.lock().ring.drain(max, now_ns)
    }

    /// Records currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.state.lock().ring.len()
    }

    /// Total records ever offered while open.
    pub fn total_offered(&self) -> u64 {
        self.state.lock().ring.total_pushed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Dir, PacketRecord, ProtoInfo};

    fn pkt(ts: u64) -> TraceRecord {
        TraceRecord::Packet(PacketRecord {
            timestamp_ns: ts,
            dir: Dir::In,
            wire_len: 60,
            proto: ProtoInfo::Other { protocol: 6 },
        })
    }

    #[test]
    fn closed_device_ignores_records() {
        let dev = PseudoDevice::new(8);
        assert!(!dev.offer(pkt(1)));
        assert_eq!(dev.buffered(), 0);
        dev.open();
        assert!(dev.offer(pkt(2)));
        assert_eq!(dev.buffered(), 1);
    }

    #[test]
    fn close_discards_buffer() {
        let dev = PseudoDevice::new(8);
        dev.open();
        dev.offer(pkt(1));
        dev.close();
        assert!(!dev.is_open());
        assert_eq!(dev.buffered(), 0);
        assert!(dev.read(10, 0).is_empty());
    }

    #[test]
    fn shared_handles_see_same_state() {
        let dev = PseudoDevice::new(8);
        let clone = dev.clone();
        dev.open();
        assert!(clone.is_open());
        clone.offer(pkt(1));
        assert_eq!(dev.read(10, 0).len(), 1);
    }
}
