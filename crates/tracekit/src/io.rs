//! File I/O for traces and replay traces: binary (`.mntr` / `.mnrp`) or
//! JSON (`.json`), chosen by extension.
//!
//! The binary paths are streaming end to end: [`write_trace`] appends
//! records through a [`ChunkedTraceWriter`] and [`read_trace`] pulls
//! them back through a [`TraceFileStream`], so neither needs the
//! encoded file in memory. The chunked forms are public so callers can
//! write records as they are collected and replay traces far longer
//! than memory. JSON stays whole-file (it exists for human inspection,
//! not scale).

use crate::format::{
    decode_replay, encode_record, encode_replay, encode_trace_header, ChunkDecoder, TraceDecoder,
    TraceHeader,
};
use crate::record::{Trace, TraceRecord};
use crate::replay::ReplayTrace;
use crate::stream::{RecordStream, StreamError};
use std::collections::VecDeque;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

fn is_json(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "json")
}

fn invalid<E: std::error::Error + Send + Sync + 'static>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn json_only(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{what} is binary-only; JSON traces are whole-file"),
    )
}

/// Incremental writer for the binary trace format: the header goes out
/// first with a zero record count, records are appended as they arrive,
/// and [`finish`](ChunkedTraceWriter::finish) seeks back to patch the
/// true count in. The resulting file is byte-identical to
/// [`write_trace`] on the equivalent batch [`Trace`].
#[derive(Debug)]
pub struct ChunkedTraceWriter {
    out: io::BufWriter<fs::File>,
    count_offset: u64,
    count: u32,
}

impl ChunkedTraceWriter {
    /// Start a binary trace file at `path` with the given provenance.
    pub fn create(path: &Path, host: &str, scenario: &str, trial: u32) -> io::Result<Self> {
        if is_json(path) {
            return Err(json_only("chunked trace writing"));
        }
        let header = encode_trace_header(host, scenario, trial, 0);
        let count_offset = (header.len() - 4) as u64;
        let mut out = io::BufWriter::new(fs::File::create(path)?);
        out.write_all(&header)?;
        Ok(ChunkedTraceWriter {
            out,
            count_offset,
            count: 0,
        })
    }

    /// Append one record.
    pub fn push_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        if self.count == u32::MAX {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "trace record count overflow",
            ));
        }
        self.out.write_all(&encode_record(rec))?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Patch the record count into the header and flush. Returns the
    /// final record count.
    pub fn finish(mut self) -> io::Result<u32> {
        self.out.seek(SeekFrom::Start(self.count_offset))?;
        self.out.write_all(&self.count.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.count)
    }
}

// Which decoder a `TraceFileStream` runs on. The zero-copy
// `ChunkDecoder` is the default; quarantine mode needs the buffering
// `TraceDecoder` because resynchronizing after a malformed record can
// scan arbitrarily far across chunk boundaries.
#[derive(Debug)]
enum FileDecoder {
    Chunk(ChunkDecoder),
    Quarantine(TraceDecoder),
}

/// Streaming reader for binary trace files: a [`RecordStream`] that
/// reads the file in fixed-size chunks through a zero-copy
/// [`ChunkDecoder`], so memory stays bounded by the chunk size
/// regardless of trace length and only record bytes straddling a chunk
/// boundary are ever copied. [`quarantining`](TraceFileStream::quarantining)
/// switches to the buffering [`TraceDecoder`] path.
#[derive(Debug)]
pub struct TraceFileStream {
    file: fs::File,
    decoder: FileDecoder,
    chunk: Vec<u8>,
    ready: VecDeque<TraceRecord>,
    batch: Vec<TraceRecord>,
    eof: bool,
}

impl TraceFileStream {
    /// Default read chunk: 64 KiB.
    pub const DEFAULT_CHUNK: usize = 64 * 1024;

    /// Open a binary trace file with the default chunk size.
    pub fn open(path: &Path) -> io::Result<Self> {
        TraceFileStream::open_chunked(path, TraceFileStream::DEFAULT_CHUNK)
    }

    /// Open a binary trace file reading `chunk` bytes at a time.
    pub fn open_chunked(path: &Path, chunk: usize) -> io::Result<Self> {
        if is_json(path) {
            return Err(json_only("streaming trace reading"));
        }
        Ok(TraceFileStream {
            file: fs::File::open(path)?,
            decoder: FileDecoder::Chunk(ChunkDecoder::new()),
            chunk: vec![0; chunk.max(1)],
            ready: VecDeque::new(),
            batch: Vec::new(),
            eof: false,
        })
    }

    // Read and decode one more chunk; false at end of file.
    fn fill(&mut self) -> Result<bool, StreamError> {
        if self.eof {
            return Ok(false);
        }
        let n = self.file.read(&mut self.chunk)?;
        if n == 0 {
            self.eof = true;
            return Ok(false);
        }
        match &mut self.decoder {
            FileDecoder::Chunk(d) => {
                let mut batch = std::mem::take(&mut self.batch);
                let res = d.decode_chunk(&self.chunk[..n], &mut batch);
                self.ready.extend(batch.drain(..));
                self.batch = batch;
                res?;
            }
            FileDecoder::Quarantine(d) => d.feed(&self.chunk[..n]),
        }
        Ok(true)
    }

    /// The trace header (reads just enough of the file to decode it).
    pub fn header(&mut self) -> Result<&TraceHeader, StreamError> {
        loop {
            let parsed = match &mut self.decoder {
                FileDecoder::Chunk(d) => d.header().is_some(),
                FileDecoder::Quarantine(d) => d.try_parse_header()?,
            };
            if parsed {
                break;
            }
            if !self.fill()? {
                return Err(crate::format::FormatError::Truncated.into());
            }
        }
        let header = match &self.decoder {
            FileDecoder::Chunk(d) => d.header(),
            FileDecoder::Quarantine(d) => d.header(),
        };
        match header {
            Some(h) => Ok(h),
            None => Err(crate::format::FormatError::Truncated.into()),
        }
    }

    /// Bytes currently buffered but not yet decoded (diagnostics; stays
    /// bounded by chunk size + one record on the quarantine path, and by
    /// one straddling item on the default path).
    pub fn buffered(&self) -> usize {
        match &self.decoder {
            FileDecoder::Chunk(d) => d.buffered(),
            FileDecoder::Quarantine(d) => d.buffered(),
        }
    }

    /// Switch the underlying decoder into quarantine mode: malformed
    /// record bodies are skipped and counted instead of erroring the
    /// stream (see [`TraceDecoder::quarantining`]). Must be called
    /// before any reads — it is a builder-style knob, not a mid-stream
    /// mode switch.
    pub fn quarantining(mut self) -> Self {
        if let FileDecoder::Chunk(d) = &self.decoder {
            assert!(
                d.header().is_none() && d.buffered() == 0 && self.ready.is_empty(),
                "quarantining() must be applied before reading from the stream"
            );
            self.decoder = FileDecoder::Quarantine(TraceDecoder::new().quarantining());
        }
        self
    }

    /// Malformed-record runs quarantined so far (quarantine mode only).
    pub fn quarantined_records(&self) -> u64 {
        match &self.decoder {
            FileDecoder::Chunk(_) => 0,
            FileDecoder::Quarantine(d) => d.quarantined_records(),
        }
    }

    /// Bytes skipped while resynchronizing (quarantine mode only).
    pub fn quarantined_bytes(&self) -> u64 {
        match &self.decoder {
            FileDecoder::Chunk(_) => 0,
            FileDecoder::Quarantine(d) => d.quarantined_bytes(),
        }
    }
}

impl RecordStream for TraceFileStream {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        loop {
            if let Some(rec) = self.ready.pop_front() {
                return Ok(Some(rec));
            }
            if let FileDecoder::Quarantine(d) = &mut self.decoder {
                if let Some(rec) = d.next_record()? {
                    return Ok(Some(rec));
                }
            }
            let complete = match &self.decoder {
                FileDecoder::Chunk(d) => d.is_complete(),
                FileDecoder::Quarantine(d) => d.is_complete(),
            };
            if complete {
                return Ok(None);
            }
            if !self.fill()? {
                // No more bytes: any missing record is a real truncation.
                match &mut self.decoder {
                    FileDecoder::Chunk(d) => d.finish()?,
                    FileDecoder::Quarantine(d) => d.finish()?,
                }
                return Ok(None);
            }
        }
    }
}

/// Write a collected trace to `path` (JSON if the extension is `.json`,
/// binary otherwise). The binary path streams records through a
/// [`ChunkedTraceWriter`].
pub fn write_trace(path: &Path, trace: &Trace) -> io::Result<()> {
    if is_json(path) {
        let bytes = serde_json::to_vec_pretty(trace).map_err(invalid)?;
        fs::write(path, bytes)
    } else {
        let mut w = ChunkedTraceWriter::create(path, &trace.host, &trace.scenario, trace.trial)?;
        for r in &trace.records {
            w.push_record(r)?;
        }
        w.finish()?;
        Ok(())
    }
}

/// Read a collected trace from `path`. The binary path streams records
/// through a [`TraceFileStream`].
pub fn read_trace(path: &Path) -> io::Result<Trace> {
    if is_json(path) {
        let bytes = fs::read(path)?;
        serde_json::from_slice(&bytes).map_err(invalid)
    } else {
        let mut stream = TraceFileStream::open(path)?;
        let header = stream.header().map_err(io::Error::from)?.clone();
        let mut records = Vec::with_capacity((header.count as usize).min(1 << 20));
        while let Some(rec) = stream.next_record().map_err(io::Error::from)? {
            records.push(rec);
        }
        Ok(Trace {
            host: header.host,
            scenario: header.scenario,
            trial: header.trial,
            records,
        })
    }
}

/// Write a replay trace to `path`.
pub fn write_replay(path: &Path, replay: &ReplayTrace) -> io::Result<()> {
    let bytes = if is_json(path) {
        serde_json::to_vec_pretty(replay).map_err(invalid)?
    } else {
        encode_replay(replay)
    };
    fs::write(path, bytes)
}

/// Read a replay trace from `path`.
pub fn read_replay(path: &Path) -> io::Result<ReplayTrace> {
    let bytes = fs::read(path)?;
    if is_json(path) {
        serde_json::from_slice(&bytes).map_err(invalid)
    } else {
        decode_replay(&bytes).map_err(invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_trace;
    use crate::record::{Dir, OverrunRecord, PacketRecord, ProtoInfo, TraceRecord};
    use crate::replay::QualityTuple;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tracekit-io-{}", std::process::id()));
        fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new("h", "porter", 1);
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 7,
            dir: Dir::In,
            wire_len: 98,
            proto: ProtoInfo::Other { protocol: 1 },
        }));
        t
    }

    fn sample_replay() -> ReplayTrace {
        ReplayTrace {
            source: "test".into(),
            tuples: vec![QualityTuple {
                duration_ns: 5_000_000_000,
                latency_ns: 2_000_000,
                vb_ns_per_byte: 4000.0,
                vr_ns_per_byte: 800.0,
                loss: 0.05,
            }],
        }
    }

    fn bigger_trace() -> Trace {
        let mut t = Trace::new("thinkpad", "flagstaff", 3);
        for i in 0..500u64 {
            t.records.push(TraceRecord::Packet(PacketRecord {
                timestamp_ns: i * 1000,
                dir: if i % 2 == 0 { Dir::Out } else { Dir::In },
                wire_len: 98,
                proto: ProtoInfo::IcmpEcho {
                    ident: 7,
                    seq: i as u16,
                    payload_len: 56,
                    gen_ts_ns: i * 1000,
                },
            }));
        }
        t.records.push(TraceRecord::Overrun(OverrunRecord {
            timestamp_ns: 600_000,
            lost_packets: 12,
            lost_device: 1,
        }));
        t
    }

    #[test]
    fn trace_binary_and_json_round_trip() {
        let dir = tmpdir();
        for name in ["t.mntr", "t.json"] {
            let p = dir.join(name);
            write_trace(&p, &sample_trace()).expect("write trace");
            assert_eq!(read_trace(&p).expect("read trace"), sample_trace());
        }
    }

    #[test]
    fn replay_binary_and_json_round_trip() {
        let dir = tmpdir();
        for name in ["r.mnrp", "r.json"] {
            let p = dir.join(name);
            write_replay(&p, &sample_replay()).expect("write replay");
            assert_eq!(read_replay(&p).expect("read replay"), sample_replay());
        }
    }

    #[test]
    fn corrupt_file_is_invalid_data() {
        let dir = tmpdir();
        let p = dir.join("junk.mntr");
        fs::write(&p, b"not a trace").expect("write junk file");
        let err = read_trace(&p).expect_err("corrupt trace must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_file_is_not_found() {
        let p = tmpdir().join("nonexistent.mnrp");
        let err = read_replay(&p).expect_err("missing file must fail");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn chunked_writer_matches_batch_encoding_bytewise() {
        let dir = tmpdir();
        let t = bigger_trace();
        let p = dir.join("chunked.mntr");
        let mut w = ChunkedTraceWriter::create(&p, &t.host, &t.scenario, t.trial)
            .expect("create chunked writer");
        for r in &t.records {
            w.push_record(r).expect("push record");
        }
        assert_eq!(w.finish().expect("finish writer") as usize, t.records.len());
        assert_eq!(fs::read(&p).expect("read file bytes"), encode_trace(&t));
    }

    #[test]
    fn file_stream_round_trip_small_chunks() {
        let dir = tmpdir();
        let t = bigger_trace();
        let p = dir.join("stream.mntr");
        write_trace(&p, &t).expect("write trace");
        for chunk in [1, 7, 64, 4096] {
            let mut s = TraceFileStream::open_chunked(&p, chunk).expect("open stream");
            let h = s.header().expect("stream header").clone();
            assert_eq!(h.scenario, "flagstaff");
            let mut records = Vec::new();
            while let Some(r) = s.next_record().expect("next record") {
                records.push(r);
            }
            assert_eq!(records, t.records, "chunk size {chunk}");
        }
    }

    #[test]
    fn file_stream_memory_stays_bounded() {
        let dir = tmpdir();
        let t = bigger_trace();
        let p = dir.join("bounded.mntr");
        write_trace(&p, &t).expect("write trace");
        let mut s = TraceFileStream::open_chunked(&p, 128).expect("open stream");
        let mut peak = 0;
        while s.next_record().expect("next record").is_some() {
            peak = peak.max(s.buffered());
        }
        assert!(peak <= 128 + 64, "peak buffered {peak}");
    }

    #[test]
    fn truncated_file_streams_then_errors() {
        let dir = tmpdir();
        let t = bigger_trace();
        let bytes = encode_trace(&t);
        let p = dir.join("cut.mntr");
        fs::write(&p, &bytes[..bytes.len() / 2]).expect("write truncated file");
        let mut s = TraceFileStream::open(&p).expect("open stream");
        let mut n = 0;
        let err = loop {
            match s.next_record() {
                Ok(Some(_)) => n += 1,
                Ok(None) => panic!("truncation must surface as an error"),
                Err(e) => break e,
            }
        };
        assert!(n > 0, "some records decode before the cut");
        assert!(matches!(
            err,
            StreamError::Format(crate::format::FormatError::Truncated)
        ));
    }

    #[test]
    fn json_paths_rejected_for_chunked_io() {
        let dir = tmpdir();
        let p = dir.join("t.json");
        assert!(ChunkedTraceWriter::create(&p, "h", "s", 1).is_err());
        write_trace(&p, &sample_trace()).expect("write trace");
        assert!(TraceFileStream::open(&p).is_err());
    }
}
