//! File I/O for traces and replay traces: binary (`.mntr` / `.mnrp`) or
//! JSON (`.json`), chosen by extension.
//!
//! The binary paths are streaming end to end: [`write_trace`] appends
//! records through a [`ChunkedTraceWriter`] and [`read_trace`] pulls
//! them back through a [`TraceFileStream`], so neither needs the
//! encoded file in memory. The chunked forms are public so callers can
//! write records as they are collected and replay traces far longer
//! than memory. JSON stays whole-file (it exists for human inspection,
//! not scale).

use crate::format::{
    decode_replay, encode_record, encode_replay, encode_trace_header, TraceDecoder, TraceHeader,
};
use crate::record::{Trace, TraceRecord};
use crate::replay::ReplayTrace;
use crate::stream::{RecordStream, StreamError};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

fn is_json(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "json")
}

fn invalid<E: std::error::Error + Send + Sync + 'static>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn json_only(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{what} is binary-only; JSON traces are whole-file"),
    )
}

/// Incremental writer for the binary trace format: the header goes out
/// first with a zero record count, records are appended as they arrive,
/// and [`finish`](ChunkedTraceWriter::finish) seeks back to patch the
/// true count in. The resulting file is byte-identical to
/// [`write_trace`] on the equivalent batch [`Trace`].
#[derive(Debug)]
pub struct ChunkedTraceWriter {
    out: io::BufWriter<fs::File>,
    count_offset: u64,
    count: u32,
}

impl ChunkedTraceWriter {
    /// Start a binary trace file at `path` with the given provenance.
    pub fn create(path: &Path, host: &str, scenario: &str, trial: u32) -> io::Result<Self> {
        if is_json(path) {
            return Err(json_only("chunked trace writing"));
        }
        let header = encode_trace_header(host, scenario, trial, 0);
        let count_offset = (header.len() - 4) as u64;
        let mut out = io::BufWriter::new(fs::File::create(path)?);
        out.write_all(&header)?;
        Ok(ChunkedTraceWriter {
            out,
            count_offset,
            count: 0,
        })
    }

    /// Append one record.
    pub fn push_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        if self.count == u32::MAX {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "trace record count overflow",
            ));
        }
        self.out.write_all(&encode_record(rec))?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Patch the record count into the header and flush. Returns the
    /// final record count.
    pub fn finish(mut self) -> io::Result<u32> {
        self.out.seek(SeekFrom::Start(self.count_offset))?;
        self.out.write_all(&self.count.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.count)
    }
}

/// Streaming reader for binary trace files: a [`RecordStream`] that
/// reads the file in fixed-size chunks through a [`TraceDecoder`], so
/// memory stays bounded by the chunk size regardless of trace length.
#[derive(Debug)]
pub struct TraceFileStream {
    file: fs::File,
    decoder: TraceDecoder,
    chunk: Vec<u8>,
    eof: bool,
}

impl TraceFileStream {
    /// Default read chunk: 64 KiB.
    pub const DEFAULT_CHUNK: usize = 64 * 1024;

    /// Open a binary trace file with the default chunk size.
    pub fn open(path: &Path) -> io::Result<Self> {
        TraceFileStream::open_chunked(path, TraceFileStream::DEFAULT_CHUNK)
    }

    /// Open a binary trace file reading `chunk` bytes at a time.
    pub fn open_chunked(path: &Path, chunk: usize) -> io::Result<Self> {
        if is_json(path) {
            return Err(json_only("streaming trace reading"));
        }
        Ok(TraceFileStream {
            file: fs::File::open(path)?,
            decoder: TraceDecoder::new(),
            chunk: vec![0; chunk.max(1)],
            eof: false,
        })
    }

    // Read one more chunk into the decoder; false at end of file.
    fn fill(&mut self) -> io::Result<bool> {
        if self.eof {
            return Ok(false);
        }
        let n = self.file.read(&mut self.chunk)?;
        if n == 0 {
            self.eof = true;
            return Ok(false);
        }
        self.decoder.feed(&self.chunk[..n]);
        Ok(true)
    }

    /// The trace header (reads just enough of the file to decode it).
    pub fn header(&mut self) -> Result<&TraceHeader, StreamError> {
        while !self.decoder.try_parse_header()? {
            if !self.fill()? {
                return Err(crate::format::FormatError::Truncated.into());
            }
        }
        match self.decoder.header() {
            Some(h) => Ok(h),
            None => Err(crate::format::FormatError::Truncated.into()),
        }
    }

    /// Bytes currently buffered but not yet decoded (diagnostics; stays
    /// bounded by chunk size + one record).
    pub fn buffered(&self) -> usize {
        self.decoder.buffered()
    }

    /// Switch the underlying decoder into quarantine mode: malformed
    /// record bodies are skipped and counted instead of erroring the
    /// stream (see [`TraceDecoder::quarantining`]).
    pub fn quarantining(mut self) -> Self {
        self.decoder = std::mem::take(&mut self.decoder).quarantining();
        self
    }

    /// Malformed-record runs quarantined so far (quarantine mode only).
    pub fn quarantined_records(&self) -> u64 {
        self.decoder.quarantined_records()
    }

    /// Bytes skipped while resynchronizing (quarantine mode only).
    pub fn quarantined_bytes(&self) -> u64 {
        self.decoder.quarantined_bytes()
    }
}

impl RecordStream for TraceFileStream {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        loop {
            if let Some(rec) = self.decoder.next_record()? {
                return Ok(Some(rec));
            }
            if self.decoder.is_complete() {
                return Ok(None);
            }
            if !self.fill()? {
                // No more bytes: any missing record is a real truncation.
                self.decoder.finish()?;
                return Ok(None);
            }
        }
    }
}

/// Write a collected trace to `path` (JSON if the extension is `.json`,
/// binary otherwise). The binary path streams records through a
/// [`ChunkedTraceWriter`].
pub fn write_trace(path: &Path, trace: &Trace) -> io::Result<()> {
    if is_json(path) {
        let bytes = serde_json::to_vec_pretty(trace).map_err(invalid)?;
        fs::write(path, bytes)
    } else {
        let mut w = ChunkedTraceWriter::create(path, &trace.host, &trace.scenario, trace.trial)?;
        for r in &trace.records {
            w.push_record(r)?;
        }
        w.finish()?;
        Ok(())
    }
}

/// Read a collected trace from `path`. The binary path streams records
/// through a [`TraceFileStream`].
pub fn read_trace(path: &Path) -> io::Result<Trace> {
    if is_json(path) {
        let bytes = fs::read(path)?;
        serde_json::from_slice(&bytes).map_err(invalid)
    } else {
        let mut stream = TraceFileStream::open(path)?;
        let header = stream.header().map_err(io::Error::from)?.clone();
        let mut records = Vec::with_capacity((header.count as usize).min(1 << 20));
        while let Some(rec) = stream.next_record().map_err(io::Error::from)? {
            records.push(rec);
        }
        Ok(Trace {
            host: header.host,
            scenario: header.scenario,
            trial: header.trial,
            records,
        })
    }
}

/// Write a replay trace to `path`.
pub fn write_replay(path: &Path, replay: &ReplayTrace) -> io::Result<()> {
    let bytes = if is_json(path) {
        serde_json::to_vec_pretty(replay).map_err(invalid)?
    } else {
        encode_replay(replay)
    };
    fs::write(path, bytes)
}

/// Read a replay trace from `path`.
pub fn read_replay(path: &Path) -> io::Result<ReplayTrace> {
    let bytes = fs::read(path)?;
    if is_json(path) {
        serde_json::from_slice(&bytes).map_err(invalid)
    } else {
        decode_replay(&bytes).map_err(invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_trace;
    use crate::record::{Dir, OverrunRecord, PacketRecord, ProtoInfo, TraceRecord};
    use crate::replay::QualityTuple;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tracekit-io-{}", std::process::id()));
        fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new("h", "porter", 1);
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 7,
            dir: Dir::In,
            wire_len: 98,
            proto: ProtoInfo::Other { protocol: 1 },
        }));
        t
    }

    fn sample_replay() -> ReplayTrace {
        ReplayTrace {
            source: "test".into(),
            tuples: vec![QualityTuple {
                duration_ns: 5_000_000_000,
                latency_ns: 2_000_000,
                vb_ns_per_byte: 4000.0,
                vr_ns_per_byte: 800.0,
                loss: 0.05,
            }],
        }
    }

    fn bigger_trace() -> Trace {
        let mut t = Trace::new("thinkpad", "flagstaff", 3);
        for i in 0..500u64 {
            t.records.push(TraceRecord::Packet(PacketRecord {
                timestamp_ns: i * 1000,
                dir: if i % 2 == 0 { Dir::Out } else { Dir::In },
                wire_len: 98,
                proto: ProtoInfo::IcmpEcho {
                    ident: 7,
                    seq: i as u16,
                    payload_len: 56,
                    gen_ts_ns: i * 1000,
                },
            }));
        }
        t.records.push(TraceRecord::Overrun(OverrunRecord {
            timestamp_ns: 600_000,
            lost_packets: 12,
            lost_device: 1,
        }));
        t
    }

    #[test]
    fn trace_binary_and_json_round_trip() {
        let dir = tmpdir();
        for name in ["t.mntr", "t.json"] {
            let p = dir.join(name);
            write_trace(&p, &sample_trace()).expect("write trace");
            assert_eq!(read_trace(&p).expect("read trace"), sample_trace());
        }
    }

    #[test]
    fn replay_binary_and_json_round_trip() {
        let dir = tmpdir();
        for name in ["r.mnrp", "r.json"] {
            let p = dir.join(name);
            write_replay(&p, &sample_replay()).expect("write replay");
            assert_eq!(read_replay(&p).expect("read replay"), sample_replay());
        }
    }

    #[test]
    fn corrupt_file_is_invalid_data() {
        let dir = tmpdir();
        let p = dir.join("junk.mntr");
        fs::write(&p, b"not a trace").expect("write junk file");
        let err = read_trace(&p).expect_err("corrupt trace must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_file_is_not_found() {
        let p = tmpdir().join("nonexistent.mnrp");
        let err = read_replay(&p).expect_err("missing file must fail");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn chunked_writer_matches_batch_encoding_bytewise() {
        let dir = tmpdir();
        let t = bigger_trace();
        let p = dir.join("chunked.mntr");
        let mut w = ChunkedTraceWriter::create(&p, &t.host, &t.scenario, t.trial)
            .expect("create chunked writer");
        for r in &t.records {
            w.push_record(r).expect("push record");
        }
        assert_eq!(w.finish().expect("finish writer") as usize, t.records.len());
        assert_eq!(fs::read(&p).expect("read file bytes"), encode_trace(&t));
    }

    #[test]
    fn file_stream_round_trip_small_chunks() {
        let dir = tmpdir();
        let t = bigger_trace();
        let p = dir.join("stream.mntr");
        write_trace(&p, &t).expect("write trace");
        for chunk in [1, 7, 64, 4096] {
            let mut s = TraceFileStream::open_chunked(&p, chunk).expect("open stream");
            let h = s.header().expect("stream header").clone();
            assert_eq!(h.scenario, "flagstaff");
            let mut records = Vec::new();
            while let Some(r) = s.next_record().expect("next record") {
                records.push(r);
            }
            assert_eq!(records, t.records, "chunk size {chunk}");
        }
    }

    #[test]
    fn file_stream_memory_stays_bounded() {
        let dir = tmpdir();
        let t = bigger_trace();
        let p = dir.join("bounded.mntr");
        write_trace(&p, &t).expect("write trace");
        let mut s = TraceFileStream::open_chunked(&p, 128).expect("open stream");
        let mut peak = 0;
        while s.next_record().expect("next record").is_some() {
            peak = peak.max(s.buffered());
        }
        assert!(peak <= 128 + 64, "peak buffered {peak}");
    }

    #[test]
    fn truncated_file_streams_then_errors() {
        let dir = tmpdir();
        let t = bigger_trace();
        let bytes = encode_trace(&t);
        let p = dir.join("cut.mntr");
        fs::write(&p, &bytes[..bytes.len() / 2]).expect("write truncated file");
        let mut s = TraceFileStream::open(&p).expect("open stream");
        let mut n = 0;
        let err = loop {
            match s.next_record() {
                Ok(Some(_)) => n += 1,
                Ok(None) => panic!("truncation must surface as an error"),
                Err(e) => break e,
            }
        };
        assert!(n > 0, "some records decode before the cut");
        assert!(matches!(
            err,
            StreamError::Format(crate::format::FormatError::Truncated)
        ));
    }

    #[test]
    fn json_paths_rejected_for_chunked_io() {
        let dir = tmpdir();
        let p = dir.join("t.json");
        assert!(ChunkedTraceWriter::create(&p, "h", "s", 1).is_err());
        write_trace(&p, &sample_trace()).expect("write trace");
        assert!(TraceFileStream::open(&p).is_err());
    }
}
