//! File I/O for traces and replay traces: binary (`.mntr` / `.mnrp`) or
//! JSON (`.json`), chosen by extension.

use crate::format::{decode_replay, decode_trace, encode_replay, encode_trace};
use crate::record::Trace;
use crate::replay::ReplayTrace;
use std::fs;
use std::io;
use std::path::Path;

fn is_json(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "json")
}

fn invalid<E: std::error::Error + Send + Sync + 'static>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Write a collected trace to `path` (JSON if the extension is `.json`,
/// binary otherwise).
pub fn write_trace(path: &Path, trace: &Trace) -> io::Result<()> {
    let bytes = if is_json(path) {
        serde_json::to_vec_pretty(trace).map_err(invalid)?
    } else {
        encode_trace(trace)
    };
    fs::write(path, bytes)
}

/// Read a collected trace from `path`.
pub fn read_trace(path: &Path) -> io::Result<Trace> {
    let bytes = fs::read(path)?;
    if is_json(path) {
        serde_json::from_slice(&bytes).map_err(invalid)
    } else {
        decode_trace(&bytes).map_err(invalid)
    }
}

/// Write a replay trace to `path`.
pub fn write_replay(path: &Path, replay: &ReplayTrace) -> io::Result<()> {
    let bytes = if is_json(path) {
        serde_json::to_vec_pretty(replay).map_err(invalid)?
    } else {
        encode_replay(replay)
    };
    fs::write(path, bytes)
}

/// Read a replay trace from `path`.
pub fn read_replay(path: &Path) -> io::Result<ReplayTrace> {
    let bytes = fs::read(path)?;
    if is_json(path) {
        serde_json::from_slice(&bytes).map_err(invalid)
    } else {
        decode_replay(&bytes).map_err(invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Dir, PacketRecord, ProtoInfo, TraceRecord};
    use crate::replay::QualityTuple;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tracekit-io-{}", std::process::id()));
        fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new("h", "porter", 1);
        t.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: 7,
            dir: Dir::In,
            wire_len: 98,
            proto: ProtoInfo::Other { protocol: 1 },
        }));
        t
    }

    fn sample_replay() -> ReplayTrace {
        ReplayTrace {
            source: "test".into(),
            tuples: vec![QualityTuple {
                duration_ns: 5_000_000_000,
                latency_ns: 2_000_000,
                vb_ns_per_byte: 4000.0,
                vr_ns_per_byte: 800.0,
                loss: 0.05,
            }],
        }
    }

    #[test]
    fn trace_binary_and_json_round_trip() {
        let dir = tmpdir();
        for name in ["t.mntr", "t.json"] {
            let p = dir.join(name);
            write_trace(&p, &sample_trace()).unwrap();
            assert_eq!(read_trace(&p).unwrap(), sample_trace());
        }
    }

    #[test]
    fn replay_binary_and_json_round_trip() {
        let dir = tmpdir();
        for name in ["r.mnrp", "r.json"] {
            let p = dir.join(name);
            write_replay(&p, &sample_replay()).unwrap();
            assert_eq!(read_replay(&p).unwrap(), sample_replay());
        }
    }

    #[test]
    fn corrupt_file_is_invalid_data() {
        let dir = tmpdir();
        let p = dir.join("junk.mntr");
        fs::write(&p, b"not a trace").unwrap();
        let err = read_trace(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_file_is_not_found() {
        let p = tmpdir().join("nonexistent.mnrp");
        let err = read_replay(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
