//! # tracekit — trace collection substrate
//!
//! Everything the paper's *collection phase* needs (§3.1), rebuilt
//! against the simulated stack:
//!
//! * a self-descriptive trace [record format](record) in the spirit of
//!   RFC 2041: packet records with protocol-specific fields, device
//!   (signal) records, and explicit overrun accounting;
//! * a fixed-size in-kernel [`RingBuffer`] behind a [`PseudoDevice`]
//!   (open = enable tracing, close = disable, read = extract);
//! * the [`Collector`], a device tap that parses every frame crossing
//!   the device boundary and samples signal status;
//! * the user-level [`CollectionDaemon`] that drains the pseudo-device
//!   to "disk";
//! * pull-based [streaming](stream) abstractions — [`RecordStream`]
//!   sources (in-memory, live device, chunked file) and [`TupleSink`]
//!   consumers — that let distillation and modulation run with
//!   O(window) memory while collection is still in progress;
//! * the [`ReplayTrace`] type — the distilled ⟨d, F, Vb, Vr, L⟩ quality
//!   tuples that the modulation layer plays back — with binary and JSON
//!   [I/O](io), batch or chunked.

#![warn(missing_docs)]

mod collector;
mod daemon;
pub mod format;
pub mod io;
mod pseudodev;
pub mod record;
mod replay;
mod ringbuf;
pub mod stream;

pub use collector::{Collector, SignalSource};
pub use daemon::CollectionDaemon;
pub use format::{ChunkDecoder, FormatError, TraceDecoder, TraceHeader};
pub use io::{ChunkedTraceWriter, TraceFileStream};
pub use pseudodev::PseudoDevice;
pub use record::{DeviceRecord, Dir, OverrunRecord, PacketRecord, ProtoInfo, Trace, TraceRecord};
pub use replay::{QualityTuple, ReplayTrace};
pub use ringbuf::RingBuffer;
pub use stream::{DeviceStream, RecordStream, SliceStream, StreamError, TupleSink, VecStream};
