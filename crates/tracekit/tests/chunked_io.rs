//! Property tests for the chunked binary trace I/O: arbitrary records
//! (including overrun markers) written through [`ChunkedTraceWriter`]
//! must stream back identically through [`TraceFileStream`] at any
//! chunk size, and the file bytes must match the one-shot encoder.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use tracekit::format::{encode_trace, TraceDecoder};
use tracekit::{
    ChunkedTraceWriter, DeviceRecord, Dir, OverrunRecord, PacketRecord, ProtoInfo, RecordStream,
    Trace, TraceFileStream, TraceRecord,
};

fn arb_proto() -> impl Strategy<Value = ProtoInfo> {
    prop_oneof![
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u64>()).prop_map(
            |(ident, seq, payload_len, gen_ts_ns)| ProtoInfo::IcmpEcho {
                ident,
                seq,
                payload_len,
                gen_ts_ns,
            }
        ),
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u64>()).prop_map(
            |(ident, seq, payload_len, rtt_ns)| ProtoInfo::IcmpEchoReply {
                ident,
                seq,
                payload_len,
                rtt_ns,
            }
        ),
        (any::<u16>(), any::<u16>(), any::<u32>()).prop_map(|(src_port, dst_port, payload_len)| {
            ProtoInfo::Udp {
                src_port,
                dst_port,
                payload_len,
            }
        }),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<u32>()
        )
            .prop_map(|(src_port, dst_port, seq, ack, flags, payload_len)| {
                ProtoInfo::Tcp {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    payload_len,
                }
            }),
        any::<u8>().prop_map(|protocol| ProtoInfo::Other { protocol }),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        (any::<u64>(), any::<bool>(), any::<u32>(), arb_proto()).prop_map(
            |(timestamp_ns, out, wire_len, proto)| {
                TraceRecord::Packet(PacketRecord {
                    timestamp_ns,
                    dir: if out { Dir::Out } else { Dir::In },
                    wire_len,
                    proto,
                })
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(timestamp_ns, signal, quality, silence)| {
                TraceRecord::Device(DeviceRecord {
                    timestamp_ns,
                    signal,
                    quality,
                    silence,
                })
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(timestamp_ns, lost_packets, lost_device)| {
                TraceRecord::Overrun(OverrunRecord {
                    timestamp_ns,
                    lost_packets,
                    lost_device,
                })
            }
        ),
    ]
}

/// A unique temp path per proptest case (cases run in one process).
fn temp_path() -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "tracekit-chunked-io-{}-{}.trace",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_write_then_stream_round_trips(
        records in proptest::collection::vec(arb_record(), 0..120),
        trial in any::<u32>(),
        chunk in 1usize..512,
    ) {
        let path = temp_path();
        let mut w = ChunkedTraceWriter::create(&path, "host", "prop", trial).unwrap();
        for r in &records {
            w.push_record(r).unwrap();
        }
        let written = w.finish().unwrap();
        prop_assert_eq!(written as usize, records.len());

        let mut stream = TraceFileStream::open_chunked(&path, chunk).unwrap();
        {
            let h = stream.header().unwrap();
            prop_assert_eq!(h.host.as_str(), "host");
            prop_assert_eq!(h.scenario.as_str(), "prop");
            prop_assert_eq!(h.trial, trial);
            prop_assert_eq!(h.count as usize, records.len());
        }
        let mut back = Vec::new();
        while let Some(r) = stream.next_record().unwrap() {
            back.push(r);
        }
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn chunked_writer_bytes_match_one_shot_encoder(
        records in proptest::collection::vec(arb_record(), 0..80),
        trial in any::<u32>(),
    ) {
        let mut trace = Trace::new("host", "prop", trial);
        trace.records = records;

        let path = temp_path();
        let mut w = ChunkedTraceWriter::create(&path, "host", "prop", trial).unwrap();
        for r in &trace.records {
            w.push_record(r).unwrap();
        }
        w.finish().unwrap();
        let streamed_bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(streamed_bytes, encode_trace(&trace));
    }

    #[test]
    fn decoder_round_trips_at_any_feed_granularity(
        records in proptest::collection::vec(arb_record(), 0..60),
        trial in any::<u32>(),
        feed in 1usize..64,
    ) {
        let mut trace = Trace::new("h", "s", trial);
        trace.records = records;
        let bytes = encode_trace(&trace);

        let mut dec = TraceDecoder::new();
        let mut back = Vec::new();
        for piece in bytes.chunks(feed) {
            dec.feed(piece);
            while let Some(r) = dec.next_record().unwrap() {
                back.push(r);
            }
        }
        dec.finish().unwrap();
        prop_assert_eq!(back, trace.records);
    }
}
