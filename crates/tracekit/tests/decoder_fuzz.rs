//! Differential decoder fuzz: hostile inputs (truncation, bit flips,
//! raw garbage) against both the strict and the quarantining decoder.
//!
//! The contract under attack:
//!
//! * the strict paths ([`decode_trace`], [`TraceDecoder`]) report
//!   [`FormatError`] — they never panic, whatever the bytes;
//! * a truncated stream decodes a clean *prefix* of the original
//!   records before `finish()` reports [`FormatError::Truncated`];
//! * the quarantining decoder, given an intact header, never errors at
//!   all on body corruption — it skips, counts, and keeps decoding;
//! * on well-formed input, quarantine mode is byte-for-byte identical
//!   to strict mode (differential check), with zero quarantines.

use proptest::collection;
use proptest::prelude::*;
use tracekit::format::{
    decode_trace, encode_trace, encode_trace_header, FormatError, TraceDecoder,
};
use tracekit::{DeviceRecord, Dir, OverrunRecord, PacketRecord, ProtoInfo, Trace, TraceRecord};

fn arb_proto() -> impl Strategy<Value = ProtoInfo> {
    prop_oneof![
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u64>()).prop_map(
            |(ident, seq, payload_len, gen_ts_ns)| ProtoInfo::IcmpEcho {
                ident,
                seq,
                payload_len,
                gen_ts_ns,
            }
        ),
        (any::<u16>(), any::<u16>(), any::<u32>()).prop_map(|(src_port, dst_port, payload_len)| {
            ProtoInfo::Udp {
                src_port,
                dst_port,
                payload_len,
            }
        }),
        any::<u8>().prop_map(|protocol| ProtoInfo::Other { protocol }),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        (any::<u64>(), any::<bool>(), any::<u32>(), arb_proto()).prop_map(
            |(timestamp_ns, out, wire_len, proto)| {
                TraceRecord::Packet(PacketRecord {
                    timestamp_ns,
                    dir: if out { Dir::Out } else { Dir::In },
                    wire_len,
                    proto,
                })
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(timestamp_ns, signal, quality, silence)| {
                TraceRecord::Device(DeviceRecord {
                    timestamp_ns,
                    signal,
                    quality,
                    silence,
                })
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(timestamp_ns, lost_packets, lost_device)| {
                TraceRecord::Overrun(OverrunRecord {
                    timestamp_ns,
                    lost_packets,
                    lost_device,
                })
            }
        ),
    ]
}

fn encoded(records: Vec<TraceRecord>, trial: u32) -> (Vec<u8>, Vec<TraceRecord>) {
    let mut trace = Trace::new("h", "fuzz", trial);
    trace.records = records;
    let bytes = encode_trace(&trace);
    (bytes, trace.records)
}

/// Drain an incremental decoder, stopping at the first error.
fn drain(dec: &mut TraceDecoder) -> (Vec<TraceRecord>, Option<FormatError>) {
    let mut out = Vec::new();
    loop {
        match dec.next_record() {
            Ok(Some(r)) => out.push(r),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of a trace decodes a clean prefix of its
    /// records, then fails `finish()` with `Truncated` — never a panic,
    /// never a garbled record.
    #[test]
    fn truncated_traces_yield_a_clean_prefix_then_a_truncation_error(
        records in collection::vec(arb_record(), 1..80),
        trial in any::<u32>(),
        cut_seed in any::<usize>(),
        feed in 1usize..64,
    ) {
        let (bytes, originals) = encoded(records, trial);
        let cut = cut_seed % bytes.len(); // strictly shorter than the file
        let short = &bytes[..cut];

        // One-shot strict decode: must error (no panic), since at least
        // one declared byte is missing.
        prop_assert!(decode_trace(short).is_err());

        // Incremental strict decode: whatever came out is a prefix of
        // the original records, and finish() reports the truncation.
        let mut dec = TraceDecoder::new();
        let mut got = Vec::new();
        for piece in short.chunks(feed) {
            dec.feed(piece);
            let (mut part, err) = drain(&mut dec);
            got.append(&mut part);
            prop_assert!(err.is_none(), "well-formed prefix must not error mid-stream");
        }
        prop_assert!(got.len() <= originals.len());
        prop_assert_eq!(&got[..], &originals[..got.len()]);
        prop_assert_eq!(dec.finish(), Err(FormatError::Truncated));
    }

    /// A single flipped byte anywhere in the file: the strict decoder
    /// returns `Ok` or a `FormatError` — it never panics.
    #[test]
    fn bit_flipped_traces_never_panic_the_strict_decoder(
        records in collection::vec(arb_record(), 1..60),
        trial in any::<u32>(),
        pos_seed in any::<usize>(),
        mask in 1u8..=255,
        feed in 1usize..64,
    ) {
        let (mut bytes, _) = encoded(records, trial);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= mask;

        // Outcome is unspecified (the flip may even be semantically
        // harmless); absence of panic is the property.
        let _ = decode_trace(&bytes);

        let mut dec = TraceDecoder::new();
        for piece in bytes.chunks(feed) {
            dec.feed(piece);
            if drain(&mut dec).1.is_some() {
                break; // strict mode stops at the first error
            }
        }
        let _ = dec.finish();
    }

    /// Body corruption under quarantine: with the header intact, the
    /// decoder never errors — malformed runs are skipped and counted,
    /// and the record ledger still balances against the declared count.
    #[test]
    fn quarantining_decoder_survives_body_corruption(
        records in collection::vec(arb_record(), 1..60),
        trial in any::<u32>(),
        flips in collection::vec((any::<usize>(), 1u8..=255), 1..4),
        feed in 1usize..64,
    ) {
        let (mut bytes, _) = encoded(records, trial);
        let header_len = encode_trace_header("h", "fuzz", trial, 0).len();
        prop_assume!(bytes.len() > header_len);
        let body = bytes.len() - header_len;
        for &(pos_seed, mask) in &flips {
            bytes[header_len + pos_seed % body] ^= mask;
        }

        let mut dec = TraceDecoder::new().quarantining();
        let mut got = 0u64;
        for piece in bytes.chunks(feed) {
            dec.feed(piece);
            let (part, err) = drain(&mut dec);
            prop_assert!(err.is_none(), "quarantine mode must absorb body corruption: {err:?}");
            got += part.len() as u64;
        }
        let declared = u64::from(dec.header().expect("intact header").count);
        prop_assert!(got + dec.quarantined_records() <= declared);
        // End state: either everything is accounted for, or inflated
        // length fields left the stream waiting on bytes that never
        // come — which finish() reports as truncation, not a panic.
        match dec.finish() {
            Ok(()) => prop_assert_eq!(got + dec.quarantined_records(), declared),
            Err(e) => prop_assert_eq!(e, FormatError::Truncated),
        }
    }

    /// Differential: on well-formed input, quarantine mode decodes
    /// exactly what strict mode decodes, with zero quarantines.
    #[test]
    fn quarantine_mode_is_identity_on_clean_traces(
        records in collection::vec(arb_record(), 0..60),
        trial in any::<u32>(),
        feed in 1usize..64,
    ) {
        let (bytes, originals) = encoded(records, trial);

        let mut strict = TraceDecoder::new();
        let mut lenient = TraceDecoder::new().quarantining();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for piece in bytes.chunks(feed) {
            strict.feed(piece);
            lenient.feed(piece);
            let (part, err) = drain(&mut strict);
            prop_assert!(err.is_none());
            a.extend(part);
            let (part, err) = drain(&mut lenient);
            prop_assert!(err.is_none());
            b.extend(part);
        }
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a[..], &originals[..]);
        prop_assert_eq!(lenient.quarantined_records(), 0);
        prop_assert_eq!(lenient.quarantined_bytes(), 0);
        prop_assert!(strict.finish().is_ok());
        prop_assert!(lenient.finish().is_ok());
    }

    /// Raw garbage: both decoders reject or stall on arbitrary bytes
    /// without panicking or spinning.
    #[test]
    fn arbitrary_garbage_never_panics(
        bytes in collection::vec(any::<u8>(), 0..300),
        feed in 1usize..64,
    ) {
        let _ = decode_trace(&bytes);

        let mut dec = TraceDecoder::new().quarantining();
        for piece in bytes.chunks(feed) {
            dec.feed(piece);
            if drain(&mut dec).1.is_some() {
                break; // header-level corruption is a hard error
            }
        }
        let _ = dec.finish();
    }
}
